"""Tests for the worker pool: fan-out, cache serving, preemption."""

from repro.farm import JobQueue, MatrixSpec, ResultCache, WorkerPool


def small_matrix():
    return MatrixSpec(
        workload="faults_stream",
        base={"words": 4, "drop_rate": 0.0},
        sweep={"seed": [0, 1], "slices_x": [1, 2]},
    )


def make_farm(tmp_path, num_workers=2, **kwargs):
    queue = JobQueue(tmp_path / "farm")
    queue.submit_all(small_matrix().jobs())
    cache = ResultCache(tmp_path / "farm" / "cache")
    pool = WorkerPool(queue, cache, num_workers=num_workers,
                      checkpoint_every=200, heartbeat_every=200, **kwargs)
    return queue, cache, pool


class TestWorkerPool:
    def test_runs_a_matrix_across_workers(self, tmp_path):
        queue, cache, pool = make_farm(tmp_path)
        report = pool.run()
        payload = report.to_dict()
        assert payload["total_jobs"] == 4
        assert payload["counts"]["done"] == 4
        assert payload["cache"] == {
            "hits": 0, "misses": 4, "hit_rate": 0.0,
        }
        assert queue.done()
        # Every done job carries result fields from its cached document.
        for job in payload["jobs"]:
            assert job["state"] == "done"
            assert job["total_energy_j"] > 0.0
            assert job["delivered_ok"] is True
        assert "farm report: 4 jobs" in report.render()

    def test_second_pass_is_served_from_cache(self, tmp_path):
        _, cache, pool = make_farm(tmp_path)
        first = pool.run().to_dict()
        assert first["cache"]["hits"] == 0

        # A fresh queue (new campaign) sharing the same cache: every
        # unchanged job completes as a hit, spawning no workers.
        queue_b = JobQueue(tmp_path / "farm_b")
        queue_b.submit_all(small_matrix().jobs())
        pool_b = WorkerPool(queue_b, cache, num_workers=2,
                            work_root=tmp_path / "farm_b" / "work")
        second = pool_b.run().to_dict()
        assert second["counts"]["done"] == 4
        assert second["cache"]["hits"] == 4
        assert second["cache"]["hit_rate"] == 1.0
        assert all(e == "cache_hit" for _, e in pool_b.events)

    def test_preempted_job_migrates_to_another_worker(self, tmp_path):
        queue, cache, pool = make_farm(tmp_path)
        victim = queue.jobs()[0].job_id
        report = pool.run(preempt={victim: 300}).to_dict()
        assert report["counts"]["done"] == 4
        assert report["preemptions"] == 1

        record = queue.get(victim)
        assert record.attempts == 2
        # Migration: the retry ran on a different worker slot.
        assert len(set(record.workers)) == 2

    def test_single_worker_resumes_in_place(self, tmp_path):
        queue, cache, pool = make_farm(tmp_path, num_workers=1)
        victim = queue.jobs()[0].job_id
        report = pool.run(preempt={victim: 300}).to_dict()
        assert report["counts"]["done"] == 4
        record = queue.get(victim)
        assert record.attempts == 2
        assert record.workers == [0, 0]  # nowhere to migrate to

    def test_failed_job_records_error(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        queue.submit_all(small_matrix().jobs())
        from repro.farm import JobSpec
        bad = queue.submit(JobSpec("no_such_workload", {}))
        cache = ResultCache(tmp_path / "farm" / "cache")
        pool = WorkerPool(queue, cache, num_workers=2)
        report = pool.run().to_dict()
        assert report["counts"]["done"] == 4
        assert report["counts"]["failed"] == 1
        assert "exited with code" in queue.get(bad.job_id).error
        error_files = list(pool.work_dir(bad.job_id).glob("error-a*.txt"))
        assert error_files and "no_such_workload" in error_files[0].read_text()
