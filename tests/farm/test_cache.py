"""Tests for the content-addressed result cache."""

import pytest

from repro.farm import JobSpec, ResultCache
from repro.farm.worker import result_document


def document(seed=1):
    spec = JobSpec("demo", {"seed": seed})
    return spec.digest, result_document(spec.config, {"energy": {"x": 1.0}})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest, doc = document()
        assert cache.get(digest) is None
        cache.put(digest, doc)
        assert cache.get(digest) == doc
        assert digest in cache
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest, doc = document()
        path = cache.put(digest, doc)
        path.write_text("{torn", encoding="utf-8")
        assert cache.get(digest) is None

    def test_mismatched_config_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest, doc = document(seed=1)
        _, other = document(seed=2)
        path = cache.put(digest, doc)
        # Hand-edit the entry to a different job's document: the stored
        # config no longer hashes to the file name -> miss, not a wrong
        # answer.
        import json
        path.write_text(json.dumps(other), encoding="utf-8")
        assert cache.get(digest) is None

    def test_put_refuses_to_poison(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest, _ = document(seed=1)
        _, wrong = document(seed=2)
        with pytest.raises(ValueError, match="poison"):
            cache.put(digest, wrong)
        assert len(cache) == 0
