"""End-to-end tests for ``python -m repro farm``."""

import json

import pytest

from repro.__main__ import main


MATRIX = {
    "workload": "faults_stream",
    "base": {"words": 4, "drop_rate": 0.0},
    "sweep": {"seed": [0, 1], "slices_x": [1, 2]},
}


@pytest.fixture
def matrix_file(tmp_path):
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(MATRIX))
    return path


class TestFarmCli:
    def test_submit_then_run_then_report(self, tmp_path, matrix_file, capsys):
        farm = tmp_path / "farm"
        assert main(["farm", "submit", "--dir", str(farm),
                     "--matrix", str(matrix_file)]) == 0
        out = capsys.readouterr().out
        assert "submitted 4 new / 4 total jobs" in out

        # Re-submitting the same matrix dedupes on content.
        assert main(["farm", "submit", "--dir", str(farm),
                     "--matrix", str(matrix_file)]) == 0
        assert "submitted 0 new / 4 total jobs" in capsys.readouterr().out

        report_path = tmp_path / "report.json"
        assert main(["farm", "run", "--dir", str(farm), "--workers", "2",
                     "--checkpoint-every", "200",
                     "--report-out", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "farm report: 4 jobs  done=4" in out
        assert "wall time" in out
        document = json.loads(report_path.read_text())
        assert document["counts"]["done"] == 4
        assert document["cache"]["hits"] == 0

        assert main(["farm", "status", "--dir", str(farm)]) == 0
        out = capsys.readouterr().out
        assert "4/4 jobs finished" in out

        assert main(["farm", "report", "--dir", str(farm), "--json"]) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["jobs"] == document["jobs"]

    def test_rerun_hits_the_cache(self, tmp_path, matrix_file, capsys):
        farm_a = tmp_path / "farm_a"
        assert main(["farm", "run", "--dir", str(farm_a),
                     "--matrix", str(matrix_file), "--workers", "2",
                     "--checkpoint-every", "200", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache"]["hits"] == 0

        # A second campaign sharing the cache: all hits, zero workers.
        farm_b = tmp_path / "farm_b"
        assert main(["farm", "run", "--dir", str(farm_b),
                     "--cache-dir", str(farm_a / "cache"),
                     "--matrix", str(matrix_file), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache"] == {"hits": 4, "misses": 0, "hit_rate": 1.0}
        # Deterministic payloads: both campaigns report identical jobs.
        assert [j["state_digest"] for j in second["jobs"]] == \
            [j["state_digest"] for j in first["jobs"]]

    def test_preempt_flag_migrates_and_finishes(self, tmp_path, matrix_file,
                                                capsys):
        farm = tmp_path / "farm"
        assert main(["farm", "submit", "--dir", str(farm),
                     "--matrix", str(matrix_file), "--show", "1"]) == 0
        victim = capsys.readouterr().out.splitlines()[1].split()[0]
        assert main(["farm", "run", "--dir", str(farm), "--workers", "2",
                     "--checkpoint-every", "200",
                     "--preempt", f"{victim}@300", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["done"] == 4
        assert document["preemptions"] == 1
        row = next(j for j in document["jobs"] if j["job_id"] == victim)
        assert row["attempts"] == 2
        assert len(set(row["workers"])) == 2

    def test_run_on_empty_queue_exits_2(self, tmp_path, capsys):
        assert main(["farm", "run",
                     "--dir", str(tmp_path / "nothing")]) == 2
        assert "queue is empty" in capsys.readouterr().err

    def test_bad_preempt_spec_exits_2(self, tmp_path, matrix_file):
        with pytest.raises(SystemExit):
            main(["farm", "run", "--dir", str(tmp_path / "farm"),
                  "--matrix", str(matrix_file), "--preempt", "nonsense"])
