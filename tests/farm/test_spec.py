"""Tests for JobSpec / MatrixSpec: content addressing and expansion."""

import json

import pytest

from repro.farm import FarmError, JobSpec, MatrixSpec


class TestJobSpec:
    def test_digest_is_stable_across_param_order(self):
        a = JobSpec("faults_stream", {"words": 8, "seed": 1})
        b = JobSpec("faults_stream", {"seed": 1, "words": 8})
        assert a.digest == b.digest
        assert a.job_id == b.job_id == a.digest[:12]

    def test_digest_separates_configs(self):
        a = JobSpec("faults_stream", {"seed": 1})
        b = JobSpec("faults_stream", {"seed": 2})
        c = JobSpec("demo", {"seed": 1})
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_roundtrip(self):
        spec = JobSpec("demo", {"slices_x": 2, "freq_mhz": 250})
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest == spec.digest

    def test_rejects_empty_workload(self):
        with pytest.raises(FarmError, match="workload name"):
            JobSpec("")

    def test_rejects_unserialisable_params(self):
        with pytest.raises(FarmError, match="JSON-able"):
            JobSpec("demo", {"bad": object()})


class TestMatrixSpec:
    def matrix(self):
        return MatrixSpec(
            workload="faults_stream",
            base={"words": 8},
            sweep={"slices_x": [1, 2], "seed": [0, 1, 2]},
        )

    def test_num_jobs_is_the_product(self):
        assert self.matrix().num_jobs == 6

    def test_expansion_is_deterministic(self):
        jobs_a = self.matrix().jobs()
        jobs_b = self.matrix().jobs()
        assert [j.digest for j in jobs_a] == [j.digest for j in jobs_b]
        assert len(jobs_a) == 6
        # Sorted axis order: slices_x varies fastest (sorts after seed).
        assert [(j.params["seed"], j.params["slices_x"])
                for j in jobs_a[:3]] == [(0, 1), (0, 2), (1, 1)]
        assert all(j.params["words"] == 8 for j in jobs_a)

    def test_duplicate_configs_collapse(self):
        matrix = MatrixSpec(
            workload="demo",
            base={"seed": 7},
            sweep={"seed": [7, 7, 8]},
        )
        assert [j.params["seed"] for j in matrix.jobs()] == [7, 8]

    def test_from_file_and_validation(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(self.matrix().to_dict()))
        loaded = MatrixSpec.from_file(path)
        assert loaded == self.matrix()

        path.write_text("{not json")
        with pytest.raises(FarmError, match="unparseable"):
            MatrixSpec.from_file(path)

    def test_rejects_empty_axis(self):
        with pytest.raises(FarmError, match="non-empty value list"):
            MatrixSpec(workload="demo", sweep={"seed": []})

    def test_rejects_missing_workload(self):
        with pytest.raises(FarmError, match="workload"):
            MatrixSpec.from_dict({"sweep": {"seed": [1]}})


class TestBundledAxes:
    def test_dict_values_merge_into_params(self):
        matrix = MatrixSpec(
            workload="policy_rt",
            base={"tasks": 8},
            sweep={
                "campaign": [
                    {"seed": 1, "kills": 1},
                    {"seed": 2, "kills": 2},
                ],
                "policy": ["edf", "kfault"],
            },
        )
        jobs = matrix.jobs()
        assert len(jobs) == matrix.num_jobs == 4
        for spec in jobs:
            assert "campaign" not in spec.params
            assert spec.params["tasks"] == 8
            assert spec.params["seed"] == spec.params["kills"]

    def test_bundles_co_vary_instead_of_multiplying(self):
        matrix = MatrixSpec(
            workload="w",
            sweep={"campaign": [{"seed": 1, "kills": 1},
                                {"seed": 2, "kills": 2}]},
        )
        seen = [(s.params["seed"], s.params["kills"])
                for s in matrix.jobs()]
        assert seen == [(1, 1), (2, 2)]

    def test_bundled_expansion_is_deterministic(self):
        build = lambda: MatrixSpec(
            workload="w",
            sweep={
                "campaign": [{"seed": 2}, {"seed": 1}],
                "k": [0, 1],
            },
        ).jobs()
        assert [s.digest for s in build()] == [s.digest for s in build()]


class TestMatrixEdgeCases:
    """The expansion corners the DSE engine leans on."""

    def test_empty_sweep_yields_the_single_base_job(self):
        matrix = MatrixSpec(workload="demo", base={"seed": 3}, sweep={})
        jobs = matrix.jobs()
        assert matrix.num_jobs == 1
        assert len(jobs) == 1
        assert jobs[0].params == {"seed": 3}
        assert jobs[0].digest == JobSpec("demo", {"seed": 3}).digest

    def test_bundles_mixed_with_scalar_axes(self):
        matrix = MatrixSpec(
            workload="w",
            base={"words": 4, "drop_rate": 0.5},
            sweep={
                "campaign": [
                    {"seed": 1, "drop_rate": 0.0},
                    {"seed": 2, "drop_rate": 0.1},
                ],
                "slices_x": [1, 2],
            },
        )
        jobs = matrix.jobs()
        assert len(jobs) == 4
        for spec in jobs:
            # The bundle overrides base keys; the scalar axis binds its
            # own name; the axis name of the bundle never leaks.
            assert "campaign" not in spec.params
            assert spec.params["words"] == 4
            assert spec.params["drop_rate"] in (0.0, 0.1)
        # Sorted axis order: campaign before slices_x, slices_x fastest.
        assert [(s.params["seed"], s.params["slices_x"]) for s in jobs] == [
            (1, 1), (1, 2), (2, 1), (2, 2),
        ]

    def test_dedupe_keeps_first_occurrence_order(self):
        matrix = MatrixSpec(
            workload="w",
            sweep={
                # Bundles collide with the scalar axis's combinations:
                # {"seed": 1} from the bundle equals seed=1 from the
                # scalar axis once merged.
                "campaign": [{"seed": 1}, {"seed": 2}, {"seed": 1}],
                "zz_extra": [0],
            },
        )
        seeds = [s.params["seed"] for s in matrix.jobs()]
        assert seeds == [1, 2]
        assert matrix.num_jobs == 3  # pre-dedupe product

    def test_dedupe_ordering_is_stable_across_runs(self):
        def build():
            return MatrixSpec(
                workload="w",
                base={"fixed": True},
                sweep={
                    "a": [2, 1, 2],
                    "b": [{"x": 1}, {"x": 1}, {"x": 2}],
                },
            ).jobs()

        first = build()
        for _ in range(3):
            again = build()
            assert [s.digest for s in again] == [s.digest for s in first]
            assert [s.params for s in again] == [s.params for s in first]
        # 3x3 product with duplicate values collapses to 2x2 configs.
        assert len(first) == 4
