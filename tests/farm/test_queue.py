"""Tests for the durable job queue: lifecycle, durability, recovery."""

import pytest

from repro.farm import FarmError, JobQueue, JobSpec


def specs(n=3):
    return [JobSpec("demo", {"seed": i}) for i in range(n)]


class TestLifecycle:
    def test_submit_claim_complete(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        records = queue.submit_all(specs())
        assert [r.state for r in records] == ["pending"] * 3

        claimed = queue.claim(worker=0)
        assert claimed.state == "running"
        assert claimed.attempts == 1
        assert claimed.workers == [0]
        assert claimed.index == 0  # submission order

        done = queue.complete(claimed.job_id)
        assert done.state == "done"
        assert queue.counts() == {
            "pending": 2, "running": 0, "done": 1,
            "failed": 0, "preempted": 0,
        }
        assert not queue.done()

    def test_submit_dedupes_on_content(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        first = queue.submit(JobSpec("demo", {"seed": 1}))
        again = queue.submit(JobSpec("demo", {"seed": 1}))
        assert again.job_id == first.job_id
        assert len(queue) == 1

    def test_preempted_jobs_claim_first(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        queue.submit_all(specs())
        first = queue.claim(worker=0)
        queue.preempt(first.job_id)
        # The preempted job outranks the never-started pending ones.
        reclaimed = queue.claim(worker=1)
        assert reclaimed.job_id == first.job_id
        assert reclaimed.attempts == 2
        assert reclaimed.workers == [0, 1]

    def test_claim_specific_job_must_be_claimable(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        queue.submit_all(specs())
        record = queue.claim(worker=0)
        with pytest.raises(FarmError, match="not claimable"):
            queue.claim(worker=1, job_id=record.job_id)

    def test_claim_on_empty_queue_returns_none(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        assert queue.claim(worker=0) is None


class TestDurability:
    def test_queue_state_survives_reopening(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        queue.submit_all(specs())
        record = queue.claim(worker=0)
        queue.fail(record.job_id, "boom")

        reopened = JobQueue(tmp_path / "farm")
        assert reopened.counts()["failed"] == 1
        assert reopened.get(record.job_id).error == "boom"
        assert [r.index for r in reopened.jobs()] == [0, 1, 2]

    def test_recover_flips_orphaned_running_jobs(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        queue.submit_all(specs())
        running = queue.claim(worker=0)
        # Simulate the farm process dying: reopen and recover.
        reopened = JobQueue(tmp_path / "farm")
        recovered = reopened.recover()
        assert [r.job_id for r in recovered] == [running.job_id]
        assert reopened.get(running.job_id).state == "preempted"

    def test_done_requires_all_terminal(self, tmp_path):
        queue = JobQueue(tmp_path / "farm")
        assert not queue.done()  # empty queue is not "done"
        queue.submit_all(specs(2))
        for _ in range(2):
            record = queue.claim(worker=0)
            queue.complete(record.job_id)
        assert queue.done()
