"""The farm's two determinism guarantees, pinned at the byte level.

1. **Preemption is invisible in the result**: a job killed mid-run
   (exit 75) and resumed — by a different worker process — produces a
   ``result.json`` byte-identical to an uninterrupted run's.
2. **A cache hit is a simulation**: the document a
   :class:`ResultCache` hit returns serialises to exactly the bytes a
   fresh run of that config writes.
"""

from pathlib import Path

from repro.checkpoint.snapshot import canonical_json
from repro.farm import (
    EXIT_PREEMPTED,
    JobQueue,
    JobSpec,
    ResultCache,
    WorkerPool,
    execute_job,
)
from repro.farm.worker import load_outcomes


SPEC = JobSpec("faults_stream", {"words": 6, "seed": 3, "drop_rate": 0.05})


def result_bytes(work_dir) -> bytes:
    return (Path(work_dir) / "result.json").read_bytes()


class TestPreemptionByteIdentity:
    def test_preempt_and_resume_matches_uninterrupted(self, tmp_path):
        # Reference: one uninterrupted run.
        assert execute_job(SPEC.config, tmp_path / "ref",
                           checkpoint_every=200) == 0

        # Preempted: killed after 300 fresh events, then resumed from
        # the checkpoint store by a second execute_job call — the exact
        # migration path (state moves as bundles on disk, the resuming
        # call shares nothing in memory with the first).
        code = execute_job(SPEC.config, tmp_path / "mig",
                           checkpoint_every=200, preempt_after_events=300)
        assert code == EXIT_PREEMPTED
        assert not (tmp_path / "mig" / "result.json").exists()
        assert execute_job(SPEC.config, tmp_path / "mig", attempt=2,
                           checkpoint_every=200) == 0

        assert result_bytes(tmp_path / "mig") == result_bytes(tmp_path / "ref")
        outcomes = load_outcomes(tmp_path / "mig")
        assert [o["outcome"] for o in outcomes] == ["killed", "completed"]
        assert outcomes[1]["events_replayed"] > 0

    def test_pool_migration_matches_uninterrupted(self, tmp_path):
        # The same property through the whole farm stack: preempted in
        # one worker process, resumed in another.
        assert execute_job(SPEC.config, tmp_path / "ref",
                           checkpoint_every=200) == 0

        queue = JobQueue(tmp_path / "farm")
        record = queue.submit(SPEC)
        cache = ResultCache(tmp_path / "farm" / "cache")
        pool = WorkerPool(queue, cache, num_workers=2, checkpoint_every=200)
        pool.run(preempt={record.job_id: 300})

        assert len(set(queue.get(record.job_id).workers)) == 2  # migrated
        assert result_bytes(pool.work_dir(record.job_id)) == \
            result_bytes(tmp_path / "ref")


class TestCacheHitByteIdentity:
    def test_hit_equals_fresh_simulation(self, tmp_path):
        assert execute_job(SPEC.config, tmp_path / "fresh",
                           checkpoint_every=200) == 0
        fresh = result_bytes(tmp_path / "fresh")

        queue = JobQueue(tmp_path / "farm")
        queue.submit(SPEC)
        cache = ResultCache(tmp_path / "farm" / "cache")
        WorkerPool(queue, cache, num_workers=1, checkpoint_every=200).run()

        hit = cache.get(SPEC.digest)
        assert hit is not None
        assert canonical_json(hit).encode() == fresh
