"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestInfo:
    def test_single_slice(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cores:            16" in out
        assert "8.0 GIPS" in out

    def test_480_core_machine(self, capsys):
        assert main(["info", "--slices-x", "5", "--slices-y", "6"]) == 0
        out = capsys.readouterr().out
        assert "cores:            480" in out
        assert "240.0 GIPS" in out


class TestTables:
    def test_tables_contain_all_sections(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "10880.0 pJ/bit" in out
        assert "XMOS XS1-L" in out and "YES" in out
        assert "SpiNNaker" in out
        assert "Fig. 2" in out


class TestDemo:
    def test_demo_runs_and_reports(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "streamed words: [0, 1, 4, 9]" in out
        assert "Energy report" in out


class TestParsing:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
