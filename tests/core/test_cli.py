"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestInfo:
    def test_single_slice(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cores:            16" in out
        assert "8.0 GIPS" in out

    def test_480_core_machine(self, capsys):
        assert main(["info", "--slices-x", "5", "--slices-y", "6"]) == 0
        out = capsys.readouterr().out
        assert "cores:            480" in out
        assert "240.0 GIPS" in out


class TestTables:
    def test_tables_contain_all_sections(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "10880.0 pJ/bit" in out
        assert "XMOS XS1-L" in out and "YES" in out
        assert "SpiNNaker" in out
        assert "Fig. 2" in out


class TestDemo:
    def test_demo_runs_and_reports(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "streamed words: [0, 1, 4, 9]" in out
        assert "Energy report" in out


class TestCheckpointCli:
    def test_faults_kill_exits_resumable(self, capsys, tmp_path):
        """--kill-after-events simulates a crash: exit 75 + bundles on disk."""
        store = tmp_path / "store"
        code = main([
            "faults", "--words", "8", "--seed", "3",
            "--checkpoint-every", "400",
            "--checkpoint-dir", str(store),
            "--kill-after-events", "1200",
        ])
        assert code == 75
        out = capsys.readouterr().out
        assert "killed after 1200 events" in out
        assert list(store.glob("checkpoint-*.json"))

    def test_checkpoint_then_resume_completes(self, capsys, tmp_path):
        bundle = tmp_path / "bundle.json"
        assert main([
            "checkpoint", "--workload", "faults_stream",
            "--params", '{"words": 8, "seed": 1}',
            "--after-events", "900", "--out", str(bundle),
        ]) == 0
        out = capsys.readouterr().out
        assert "events processed  900" in out
        assert bundle.exists()
        assert main(["resume", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "@ 900 events, verified" in out
        assert "recovery report: completed" in out
        assert "delivered         8 (intact)" in out

    def test_resume_from_store_matches_uninterrupted(self, capsys, tmp_path):
        """The CI soak flow in miniature: kill, resume from the store,
        and diff the final JSON report against an uninterrupted run."""
        import json

        store = tmp_path / "store"
        report_path = tmp_path / "resumed.json"
        assert main([
            "faults", "--words", "8", "--seed", "3",
            "--checkpoint-every", "300",
            "--checkpoint-dir", str(store),
            "--kill-after-events", "1000",
        ]) == 75
        capsys.readouterr()
        assert main([
            "resume", "--dir", str(store),
            "--report-out", str(report_path),
        ]) == 0
        capsys.readouterr()
        resumed = json.loads(report_path.read_text())
        resumed.pop("recovery")

        from repro.checkpoint import build_workload
        reference = build_workload(
            "faults_stream",
            {"slices_x": 1, "slices_y": 1, "words": 8,
             "drop_rate": 0.05, "seed": 3},
        )
        reference.system.run()
        assert (
            json.dumps(resumed, sort_keys=True)
            == json.dumps(reference.final_report(), sort_keys=True)
        )

    def test_resume_without_source_errors(self, capsys):
        assert main(["resume"]) == 2
        assert "need a bundle path or --dir" in capsys.readouterr().err


class TestParsing:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
