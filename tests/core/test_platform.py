"""Tests for the assembled SwallowSystem platform."""

import pytest

from repro import (
    Compute,
    Frequency,
    RecvWord,
    SendWord,
    SwallowSystem,
    assemble,
)


class TestConstruction:
    def test_default_is_one_slice(self):
        system = SwallowSystem()
        assert system.num_cores == 16

    def test_multi_slice(self):
        assert SwallowSystem(slices_x=2, slices_y=2).num_cores == 64

    def test_with_ethernet(self):
        system = SwallowSystem(ethernet_columns=(0, 3))
        assert len(system.bridges) == 2

    def test_repr(self):
        assert "16 cores" in repr(SwallowSystem())


class TestExecution:
    def test_isa_program_runs(self):
        system = SwallowSystem()
        thread = system.spawn(system.core(0), assemble("""
            ldc r0, 10
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        system.run()
        assert thread.halted
        assert system.all_halted

    def test_task_communication_via_channel(self):
        system = SwallowSystem()
        channel = system.channel(system.core(0), system.core(9))
        got = []

        def producer():
            yield Compute(50)
            yield SendWord(channel.a, 777)

        def consumer():
            got.append((yield RecvWord(channel.b)))

        system.spawn_task(system.core(0), producer())
        system.spawn_task(system.core(9), consumer())
        system.run()
        assert got == [777]

    def test_run_for_us(self):
        system = SwallowSystem()
        system.run_for_us(5)
        assert system.sim.now == 5_000_000

    def test_set_frequency_all_cores(self):
        system = SwallowSystem()
        system.set_frequency(Frequency.mhz(125))
        assert all(core.frequency.megahertz == 125 for core in system.cores)

    def test_set_frequency_subset(self):
        system = SwallowSystem()
        system.set_frequency(Frequency.mhz(71), cores=[system.core(0)])
        assert system.core(0).frequency.megahertz == 71
        assert system.core(1).frequency.megahertz == 500


class TestTransparency:
    def test_energy_report_totals(self):
        system = SwallowSystem()
        system.spawn(system.core(0), assemble("""
            ldc r0, 500
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        system.run()
        report = system.energy_report()
        assert report.total_instructions == 1002
        assert report.total_energy_j > 0
        assert report.core_energy_j > 0
        assert len(report.cores) == 16

    def test_busy_core_uses_more_energy(self):
        system = SwallowSystem()
        system.spawn(system.core(3), assemble("""
            ldc r0, 5000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        system.run()
        report = system.energy_report()
        by_node = {row.node_id: row for row in report.cores}
        busy = system.core(3).node_id
        idle = system.core(4).node_id
        assert by_node[busy].energy_j > by_node[idle].energy_j

    def test_report_renders(self):
        system = SwallowSystem()
        system.run_for_us(10)
        text = system.energy_report().render()
        assert "Energy report" in text
        assert "mean power" in text

    def test_measured_gips(self):
        system = SwallowSystem()
        program = assemble("""
            ldc r0, 1000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        for core in system.cores:
            for _ in range(4):
                core.spawn(program)
        system.run()
        # 16 cores saturated at 500 MIPS each = 8 GIPS.
        assert system.measured_gips() == pytest.approx(8.0, rel=0.05)

    def test_measurement_board_access(self):
        system = SwallowSystem()
        system.run_for_us(10)
        board = system.measurement_board(0, 0)
        assert board.sample_channel(0) > 0
