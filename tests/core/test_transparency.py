"""Tests for energy-transparency reports."""

import pytest

from repro import SwallowSystem, assemble
from repro.core.transparency import CoreEnergyRow


class TestCoreEnergyRow:
    def test_nj_per_instruction(self):
        row = CoreEnergyRow(node_id=0, instructions=1000, energy_j=1e-6,
                            mean_power_mw=100.0)
        assert row.nj_per_instruction == pytest.approx(1.0)

    def test_zero_instructions(self):
        row = CoreEnergyRow(node_id=0, instructions=0, energy_j=1e-6,
                            mean_power_mw=100.0)
        assert row.nj_per_instruction == 0.0


class TestReport:
    def build(self):
        system = SwallowSystem()
        system.spawn(system.core(0), assemble("""
            ldc r0, 1000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        system.run()
        return system, system.energy_report()

    def test_totals_consistent(self):
        _, report = self.build()
        breakdown_total = (
            report.core_energy_j + report.link_energy_j + report.support_energy_j
        )
        assert report.total_energy_j == pytest.approx(breakdown_total)

    def test_mean_power_matches_ledger(self):
        system, report = self.build()
        assert report.mean_power_w == pytest.approx(
            system.accounting.mean_power_mw() / 1e3, rel=0.01
        )

    def test_instruction_counts(self):
        _, report = self.build()
        assert report.total_instructions == 2002

    def test_busy_core_has_higher_nj_than_nothing(self):
        _, report = self.build()
        busy = next(r for r in report.cores if r.instructions > 0)
        # With static power amortised over a 1-thread run, per-instruction
        # energy lands far above the dynamic-only cost.
        assert busy.nj_per_instruction > 0.5

    def test_render_truncates(self):
        _, report = self.build()
        text = report.render(top=2)
        assert "more cores" in text

    def test_render_contains_totals_line(self):
        _, report = self.build()
        assert "totals:" in report.render()

    def test_empty_report_power_zero(self):
        from repro.core.transparency import EnergyReport

        report = EnergyReport(elapsed_s=0.0)
        assert report.mean_power_w == 0.0
        assert report.total_energy_j == 0.0


class TestSerialisation:
    def test_to_dict_roundtrips_through_json(self):
        import json

        system = SwallowSystem()
        system.run_for_us(10)
        report = system.energy_report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["total_energy_j"] == pytest.approx(report.total_energy_j)
        assert len(payload["cores"]) == 16
        assert payload["total_instructions"] == report.total_instructions


class TestThreadAttribution:
    def build(self):
        from repro import SwallowSystem, assemble

        system = SwallowSystem()
        long_loop = assemble("""
            ldc r0, 3000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        short_loop = assemble("""
            ldc r0, 1000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        busy = system.core(0)
        busy.spawn(long_loop, name="long")
        busy.spawn(short_loop, name="short")
        system.run()
        return system

    def test_energy_conserved(self):
        from repro.core import attribute_to_threads

        system = self.build()
        rows = attribute_to_threads(system)
        total = sum(row.energy_j for row in rows)
        ledger = sum(
            t.energy_j for t in system.accounting.trackers.values()
        )
        assert total == pytest.approx(ledger, rel=1e-9)

    def test_bigger_thread_gets_more(self):
        from repro.core import attribute_to_threads

        system = self.build()
        rows = {r.thread_name: r for r in attribute_to_threads(system)
                if r.node_id == system.core(0).node_id}
        assert rows["long"].energy_j > rows["short"].energy_j
        ratio = rows["long"].instructions / rows["short"].instructions
        assert rows["long"].energy_j / rows["short"].energy_j == pytest.approx(ratio)

    def test_idle_cores_attributed_to_idle(self):
        from repro.core import attribute_to_threads

        system = self.build()
        idle_rows = [r for r in attribute_to_threads(system)
                     if r.thread_name == "<idle>"]
        assert len(idle_rows) >= 15  # the other cores never ran anything
        assert all(r.energy_j > 0 for r in idle_rows)
