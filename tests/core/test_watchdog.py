"""Unit tests for the watchdog: fingerprints, deadlines, the ladder."""

import pytest

from repro import Compute, NanoOS, SwallowSystem
from repro.core.watchdog import RollbackSignal, Watchdog
from repro.sim import us
from repro.xs1.behavioral import Sleep


def spinner(cycles_per_beat: int = 1_000, beats: int = 10_000):
    """A task that sleeps forever in small beats without retiring much."""
    def factory(core):
        def body():
            for _ in range(beats):
                yield Sleep(cycles_per_beat)
        return body()
    return factory


def worker(instructions: int = 50_000):
    def factory(core):
        def body():
            yield Compute(instructions)
        return body()
    return factory


class TestRegistration:
    def test_watch_validates_stall_checks(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(worker())
        watchdog = Watchdog(system, nos=nos)
        with pytest.raises(ValueError, match="stall_checks"):
            watchdog.watch(handle, stall_checks=0)

    def test_double_watch_rejected(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(worker())
        watchdog = Watchdog(system, nos=nos)
        watchdog.watch(handle)
        with pytest.raises(ValueError, match="already watched"):
            watchdog.watch(handle)

    def test_double_arm_rejected(self):
        system = SwallowSystem(metrics=False)
        watchdog = Watchdog(system)
        watchdog.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            watchdog.arm()


class TestSupervision:
    def test_progressing_task_never_fires(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(worker(instructions=200_000))
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        watchdog.watch(handle)
        watchdog.arm()
        system.run()
        assert handle.done
        assert watchdog.fired == 0
        assert watchdog.checks > 0

    def test_heartbeat_counts_as_progress(self):
        """A task that retires no instructions but heartbeats stays alive."""
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)

        def factory(core):
            def body():
                for _ in range(40):
                    watchdog.heartbeat(handle.task_id)
                    yield Sleep(5_000)
            return body()

        handle = nos.submit(factory)
        watchdog.watch(handle, stall_checks=2)
        watchdog.arm()
        system.run()
        assert handle.done
        assert watchdog.fired == 0

    def test_until_predicate_ends_supervision(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(spinner(beats=200))
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        watchdog.watch(handle, progress=lambda: 0, until=lambda: True)
        watchdog.arm()
        system.run()
        assert watchdog.fired == 0          # predicate short-circuits checks

    def test_deadline_miss_fires(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(spinner())
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        # Progress probe keeps changing (no stall), but the deadline
        # passes: the ladder must still fire, replace first.
        ticks = []
        watchdog.watch(
            handle,
            progress=lambda: ticks.append(0) or len(ticks),
            deadline_us=30.0,
        )
        watchdog.arm()
        with pytest.raises(RollbackSignal):
            system.run()
        assert watchdog.fired >= 1
        assert watchdog.actions[0]["cause"] == "deadline"
        assert watchdog.actions[0]["rung"] == "replace"


class TestLadder:
    def test_stall_replaces_then_rolls_back(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(spinner())
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        watchdog.watch(handle, progress=lambda: 0, stall_checks=2)
        watchdog.arm()
        with pytest.raises(RollbackSignal) as excinfo:
            system.run()
        assert excinfo.value.task_id == handle.task_id
        rungs = [a["rung"] for a in watchdog.actions]
        assert rungs == ["replace", "rollback"]
        assert nos.replacements == 1
        assert handle.restarts == 1          # replaced onto a fresh core

    def test_without_nos_goes_straight_to_rollback(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(spinner())
        watchdog = Watchdog(system, check_every_us=10.0)   # no nos wired
        watchdog.watch(handle, progress=lambda: 0, stall_checks=2)
        watchdog.arm()
        with pytest.raises(RollbackSignal):
            system.run()
        assert [a["rung"] for a in watchdog.actions] == ["rollback"]

    def test_metrics_registered(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handle = nos.submit(worker())
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        watchdog.watch(handle)
        watchdog.register_metrics(system.metrics)
        watchdog.arm()
        system.run()
        snapshot = system.metrics_snapshot().as_dict()
        assert snapshot["watchdog.fired"] == 0
        assert snapshot["watchdog.checks"] == watchdog.checks
        assert snapshot["watchdog.watched"] == 0

    def test_snapshot_state_captures_ladder(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(spinner())
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        watchdog.watch(handle, progress=lambda: 0, stall_checks=2)
        watchdog.arm()
        with pytest.raises(RollbackSignal):
            system.run()
        state = watchdog.snapshot_state()
        assert state["fired"] == 2
        assert [a["rung"] for a in state["actions"]] == [
            "replace", "rollback"
        ]
        watch = state["watches"][str(handle.task_id)]
        assert watch["escalations"] == 1
        # And restore_state verifies (same object, no divergence).
        watchdog.restore_state(state)


class TestEscalationMetrics:
    def test_deadline_miss_and_escalation_series(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handle = nos.submit(spinner())
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        ticks = []
        watchdog.watch(
            handle,
            progress=lambda: ticks.append(0) or len(ticks),
            deadline_us=30.0,
        )
        watchdog.register_metrics(system.metrics)
        watchdog.arm()
        with pytest.raises(RollbackSignal):
            system.run()
        snapshot = system.metrics_snapshot()
        assert snapshot.value("watchdog.deadline_miss") == \
            watchdog.deadline_misses >= 1
        # One series per ladder rung actually taken, labeled by stage.
        rungs = [action["rung"] for action in watchdog.actions]
        for rung in set(rungs):
            assert snapshot.value(
                "watchdog.escalations", stage=rung
            ) == rungs.count(rung)
        assert watchdog.snapshot_state()["deadline_misses"] == \
            watchdog.deadline_misses

    def test_no_misses_means_zero_counter(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handle = nos.submit(worker())
        watchdog = Watchdog(system, nos=nos, check_every_us=10.0)
        watchdog.watch(handle)
        watchdog.register_metrics(system.metrics)
        watchdog.arm()
        system.run()
        snapshot = system.metrics_snapshot()
        assert snapshot.value("watchdog.deadline_miss") == 0
        assert snapshot.series("watchdog.escalations") == []
