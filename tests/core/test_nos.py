"""Tests for the nOS-lite task runtime."""

import pytest

from repro import Compute, SwallowSystem, assemble
from repro.core import NanoOS
from repro.xs1.errors import ResourceError


def simple_task(core):
    def body():
        yield Compute(100)
    return body()


class TestPlacement:
    def test_tasks_spread_across_cores(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handles = [nos.submit(simple_task) for _ in range(16)]
        placed = {handle.core.node_id for handle in handles}
        assert len(placed) == 16  # least-loaded placement spreads out

    def test_pinned_placement(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        target = system.core(7)
        handle = nos.submit(simple_task, pin=target)
        assert handle.core is target

    def test_overflow_rejected(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        target = system.core(0)
        for _ in range(8):
            nos.submit(simple_task, pin=target)
        with pytest.raises(ResourceError):
            nos.submit(simple_task, pin=target)

    def test_machine_wide_capacity(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        for _ in range(16 * 8):
            nos.submit(simple_task)
        with pytest.raises(ResourceError):
            nos.submit(simple_task)

    def test_placement_histogram(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        for _ in range(32):
            nos.submit(simple_task)
        histogram = nos.placement_histogram()
        assert sum(histogram.values()) == 32
        assert all(count == 2 for count in histogram.values())


class TestExecution:
    def test_tasks_complete(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handles = [nos.submit(simple_task) for _ in range(4)]
        system.run()
        assert nos.all_done
        assert all(handle.done for handle in handles)

    def test_program_submission(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handle = nos.submit_program(assemble("ldc r0, 1\nfreet"))
        system.run()
        assert handle.done
        assert handle.thread.regs.read(0) == 1

    def test_start_immediate_without_bridge(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        handle = nos.submit(simple_task)
        system.run()
        assert handle.start_time_ps == 0


class TestMap:
    def test_map_computes_all_items(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        job = nos.map(lambda x: x * x, list(range(10)))
        system.run()
        assert job.done
        assert job.ordered_results() == [x * x for x in range(10)]

    def test_map_spreads_work(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        nos.map(lambda x: x, list(range(16)))
        system.run()
        assert len(nos.placement_histogram()) == 16

    def test_incomplete_job_raises(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        job = nos.map(lambda x: x, [1, 2, 3])
        with pytest.raises(RuntimeError, match="incomplete"):
            job.ordered_results()

    def test_map_cost_affects_runtime(self):
        def runtime(cost):
            system = SwallowSystem()
            nos = NanoOS(system)
            job = nos.map(lambda x: x, [1], cost_per_item=cost)
            system.run()
            assert job.done
            return system.sim.now

        assert runtime(10_000) > runtime(10)

    def test_map_over_ethernet_pays_upload(self):
        system = SwallowSystem(ethernet_columns=(0,))
        nos = NanoOS(system, bridge=system.bridges[0])
        job = nos.map(lambda x: -x, [5, 6])
        system.run()
        assert job.ordered_results() == [-5, -6]
        # Two 8 KiB uploads serialised at 80 Mbit/s >= 204.8 us.
        assert system.sim.now >= 204_000_000


class TestEthernetBoot:
    def test_upload_delays_start(self):
        """With a bridge, code upload at 80 Mbit/s delays task start."""
        system = SwallowSystem(ethernet_columns=(0,))
        nos = NanoOS(system, bridge=system.bridges[0])
        handle = nos.submit(simple_task)
        system.run()
        assert handle.done
        # 8 KiB at 80 Mbit/s = 102.4 us.
        assert handle.start_time_ps == pytest.approx(102_400_000, rel=0.01)

    def test_program_upload_time_scales_with_size(self):
        system = SwallowSystem(ethernet_columns=(0,))
        nos = NanoOS(system, bridge=system.bridges[0])
        small = nos.submit_program(assemble("freet"))
        big = nos.submit_program(assemble("\n".join(["nop"] * 400) + "\nfreet"))
        system.run()
        assert small.start_time_ps < big.start_time_ps


class TestMapJobIsolation:
    def test_jobs_do_not_share_default_containers(self):
        """Regression: MapJob used None + __post_init__; two jobs must
        never alias their handles/results containers."""
        from repro.core.nos import MapJob

        job_a = MapJob(expected=2)
        job_b = MapJob(expected=2)
        job_a.results[0] = "a"
        job_a.handles.append(object())
        assert job_b.results == {}
        assert job_b.handles == []


class TestReplacement:
    def test_restarted_task_reruns_factory_elsewhere(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        runs = []

        def factory(core):
            def body():
                runs.append(core.node_id)
                yield Compute(500_000)
            return body()

        handle = nos.submit(factory)
        system.sim.schedule_at(
            1_000_000, lambda: nos.handle_core_failure(handle.core)
        )
        system.run()
        assert handle.done
        assert handle.restarts == 1
        assert len(runs) == 2
        assert runs[0] != runs[1]   # restart landed on a different core

    def test_core_death_during_upload_restarts_cleanly(self):
        """Kill the placed core halfway through the 102.4 us code upload:
        the stale start event must no-op (generation guard) and the task
        pays a fresh upload to its replacement core."""
        system = SwallowSystem(ethernet_columns=(0,))
        nos = NanoOS(system, bridge=system.bridges[0])
        handle = nos.submit(simple_task)
        victim = handle.core
        system.sim.schedule_at(
            50_000_000, lambda: nos.handle_core_failure(victim)
        )
        system.run()
        assert handle.done
        assert handle.restarts == 1
        assert handle.core is not victim
        # Second upload serialises behind the first: start >= 2 x 102.4 us.
        assert handle.start_time_ps >= 200_000_000


class TestTieBreakAndBudget:
    def test_pick_core_tie_break_is_lowest_node_id(self):
        """Equal load must break ties deterministically by node id."""
        system = SwallowSystem()
        nos = NanoOS(system)
        assert nos.pick_core().node_id == 0
        nos.submit(simple_task)                     # loads node 0
        assert nos.pick_core().node_id == 1
        for _ in range(15):
            nos.submit(simple_task)                 # one task everywhere
        # All loads equal again: the tie-break wraps back to node 0,
        # and repeated picks (no submission between) agree.
        assert nos.pick_core().node_id == 0
        assert nos.pick_core().node_id == 0

    def test_exhausted_budget_raises_without_partial_replacement(self):
        """Past the fault budget the error must carry the ledger counts
        and the failed heal must not have moved or restarted anything."""
        system = SwallowSystem()
        nos = NanoOS(system, fault_budget=1)
        for _ in range(16):
            nos.submit(simple_task)
        nos.handle_core_failure(system.core(0))     # spends the budget
        victim = system.core(1)
        before = [
            (task.core.node_id, task.restarts) for task in nos.tasks
        ]
        replacements = nos.replacements
        with pytest.raises(
            ResourceError,
            match=r"fault budget exhausted: 1 core failure\(s\) already "
                  r"healed, budget is 1",
        ):
            nos.handle_core_failure(victim)
        # The refused heal mutated nothing: no core marked failed, no
        # task moved, no restart generation bumped.
        assert not victim.failed
        assert len(nos.failed_cores) == 1
        assert nos.replacements == replacements
        assert [
            (task.core.node_id, task.restarts) for task in nos.tasks
        ] == before
