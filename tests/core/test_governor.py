"""Tests for the self-measuring power governor."""

import pytest

from repro import SwallowSystem, assemble
from repro.core import PowerGovernor
from repro.energy import active_power_mw


def saturate(core, iterations=10_000_000):
    program = assemble(f"""
        ldc r0, {iterations}
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for _ in range(4):
        core.spawn(program)


class TestGovernor:
    def test_validation(self):
        system = SwallowSystem()
        board = system.measurement_board()
        with pytest.raises(ValueError):
            PowerGovernor(board, 0, budget_mw=-1)
        with pytest.raises(ValueError):
            PowerGovernor(board, 0, budget_mw=100, ladder_mhz=(500, 71))

    def test_governor_throttles_hot_rail(self):
        """Four saturated cores exceed the budget; the governor must
        step their frequency down until the rail fits."""
        system = SwallowSystem()
        board = system.measurement_board()
        for core in board.rails[0].cores:
            saturate(core)
        # Budget of 500 mW: four loaded cores at 500 MHz draw ~780 mW.
        governor = PowerGovernor(board, channel=0, budget_mw=500.0,
                                 period_cycles=20_000)
        host = system.core(8)  # a core on another rail
        governor.install(host, iterations=30)
        system.run_for_us(3_000)
        assert governor.log.adjustments > 0
        final_f = governor.log.frequencies_mhz[-1]
        assert final_f < 500
        # Final steady-state rail power within budget.
        assert governor.log.samples_mw[-1] <= 500.0 * 1.1

    def test_governor_raises_frequency_when_idle(self):
        """An idle rail sits far below budget: the ladder climbs back up
        (and stays at the top)."""
        system = SwallowSystem()
        board = system.measurement_board()
        governor = PowerGovernor(board, channel=1, budget_mw=900.0,
                                 period_cycles=10_000)
        governor._level = 0  # start at 71 MHz
        for core in governor.governed_cores:
            from repro import Frequency

            core.set_frequency(Frequency.mhz(71))
        governor.install(system.core(0), iterations=20)
        system.run_for_us(2_000)
        assert governor.log.frequencies_mhz[-1] == 500

    def test_governed_cores_are_rail_cores(self):
        system = SwallowSystem()
        board = system.measurement_board()
        governor = PowerGovernor(board, channel=2, budget_mw=100)
        assert governor.governed_cores == board.rails[2].cores


class TestGovernorState:
    def run_governed(self):
        system = SwallowSystem()
        board = system.measurement_board()
        for core in board.rails[0].cores:
            saturate(core, iterations=1_000_000)
        governor = PowerGovernor(board, channel=0, budget_mw=500.0,
                                 period_cycles=20_000)
        governor.install(system.core(8), iterations=10)
        system.run_for_us(1_000)
        return governor

    def test_snapshot_captures_config_level_and_log(self):
        governor = self.run_governed()
        state = governor.snapshot_state()
        assert state["channel"] == 0
        assert state["budget_mw"] == 500.0
        assert state["level"] == governor._level
        assert state["governed_nodes"] == [
            core.node_id for core in governor.governed_cores
        ]
        assert state["adjustments"] == governor.log.adjustments > 0
        assert len(state["samples_mw"]) == len(state["frequencies_mhz"])

    def test_restore_accepts_identical_replay(self):
        first = self.run_governed()
        second = self.run_governed()          # deterministic re-run
        second.restore_state(first.snapshot_state())

    def test_restore_rejects_divergence(self):
        from repro.sim.state import StateMismatchError

        governor = self.run_governed()
        forged = governor.snapshot_state()
        forged["level"] = (forged["level"] + 1) % 5
        with pytest.raises(StateMismatchError):
            governor.restore_state(forged)
