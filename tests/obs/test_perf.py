"""Tests for the perf observatory (repro.obs.perf).

Covers the three ledger layers: PerfRecord/PerfHistory roundtrips, the
rolling-baseline regression detector (no-change, improvement, and the
synthetic 2x slowdown that must fire), and RunHeartbeat — including the
byte-identity property: two same-seed runs emit identical deterministic
heartbeat cores.
"""

import json

import pytest

from repro.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    ResumableRun,
    build_workload,
)
from repro.obs.perf import (
    WALL_FIELDS,
    Comparison,
    PerfHistory,
    PerfRecord,
    RunHeartbeat,
    compare_against_history,
    config_digest,
    heartbeat_core,
    records_from_profile,
    render_history_report,
)
from repro.sim import Simulator
from repro.sim.engine import KERNEL_STATS


def make_record(bench="bench_x::test_y", eps=100_000.0, events=500_000,
                timestamp=1_000.0, sha="abc123"):
    return PerfRecord(
        bench=bench, events=events, wall_s=events / eps,
        timestamp=timestamp, git_sha=sha,
    )


class TestPerfRecord:
    def test_roundtrip(self):
        record = make_record()
        again = PerfRecord.from_dict(record.to_dict())
        assert again.bench == record.bench
        assert again.events == record.events
        assert again.wall_s == pytest.approx(record.wall_s)
        assert again.git_sha == "abc123"

    def test_events_per_sec(self):
        record = make_record(eps=250_000.0)
        assert record.events_per_sec == pytest.approx(250_000.0)
        zero = PerfRecord(bench="b", events=10, wall_s=0.0, timestamp=0.0)
        assert zero.events_per_sec == 0.0

    def test_config_digest_is_stable(self):
        a = config_digest({"x": 1, "y": 2})
        b = config_digest({"y": 2, "x": 1})
        assert a == b and len(a) == 16

    def test_records_from_profile_threshold(self):
        profile = {"benches": [
            {"file": "f.py", "test": "big", "events": 50_000, "wall_s": 0.5},
            {"file": "f.py", "test": "tiny", "events": 3, "wall_s": 0.001},
        ]}
        records = records_from_profile(profile, timestamp=1.0,
                                       min_events=1_000)
        assert [r.bench for r in records] == ["f.py::big"]


class TestPerfHistory:
    def test_append_load_roundtrip(self, tmp_path):
        history = PerfHistory(tmp_path / "out" / "history.jsonl")
        history.append(make_record(timestamp=1.0))
        history.extend([make_record(timestamp=2.0, eps=110_000.0)])
        loaded = history.load()
        assert [r.timestamp for r in loaded] == [1.0, 2.0]
        # Append-only: the file grows, rows never rewrite.
        assert len(history.path.read_text().splitlines()) == 2

    def test_baseline_is_rolling_median(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for eps in (100.0, 200.0, 300.0, 400.0, 500.0, 600.0):
            history.append(make_record(eps=eps, events=6_000))
        assert history.baseline("bench_x::test_y", window=5) == \
            pytest.approx(400.0)
        assert history.baseline("never_seen") is None

    def test_baseline_with_zero_sessions_is_none(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        assert history.baseline("bench_x::test_y") is None
        history.append(make_record(bench="other::bench"))
        assert history.baseline("bench_x::test_y") is None

    def test_baseline_with_one_session_is_that_session(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        history.append(make_record(eps=123_456.0))
        assert history.baseline("bench_x::test_y") == \
            pytest.approx(123_456.0)

    def test_baseline_with_two_sessions_is_midpoint(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        history.append(make_record(eps=100_000.0))
        history.append(make_record(eps=300_000.0))
        assert history.baseline("bench_x::test_y") == \
            pytest.approx(200_000.0)

    def test_empty_history(self, tmp_path):
        history = PerfHistory(tmp_path / "absent.jsonl")
        assert history.load() == []
        assert "empty" in render_history_report(history)


class TestRegressionDetector:
    def seeded_history(self, tmp_path, eps=100_000.0, rows=5):
        history = PerfHistory(tmp_path / "h.jsonl")
        for i in range(rows):
            history.append(make_record(eps=eps, timestamp=float(i)))
        return history

    def test_no_change_passes(self, tmp_path):
        history = self.seeded_history(tmp_path)
        comparisons, unseen = compare_against_history(
            history, [make_record(eps=100_000.0)], tolerance=0.30)
        assert not unseen
        assert len(comparisons) == 1
        assert not comparisons[0].regressed
        assert comparisons[0].ratio == pytest.approx(1.0)

    def test_improvement_passes(self, tmp_path):
        history = self.seeded_history(tmp_path)
        comparisons, _ = compare_against_history(
            history, [make_record(eps=180_000.0)], tolerance=0.30)
        assert not comparisons[0].regressed
        assert comparisons[0].ratio > 1.5

    def test_2x_slowdown_fires(self, tmp_path):
        history = self.seeded_history(tmp_path)
        comparisons, _ = compare_against_history(
            history, [make_record(eps=50_000.0)], tolerance=0.30)
        assert comparisons[0].regressed
        assert "REGRESSED" in comparisons[0].render()

    def test_noise_within_tolerance_passes(self, tmp_path):
        history = self.seeded_history(tmp_path)
        comparisons, _ = compare_against_history(
            history, [make_record(eps=75_000.0)], tolerance=0.30)
        assert not comparisons[0].regressed

    def test_new_bench_is_unseen_not_gated(self, tmp_path):
        history = self.seeded_history(tmp_path)
        comparisons, unseen = compare_against_history(
            history, [make_record(bench="brand::new", eps=10.0)])
        assert not comparisons
        assert [r.bench for r in unseen] == ["brand::new"]

    def test_small_benches_skipped(self, tmp_path):
        history = self.seeded_history(tmp_path)
        comparisons, unseen = compare_against_history(
            history, [make_record(events=5, eps=1.0)], min_events=10_000)
        assert not comparisons and not unseen

    def test_report_renders_trajectory(self, tmp_path):
        history = self.seeded_history(tmp_path)
        text = render_history_report(history)
        assert "bench_x::test_y" in text
        assert "baseline" in text


class TestHeartbeatCore:
    def test_strips_wall_fields_only(self):
        line = {"seq": 1, "events": 10, "wall_s": 0.5,
                "events_per_sec": 20.0, "sim_time_ps": 99}
        core = heartbeat_core(line)
        assert set(core) == {"seq", "events", "sim_time_ps"}
        assert WALL_FIELDS == {"wall_s", "events_per_sec"}


class TestRunHeartbeat:
    def ticker_sim(self, n=100):
        sim = Simulator()
        state = {"left": n}

        def tick():
            state["left"] -= 1
            if state["left"]:
                sim.schedule(sim.now + 1_000, tick)

        sim.schedule(0, tick)
        return sim

    def test_cadence_and_final_beat(self, tmp_path):
        out = tmp_path / "hb.jsonl"
        heartbeat = RunHeartbeat(25, out=out)
        executed = heartbeat.drive(self.ticker_sim(100))
        assert executed == 100
        # 3 mid-run beats (25/50/75) + the final closing beat; the beat
        # at event 100 is the final one because the queue drained.
        assert heartbeat.lines[-1]["final"] is True
        assert all(not line["final"] for line in heartbeat.lines[:-1])
        assert heartbeat.lines[-1]["events"] == 100
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        assert len(lines) == heartbeat.beats
        assert lines[0]["events"] == 25

    def test_every_events_validated(self):
        with pytest.raises(ValueError):
            RunHeartbeat(0)

    def test_wall_fields_present_but_outside_core(self):
        heartbeat = RunHeartbeat(50)
        heartbeat.drive(self.ticker_sim(60))
        line = heartbeat.lines[0]
        assert "wall_s" in line and "events_per_sec" in line
        assert "wall_s" not in heartbeat_core(line)

    def test_same_seed_runs_byte_identical_cores(self):
        """The acceptance property: two identically-seeded runs emit
        byte-identical heartbeat JSONL once wall fields are stripped."""
        cores = []
        for _ in range(2):
            context = build_workload(
                "faults_stream", {"words": 12, "seed": 3})
            heartbeat = RunHeartbeat(
                500, metrics=context.system.metrics)
            heartbeat.drive(context.system.sim)
            assert heartbeat.beats >= 2
            cores.append(heartbeat.core_jsonl())
        assert cores[0] == cores[1]


class TestReplayTagging:
    def test_resume_reports_replay_separately(self, tmp_path):
        """Kill, resume with a heartbeat, and require replayed events to
        be ledgered apart from fresh ones (never inflating events/sec)."""
        params = {"words": 12, "seed": 3}
        run = ResumableRun(
            "faults_stream", params,
            policy=CheckpointPolicy(every_events=400, retain=3),
            store=CheckpointStore(tmp_path / "store", retain=3),
        )
        run.run(kill_after_events=1500)
        assert run.killed

        replayed_before = KERNEL_STATS.events_replayed
        executed_before = KERNEL_STATS.events_executed
        resumed = ResumableRun.resume(
            CheckpointStore(tmp_path / "store", retain=3).latest())
        heartbeat = RunHeartbeat(500)
        report = resumed.run(heartbeat=heartbeat)
        assert report.to_dict()["outcome"] == "completed"

        assert resumed.events_replayed > 0
        assert KERNEL_STATS.events_replayed - replayed_before == \
            resumed.events_replayed
        # Replayed events never land in the fresh-events ledger.
        assert KERNEL_STATS.events_executed - executed_before == \
            resumed.events_fresh
        # Every heartbeat line carries the replay count alongside the
        # fresh count, so downstream consumers can't conflate them.
        assert heartbeat.lines
        for line in heartbeat.lines:
            assert line["events_replayed"] == resumed.events_replayed
            assert line["events"] <= resumed.events_fresh
