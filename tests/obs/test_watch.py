"""Tests for live power watchpoints (repro.obs.watch)."""

import pytest

from repro import Compute, Frequency, PowerWatchpoint, SwallowSystem
from repro.energy.measurement import SamplingRateError


def busy_system(instructions=30_000):
    """One slice with the four rail-0 cores running flat out."""
    system = SwallowSystem(slices_x=1)
    for index in range(4):
        def body():
            yield Compute(instructions)
        system.spawn_task(system.core(index), body())
    return system


class TestValidation:
    def test_single_channel_rate_cap(self):
        board = SwallowSystem(slices_x=1).measurement_board()
        with pytest.raises(SamplingRateError):
            PowerWatchpoint(board, channel=0, rate_hz=2_000_001.0,
                            above_mw=1.0)
        # 2 MS/s is legal on a single channel...
        PowerWatchpoint(board, channel=0, rate_hz=2_000_000.0, above_mw=1.0)
        # ...but not when watching all channels (1 MS/s cap).
        with pytest.raises(SamplingRateError):
            PowerWatchpoint(board, channel=None, rate_hz=2_000_000.0,
                            above_mw=1.0)

    def test_needs_a_rule(self):
        board = SwallowSystem(slices_x=1).measurement_board()
        with pytest.raises(ValueError):
            PowerWatchpoint(board, channel=0)

    def test_cannot_arm_twice(self):
        board = SwallowSystem(slices_x=1).measurement_board()
        watch = PowerWatchpoint(board, channel=0, above_mw=1.0)
        watch.arm(duration_s=1e-6)
        with pytest.raises(RuntimeError):
            watch.arm(duration_s=1e-6)


class TestFiring:
    def test_above_threshold_fires(self):
        system = busy_system()
        watch = PowerWatchpoint(
            system.measurement_board(), channel=0, rate_hz=1_000_000.0,
            window_samples=4, above_mw=500.0,
        ).arm(duration_s=30e-6)
        system.run()
        assert watch.firings
        event = watch.firings[0]
        assert event.rule == "above"
        assert event.window_mean_mw > 500.0
        assert "above threshold" in event.describe()

    def test_below_threshold_fires_when_idle(self):
        system = SwallowSystem(slices_x=1)
        watch = PowerWatchpoint(
            system.measurement_board(), channel=0, rate_hz=1_000_000.0,
            window_samples=4, below_mw=460.0,
        ).arm(duration_s=10e-6)
        system.run()
        assert watch.firings and watch.firings[0].rule == "below"

    def test_budget_fires_exactly_once(self):
        system = busy_system()
        watch = PowerWatchpoint(
            system.measurement_board(), channel=0, rate_hz=1_000_000.0,
            window_samples=4, budget_j=1e-6,
        ).arm(duration_s=30e-6)
        system.run()
        budget_firings = [e for e in watch.firings if e.rule == "budget"]
        assert len(budget_firings) == 1
        assert watch.energy_j > 1e-6
        assert "budget exceeded" in budget_firings[0].describe()

    def test_cooldown_spaces_firings(self):
        system = busy_system(instructions=60_000)
        watch = PowerWatchpoint(
            system.measurement_board(), channel=0, rate_hz=1_000_000.0,
            window_samples=4, above_mw=500.0, cooldown_windows=2,
        ).arm(duration_s=60e-6)
        system.run()
        # A sustained overload fires every (1 + cooldown) windows, not
        # every window.
        assert len(watch.firings) >= 2
        windows = watch.samples_taken // 4
        assert len(watch.firings) <= windows // 3 + 1

    def test_on_fire_callback_can_adapt(self):
        system = busy_system()
        cores = [system.core(i) for i in range(4)]

        def step_down(watch, event):
            if cores[0].frequency.megahertz > 250:
                system.set_frequency(Frequency.mhz(250), cores=cores)

        watch = PowerWatchpoint(
            system.measurement_board(), channel=0, rate_hz=1_000_000.0,
            window_samples=4, above_mw=500.0, on_fire=step_down,
        ).arm(duration_s=100e-6)
        system.run()
        assert watch.firings
        assert cores[0].frequency.megahertz == 250

    def test_disarm_stops_sampling(self):
        system = busy_system()
        watch = PowerWatchpoint(
            system.measurement_board(), channel=0, rate_hz=1_000_000.0,
            window_samples=4, above_mw=500.0,
            on_fire=lambda w, e: w.disarm(),
        ).arm(duration_s=100e-6)
        system.run()
        assert not watch.armed
        assert len(watch.firings) == 1
        assert watch.samples_taken < 100

    def test_firings_are_deterministic(self):
        histories = set()
        for _ in range(2):
            system = busy_system()
            watch = PowerWatchpoint(
                system.measurement_board(), channel=0, rate_hz=1_000_000.0,
                window_samples=4, above_mw=500.0, budget_j=5e-6,
            ).arm(duration_s=30e-6)
            system.run()
            histories.add(tuple(
                (e.time_ps, e.rule, e.window_mean_mw) for e in watch.firings
            ))
        assert len(histories) == 1
