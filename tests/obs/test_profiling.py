"""Tests for simulation profiling (repro.obs.profiling + engine hooks)."""

import pytest

from repro.obs.profiling import SimProfile, callback_source
from repro.sim import Simulator
from repro.sim.engine import KERNEL_STATS


class TestCallbackSource:
    def test_bound_method(self):
        sim = Simulator()
        assert callback_source(sim.step) == "Simulator.step"

    def test_plain_function(self):
        def fire():
            pass

        name = callback_source(fire)
        assert name.endswith("fire") and "<locals>" not in name

    def test_lambda(self):
        assert "<locals>" not in callback_source(lambda: None)


class TestSimulatorProfile:
    def test_counts_events_by_source(self):
        sim = Simulator()

        def tick():
            pass

        for i in range(5):
            sim.schedule(i * 10, tick)
        with sim.profile() as profile:
            sim.run()
        assert profile.events_total == sim.events_processed
        by_source = profile.events_by_source
        assert sum(by_source.values()) == profile.events_total
        assert any("tick" in source for source in by_source)

    def test_queue_depth_high_water(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        with sim.profile() as profile:
            sim.schedule(50, lambda: None)
            sim.run()
        assert sim.queue_depth_high_water == 8
        assert profile.queue_depth_high_water == 8

    def test_wall_and_sim_time_recorded(self):
        sim = Simulator()
        sim.schedule(0, lambda: None)
        sim.schedule(1_000_000, lambda: None)
        with sim.profile() as profile:
            sim.run()
        assert profile.wall_time_s > 0
        assert profile.sim_time_ps == 1_000_000
        assert profile.sim_wall_ratio > 0
        assert profile.events_per_sec > 0

    def test_profiler_removed_after_block(self):
        sim = Simulator()
        with sim.profile():
            pass
        assert sim._profiler is None
        sim.schedule(0, lambda: None)
        sim.run()  # must not touch the sealed profile

    def test_profile_render_and_dict(self):
        sim = Simulator()
        sim.schedule(0, lambda: None)
        with sim.profile() as profile:
            sim.run()
        text = profile.render()
        assert "1 events" in text
        data = profile.to_dict()
        assert data["events_total"] == 1
        assert set(data) >= {
            "events_by_source", "queue_depth_high_water", "sim_time_ps",
            "wall_time_s", "sim_wall_ratio", "events_per_sec",
        }

    def test_empty_profile_ratios_are_zero(self):
        profile = SimProfile()
        assert profile.sim_wall_ratio == 0.0
        assert profile.events_per_sec == 0.0


class TestKernelStats:
    def test_run_accumulates_global_ledger(self):
        before = KERNEL_STATS.events_executed
        sim = Simulator()
        for i in range(4):
            sim.schedule(i, lambda: None)
        sim.run()
        assert KERNEL_STATS.events_executed - before == 4

    def test_run_until_accumulates(self):
        before = KERNEL_STATS.events_executed
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run_until(100)
        assert KERNEL_STATS.events_executed - before == 1


class TestWallAttribution:
    def busy_sim(self, n=4_000):
        sim = Simulator()
        state = {"left": n}

        def spin():
            state["left"] -= 1
            if state["left"]:
                sim.schedule(sim.now + 100, spin)

        def other():
            pass

        sim.schedule(0, spin)
        for i in range(n // 4):
            sim.schedule(i * 400 + 50, other)
        return sim

    def test_attributed_wall_sums_to_total(self):
        """Per-source wall seconds (plus the <kernel> residual) must sum
        to the measured wall time — the 15% acceptance bound is met by
        construction, so pin the exact identity."""
        sim = self.busy_sim()
        with sim.profile(wall_sample_every=1) as profile:
            sim.run()
        assert profile.wall_by_source
        assert profile.wall_attributed_s == pytest.approx(
            profile.wall_time_s, rel=1e-9)
        assert abs(profile.wall_attributed_s - profile.wall_time_s) <= \
            0.15 * profile.wall_time_s

    def test_sampled_attribution_scales_up(self):
        sim = self.busy_sim()
        with sim.profile(wall_sample_every=8) as profile:
            sim.run()
        assert profile.wall_sample_every == 8
        assert profile.wall_sampled_events == profile.events_total // 8
        # Counts stay exact at any stride; only timing is sampled.
        assert sum(profile.events_by_source.values()) == profile.events_total
        assert profile.wall_attributed_s == pytest.approx(
            profile.wall_time_s, rel=1e-9)

    def test_kernel_residual_source_present(self):
        from repro.obs.profiling import KERNEL_SOURCE

        sim = self.busy_sim(500)
        with sim.profile() as profile:
            sim.run()
        assert KERNEL_SOURCE in profile.wall_by_source

    def test_run_in_chunks_matches_full_run_counts(self):
        """The RLE ledger must survive the step()/run() driver boundary:
        draining in max_events chunks (the heartbeat/resume path) yields
        the same exact counts as one uninterrupted run()."""
        full = self.busy_sim(1_000)
        with full.profile() as reference:
            full.run()

        chunked = self.busy_sim(1_000)
        with chunked.profile() as profile:
            while chunked.run(max_events=97):
                pass
        assert profile.events_by_source == reference.events_by_source
        assert profile.events_total == reference.events_total


class TestQueueAccounting:
    def test_pushes_and_cancel_churn(self):
        sim = Simulator()
        handles = [sim.schedule(i * 10, lambda: None) for i in range(10)]
        with sim.profile() as profile:
            inner = [sim.schedule(500 + i, lambda: None) for i in range(6)]
            for handle in inner[:3]:
                handle.cancel()
            sim.run()
        # Only schedules inside the window count as pushes.
        assert profile.queue_pushes == 6
        assert profile.queue_pops_cancelled == 3
        assert profile.cancel_churn == pytest.approx(0.5)
        assert len(handles) == 10  # pre-window events all ran

    def test_depth_timeline_sampled(self):
        sim = Simulator()
        state = {"left": 3_000}

        def tick():
            state["left"] -= 1
            if state["left"]:
                sim.schedule(sim.now + 1, tick)

        sim.schedule(0, tick)
        with sim.profile(depth_timeline_every=256) as profile:
            sim.run()
        assert profile.depth_timeline
        events_at, depth = profile.depth_timeline[0]
        assert events_at > 0 and depth >= 0


class TestProfileRendering:
    def profiled(self):
        sim = Simulator()

        def tick():
            pass

        for i in range(64):
            sim.schedule(i * 10, tick)
        with sim.profile() as profile:
            sim.run()
        return profile

    def test_folded_flame_format(self):
        folded = self.profiled().folded()
        lines = folded.splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or stack  # flat stacks allowed
            int(count)  # sample weight must parse

    def test_render_mentions_queue_ops_and_sampling(self):
        text = self.profiled().render()
        assert "queue ops" in text
        assert "pushes" in text
        assert "wall sampled every" in text

    def test_to_dict_includes_observatory_fields(self):
        data = self.profiled().to_dict()
        assert set(data) >= {
            "wall_by_source", "wall_sample_every", "queue_pushes",
            "queue_pops_cancelled", "cancel_churn", "depth_timeline",
        }

    def test_profile_chrome_trace_export(self):
        from repro.obs.trace_export import profile_chrome_trace

        profile = self.profiled()
        assert profile.meta_samples
        doc = profile_chrome_trace(profile)
        slices = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
        assert len(slices) == len(profile.meta_samples)
        assert all(ev["dur"] >= 0 for ev in slices)


class TestSystemProfile:
    def test_system_profile_context(self):
        from repro import SwallowSystem, assemble

        system = SwallowSystem()
        system.spawn(system.core(0), assemble("""
            ldc r0, 20
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        with system.profile() as profile:
            system.run()
        assert profile.events_total > 0
        assert "XCore._tick" in profile.events_by_source
