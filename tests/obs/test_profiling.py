"""Tests for simulation profiling (repro.obs.profiling + engine hooks)."""

from repro.obs.profiling import SimProfile, callback_source
from repro.sim import Simulator
from repro.sim.engine import KERNEL_STATS


class TestCallbackSource:
    def test_bound_method(self):
        sim = Simulator()
        assert callback_source(sim.step) == "Simulator.step"

    def test_plain_function(self):
        def fire():
            pass

        name = callback_source(fire)
        assert name.endswith("fire") and "<locals>" not in name

    def test_lambda(self):
        assert "<locals>" not in callback_source(lambda: None)


class TestSimulatorProfile:
    def test_counts_events_by_source(self):
        sim = Simulator()

        def tick():
            pass

        for i in range(5):
            sim.schedule(i * 10, tick)
        with sim.profile() as profile:
            sim.run()
        assert profile.events_total == sim.events_processed
        by_source = profile.events_by_source
        assert sum(by_source.values()) == profile.events_total
        assert any("tick" in source for source in by_source)

    def test_queue_depth_high_water(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        with sim.profile() as profile:
            sim.schedule(50, lambda: None)
            sim.run()
        assert sim.queue_depth_high_water == 8
        assert profile.queue_depth_high_water == 8

    def test_wall_and_sim_time_recorded(self):
        sim = Simulator()
        sim.schedule(0, lambda: None)
        sim.schedule(1_000_000, lambda: None)
        with sim.profile() as profile:
            sim.run()
        assert profile.wall_time_s > 0
        assert profile.sim_time_ps == 1_000_000
        assert profile.sim_wall_ratio > 0
        assert profile.events_per_sec > 0

    def test_profiler_removed_after_block(self):
        sim = Simulator()
        with sim.profile():
            pass
        assert sim._profiler is None
        sim.schedule(0, lambda: None)
        sim.run()  # must not touch the sealed profile

    def test_profile_render_and_dict(self):
        sim = Simulator()
        sim.schedule(0, lambda: None)
        with sim.profile() as profile:
            sim.run()
        text = profile.render()
        assert "1 events" in text
        data = profile.to_dict()
        assert data["events_total"] == 1
        assert set(data) >= {
            "events_by_source", "queue_depth_high_water", "sim_time_ps",
            "wall_time_s", "sim_wall_ratio", "events_per_sec",
        }

    def test_empty_profile_ratios_are_zero(self):
        profile = SimProfile()
        assert profile.sim_wall_ratio == 0.0
        assert profile.events_per_sec == 0.0


class TestKernelStats:
    def test_run_accumulates_global_ledger(self):
        before = KERNEL_STATS.events_executed
        sim = Simulator()
        for i in range(4):
            sim.schedule(i, lambda: None)
        sim.run()
        assert KERNEL_STATS.events_executed - before == 4

    def test_run_until_accumulates(self):
        before = KERNEL_STATS.events_executed
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run_until(100)
        assert KERNEL_STATS.events_executed - before == 1


class TestSystemProfile:
    def test_system_profile_context(self):
        from repro import SwallowSystem, assemble

        system = SwallowSystem()
        system.spawn(system.core(0), assemble("""
            ldc r0, 20
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        with system.profile() as profile:
            system.run()
        assert profile.events_total > 0
        assert "XCore._tick" in profile.events_by_source
