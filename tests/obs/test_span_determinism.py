"""Byte-identity of spans and energy attribution under a fault campaign.

Same seed => identical span JSONL, identical folded stacks, and the
retry energy the campaign induced shows up in the transparency report —
the observability stack stays deterministic even when faults perturb
the schedule.
"""

from repro import SwallowSystem
from repro.apps.reliable import ReliableChannel
from repro.faults import FaultCampaign, FlakyLink
from repro.network.routing import Layer

WORDS = 8
SEED = 7


def run_campaign(seed=SEED, drop_rate=0.2):
    system = SwallowSystem(slices_x=1)
    recorder = system.spans()
    root = recorder.span("campaign")
    root.begin(0)
    topology = system.topology
    node_a = topology.node_at(0, 0, Layer.VERTICAL)
    node_b = topology.node_at(0, 1, Layer.VERTICAL)
    cores = {core.node_id: core for core in system.cores}
    channel = ReliableChannel.between(cores[node_a], cores[node_b])
    received = []

    def producer():
        for i in range(WORDS):
            yield from channel.send(i * 3 + 1)

    def consumer():
        for _ in range(WORDS):
            received.append((yield from channel.recv()))
        yield from channel.drain()

    system.spawn_task(cores[node_a], producer(), name="tx",
                      span=root.child("tx"))
    system.spawn_task(cores[node_b], consumer(), name="rx",
                      span=root.child("rx"))
    campaign = FaultCampaign(
        system,
        [FlakyLink(at_us=0.0, node_a=node_a, node_b=node_b,
                   drop_rate=drop_rate)],
        seed=seed,
    )
    campaign.register_channel("stream", channel)
    campaign.arm()
    system.run()
    root.finish(system.sim.now)
    assert received == [i * 3 + 1 for i in range(WORDS)]
    return system, recorder, channel


class TestFaultDeterminism:
    def test_same_seed_byte_identical(self):
        jsonls, foldeds = set(), set()
        for _ in range(2):
            system, recorder, _ = run_campaign()
            jsonls.add(recorder.to_jsonl())
            foldeds.add(system.energy_attribution().folded())
        assert len(jsonls) == 1
        assert len(foldeds) == 1

    def test_retries_charge_the_sending_span(self):
        system, recorder, channel = run_campaign()
        assert channel.stats.retries > 0
        tx = recorder.find("tx")
        assert tx.retry_bits > 0
        # Retried frames are re-pushed and re-serialized, so the lossy
        # run charges the span more wire bits than a fault-free one.
        clean_system, clean_recorder, clean_channel = run_campaign(
            drop_rate=0.0
        )
        assert clean_channel.stats.retries == 0
        clean_tx = clean_recorder.find("tx")
        assert clean_tx.retry_bits == 0
        assert tx.wire_bits > clean_tx.wire_bits

    def test_retry_energy_reaches_the_transparency_report(self):
        system, recorder, channel = run_campaign()
        attribution = system.energy_attribution()
        assert attribution.retry_j > 0
        report = system.energy_report()
        assert report.retry_energy_j > 0
        assert report.retry_energy_j <= report.link_energy_j
        assert "retransmission" in report.render()
        snapshot = system.metrics_snapshot()
        assert snapshot.value("energy.retry_j") == attribution.retry_j
