"""Tests for causal spans (repro.obs.spans) and their machine plumbing."""

import json

from repro import Compute, NanoOS, RecvWord, SendWord, SwallowSystem
from repro.obs import SpanRecorder, chrome_trace_json


class TestSpanTree:
    def test_sequential_ids_and_paths(self):
        recorder = SpanRecorder()
        root = recorder.span("root")
        mid = root.child("mid")
        leaf = mid.child("leaf")
        assert [s.span_id for s in recorder.spans] == [1, 2, 3]
        assert leaf.path == "root;mid;leaf"
        assert leaf.parent_id == mid.span_id
        assert recorder.roots() == [root]
        assert recorder.find("leaf") is leaf

    def test_begin_finish_first_call_wins(self):
        span = SpanRecorder().span("s")
        span.begin(100)
        span.begin(999)
        span.finish(200)
        span.finish(999)
        assert (span.start_ps, span.end_ps) == (100, 200)

    def test_ledger_charging(self):
        span = SpanRecorder().span("s")
        span.count_instruction(3)
        span.count_instruction(3)
        span.count_instruction(7)
        span.add_wire_bits("pcb", 8)
        span.add_wire_bits("pcb", 8)
        span.add_wire_bits("ffc", 8)
        assert span.instructions == 3
        assert span.instr_by_node == {3: 2, 7: 1}
        assert span.wire_bits_by_class == {"pcb": 16, "ffc": 8}
        assert span.wire_bits == 24
        assert span.token_hops == 3

    def test_jsonl_is_canonical_and_digest_stable(self):
        def build():
            recorder = SpanRecorder()
            root = recorder.span("root", node_id=0)
            root.begin(0)
            child = root.child("child", node_id=5)
            child.count_instruction(5)
            recorder.record_message(root, child, 10, 20)
            return recorder

        a, b = build(), build()
        assert a.to_jsonl() == b.to_jsonl()
        assert a.digest() == b.digest()
        lines = [json.loads(line) for line in a.to_jsonl().splitlines()]
        assert [row["type"] for row in lines] == ["span", "span", "message"]

    def test_render_tree(self):
        recorder = SpanRecorder()
        root = recorder.span("root")
        root.begin(0)
        root.child("kid")
        text = recorder.render()
        assert "#1 root" in text and "  #2 kid" in text


def run_pipeline(system):
    """Producer -> consumer across cores under one root span."""
    recorder = system.spans()
    root = recorder.span("app")
    root.begin(0)
    channel = system.channel(system.core(0), system.core(10))
    received = []

    def producer():
        for i in range(4):
            yield Compute(50)
            yield SendWord(channel.a, i)

    def consumer():
        for _ in range(4):
            received.append((yield RecvWord(channel.b)))

    system.spawn_task(system.core(0), producer(), name="tx",
                      span=root.child("tx"))
    system.spawn_task(system.core(10), consumer(), name="rx",
                      span=root.child("rx"))
    system.run()
    root.finish(system.sim.now)
    assert received == [0, 1, 2, 3]
    return recorder, root


class TestSpanPlumbing:
    def test_tokens_carry_spans_end_to_end(self):
        system = SwallowSystem(slices_x=1)
        recorder, root = run_pipeline(system)
        tx, rx = recorder.find("tx"), recorder.find("rx")
        # The producer issued instructions and pushed payload bits; every
        # hop of the route charged wire bits to it.
        assert tx.instructions > 0
        assert tx.instr_by_node == {0: tx.instructions}
        assert tx.bits_sent == 4 * 32
        assert tx.wire_bits >= tx.bits_sent
        assert tx.token_hops > 0
        # The consumer only computed.
        assert rx.bits_sent == 0
        # Both closed when their threads halted.
        assert tx.end_ps is not None and rx.end_ps is not None

    def test_cross_span_messages_recorded(self):
        system = SwallowSystem(slices_x=1)
        recorder, _ = run_pipeline(system)
        tx, rx = recorder.find("tx"), recorder.find("rx")
        assert len(recorder.messages) == 4
        for msg in recorder.messages:
            assert msg.src_id == tx.span_id
            assert msg.dst_id == rx.span_id
            assert 0 <= msg.send_ps <= msg.recv_ps

    def test_chrome_trace_flow_events(self):
        system = SwallowSystem(slices_x=1)
        recorder, _ = run_pipeline(system)
        document = json.loads(chrome_trace_json([], spans=recorder))
        events = document["traceEvents"]
        slices = [e for e in events if e.get("ph") == "X"]
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(slices) == len(recorder.spans)
        assert len(starts) == len(finishes) == len(recorder.messages)
        # Flow arrows pair up by id and run from tx's track to rx's.
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        tids = {e["tid"] for e in starts} | {e["tid"] for e in finishes}
        assert len(tids) == 2

    def test_identical_runs_are_byte_identical(self):
        digests = set()
        for _ in range(2):
            system = SwallowSystem(slices_x=1)
            recorder, _ = run_pipeline(system)
            digests.add(recorder.digest())
        assert len(digests) == 1


class TestNanoOsSpans:
    def test_submitted_tasks_get_spans(self):
        system = SwallowSystem(slices_x=1)
        runtime = NanoOS(system, spans=True)

        def make_task(core):
            def body():
                yield Compute(200)
            return body()

        handle = runtime.submit(make_task, name="worker")
        system.run()
        assert runtime.all_done
        span = handle.span
        assert span is not None
        assert span.path == "nos;worker"
        assert span.instructions > 0
        assert span.end_ps is not None
        assert span.node_id == handle.core.node_id
