"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs import MetricsRegistry, series_key


class TestSeriesKey:
    def test_no_labels(self):
        assert series_key("sim.events") == "sim.events"

    def test_labels_sorted(self):
        assert (
            series_key("core.instructions", {"opcode_class": "alu", "node": "3"})
            == "core.instructions{node=3,opcode_class=alu}"
        )


class TestInstruments:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("requests", node="1")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_memoized_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("x", node="1") is reg.counter("x", node="1")
        assert reg.counter("x", node="1") is not reg.counter("x", node="2")

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_histogram_buckets_cumulative(self):
        h = MetricsRegistry().histogram("lat", buckets=(10, 100, 1000))
        for v in (5, 50, 50, 500, 5000):
            h.observe(v)
        sample = h.sample_value()
        assert sample["count"] == 5
        assert sample["sum"] == 5605
        assert sample["buckets"] == {"10": 1, "100": 3, "1000": 4, "+Inf": 5}


class TestDisabled:
    def test_disabled_instruments_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc(100)
        assert c.value == 0
        g = reg.gauge("y")
        g.set(5)
        assert g.value == 0
        h = reg.histogram("z", buckets=(1,))
        h.observe(0.5)
        assert h.total == 0

    def test_disabled_snapshot_empty_and_skips_collectors(self):
        reg = MetricsRegistry(enabled=False)
        calls = []
        reg.register_collector(lambda emit: calls.append(1))
        snap = reg.snapshot()
        assert len(snap) == 0
        assert calls == []

    def test_enable_re_arms(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        reg.enable()
        c.inc()
        assert c.value == 1
        reg.disable()
        c.inc()
        assert c.value == 1


class TestSnapshot:
    def test_collectors_polled_lazily(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.counter_fn("lazy.count", lambda: state["n"], node="0")
        state["n"] = 42
        assert reg.snapshot().value("lazy.count", node="0") == 42

    def test_multi_series_collector(self):
        reg = MetricsRegistry()

        def collect(emit):
            emit("instr", {"cls": "alu"}, 10)
            emit("instr", {"cls": "mem"}, 7)

        reg.register_collector(collect)
        snap = reg.snapshot()
        assert snap.sum("instr") == 17
        assert snap.value("instr", cls="mem") == 7

    def test_duplicate_series_raises(self):
        reg = MetricsRegistry()
        reg.counter_fn("x", lambda: 1)
        reg.counter_fn("x", lambda: 2)
        with pytest.raises(ValueError, match="duplicate"):
            reg.snapshot()

    def test_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(3)
        first = reg.snapshot()
        c.inc(4)
        second = reg.snapshot()
        assert second.delta(first)["x"] == 4

    def test_delta_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10,))
        h.observe(1)
        first = reg.snapshot()
        h.observe(2)
        h.observe(3)
        delta = reg.snapshot().delta(first)
        assert delta["lat"] == {"count": 2, "sum": 5}

    def test_to_json_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        text = reg.snapshot().to_json()
        assert text == '{"a":1,"b":2}'
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_render_filters_by_prefix(self):
        reg = MetricsRegistry()
        reg.counter("core.x").inc()
        reg.counter("link.y").inc()
        text = reg.snapshot().render(prefix="core.")
        assert "core.x" in text and "link.y" not in text


class TestSystemRegistry:
    """The assembled platform publishes the documented taxonomy."""

    def _loaded_system(self):
        from repro import CheckCt, Compute, RecvWord, SendCt, SendWord, SwallowSystem
        from repro.network.token import CT_END

        system = SwallowSystem()
        channel = system.channel(system.core(0), system.core(9))

        def producer():
            for i in range(3):
                yield Compute(50)
                yield SendWord(channel.a, i)
            yield SendCt(channel.a, CT_END)

        def consumer():
            for _ in range(3):
                yield RecvWord(channel.b)
            yield CheckCt(channel.b, CT_END)

        system.spawn_task(system.core(0), producer())
        system.spawn_task(system.core(9), consumer())
        system.run()
        return system

    def test_taxonomy_present(self):
        system = self._loaded_system()
        snap = system.metrics_snapshot()
        assert snap.value("sim.events_processed") > 0
        assert snap.value("sim.queue_depth_hwm") > 0
        assert snap.sum("switch.tokens_forwarded") > 0
        assert snap.sum("switch.tokens_delivered") > 0
        assert snap.sum("link.tokens") > 0
        assert snap.sum("core.instructions", node="0") > 0
        assert snap.value("energy.elapsed_s") > 0
        hold = snap.value("switch.route_hold_ps", default=None, node="0")
        assert hold is not None and hold["count"] >= 1

    def test_report_agrees_with_metrics(self):
        """The energy report is a view over the metrics snapshot."""
        system = self._loaded_system()
        snap = system.metrics_snapshot()
        report = system.energy_report()
        for row in report.cores:
            node = str(row.node_id)
            assert row.instructions == int(
                snap.sum("core.instructions", node=node)
            )
            assert row.energy_j == snap.value("energy.core_j", node=node)
        assert report.link_energy_j == snap.value("energy.links_j")
        assert report.support_energy_j == snap.value("energy.support_j")

    def test_metrics_disabled_system_still_reports(self):
        from repro import SwallowSystem

        system = SwallowSystem(metrics=False)
        system.run()
        assert len(system.metrics_snapshot()) == 0
        assert system.energy_report().total_energy_j >= 0
