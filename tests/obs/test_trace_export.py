"""Tests for trace export (JSONL + Chrome trace-event format)."""

import json

from repro.obs import source_category, to_chrome_trace, to_jsonl
from repro.sim import TraceRecorder

#: Keys a Chrome trace-event viewer requires on every event.
REQUIRED_EVENT_KEYS = {"name", "ph", "pid", "tid"}


def _sample_recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    recorder.record(1000, "core0", "issue", "core0.t0")
    recorder.record(2000, "sw0", "route_open", "sw0.c2", "node1:c0")
    recorder.record(3000, "sw0->sw1#0", "token", "DT:2a")
    recorder.record(4000, "sw1", "deliver", "node1:c0", "DT:2a")
    recorder.record(5000, "adc0,0", "sample", 5)
    return recorder


class TestSourceCategory:
    def test_categories(self):
        assert source_category("core12") == "cores"
        assert source_category("sw3") == "switches"
        assert source_category("sw0->sw1#0") == "links"
        assert source_category("adc0,0") == "measurement"
        assert source_category("whatever") == "other"


class TestJsonl:
    def test_one_object_per_record(self):
        text = to_jsonl(_sample_recorder().records)
        lines = text.strip().split("\n")
        assert len(lines) == 5
        first = json.loads(lines[0])
        assert first == {
            "time_ps": 1000, "source": "core0", "kind": "issue",
            "detail": ["core0.t0"],
        }

    def test_empty_trace(self):
        assert to_jsonl([]) == ""

    def test_recorder_method(self):
        recorder = _sample_recorder()
        assert recorder.to_jsonl() == to_jsonl(recorder.records)


class TestChromeTrace:
    def test_schema(self):
        """Every event carries the fields trace viewers require."""
        doc = to_chrome_trace(_sample_recorder().records)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            assert REQUIRED_EVENT_KEYS <= set(event)
            assert event["ph"] in ("M", "i")
            if event["ph"] == "i":
                assert event["s"] == "t"
                assert isinstance(event["ts"], float)
                assert isinstance(event["pid"], int)
                assert isinstance(event["tid"], int)
            else:
                assert event["name"] in ("process_name", "thread_name")
                assert "name" in event["args"]

    def test_round_trips_through_json(self):
        recorder = _sample_recorder()
        doc = json.loads(recorder.to_chrome_trace_json())
        assert doc == recorder.to_chrome_trace()

    def test_one_track_per_source(self):
        doc = to_chrome_trace(_sample_recorder().records)
        threads = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert sorted(threads.values()) == [
            "adc0,0", "core0", "sw0", "sw0->sw1#0", "sw1",
        ]
        # distinct sources never share a (pid, tid) track
        assert len(threads) == len(set(threads.values()))

    def test_timestamps_are_microseconds(self):
        doc = to_chrome_trace(_sample_recorder().records)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["ts"] == 1000 / 1e6

    def test_process_names_cover_categories(self):
        doc = to_chrome_trace(_sample_recorder().records)
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {
            "swallow.cores", "swallow.switches", "swallow.links",
            "swallow.measurement",
        }


class TestSystemTrace:
    def test_demo_run_exports_valid_chrome_trace(self, tmp_path):
        """End-to-end: a traced system run produces a loadable document."""
        from repro import CheckCt, Compute, RecvWord, SendCt, SendWord, SwallowSystem
        from repro.network.token import CT_END
        from repro.obs import write_chrome_trace, write_jsonl

        system = SwallowSystem()
        recorder = system.trace()
        channel = system.channel(system.core(0), system.core(5))

        def producer():
            yield Compute(100)
            yield SendWord(channel.a, 99)
            yield SendCt(channel.a, CT_END)

        def consumer():
            yield RecvWord(channel.b)
            yield CheckCt(channel.b, CT_END)

        system.spawn_task(system.core(0), producer())
        system.spawn_task(system.core(5), consumer())
        system.run()
        assert len(recorder) > 0
        kinds = {record.kind for record in recorder}
        assert {"issue", "route_open", "route_close", "token"} <= kinds

        chrome_path = tmp_path / "trace.json"
        write_chrome_trace(recorder.records, chrome_path)
        doc = json.loads(chrome_path.read_text())
        assert doc["traceEvents"]

        jsonl_path = tmp_path / "trace.jsonl"
        write_jsonl(recorder.records, jsonl_path)
        lines = jsonl_path.read_text().strip().split("\n")
        assert len(lines) == len(recorder)

    def test_trace_capacity_flight_recorder(self):
        from repro import SwallowSystem, assemble

        system = SwallowSystem()
        recorder = system.trace(kinds={"issue"}, capacity=10)
        system.spawn(system.core(0), assemble("""
            ldc r0, 100
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        system.run()
        assert len(recorder) == 10
        assert recorder.dropped > 0
        # flight recorder: what's retained is the *end* of the run
        last_issue_time = recorder.records[-1].time_ps
        assert all(r.time_ps <= last_issue_time for r in recorder.records)
        assert recorder.records[0].time_ps > 0
