"""End-to-end tests for ``python -m repro perf`` and the heartbeat flags.

Pins the gate's contract: ``perf compare`` exits 0 against an unchanged
baseline and 1 on a synthetic 2x slowdown, and ``faults
--heartbeat-every`` streams deterministic JSONL (byte-identical cores
across two same-seed runs).
"""

import json

import pytest

from repro.__main__ import main
from repro.obs.perf import WALL_FIELDS


def write_profile(path, wall_s):
    path.write_text(json.dumps({"benches": [{
        "file": "benchmarks/bench_stream.py",
        "test": "test_throughput",
        "events": 200_000,
        "events_replayed": 0,
        "wall_s": wall_s,
        "events_per_sec": round(200_000 / wall_s),
    }]}))
    return path


class TestPerfCli:
    def seed_history(self, tmp_path, rows=3):
        history = tmp_path / "history.jsonl"
        profile = write_profile(tmp_path / "profile.json", wall_s=1.0)
        for i in range(rows):
            assert main([
                "perf", "record", "--history", str(history),
                "--profile", str(profile), "--timestamp", str(float(i)),
                "--sha", f"sha{i}",
            ]) == 0
        return history, profile

    def test_record_appends(self, tmp_path):
        history, _ = self.seed_history(tmp_path)
        lines = history.read_text().splitlines()
        assert len(lines) == 3
        row = json.loads(lines[0])
        assert row["bench"].endswith("::test_throughput")
        assert row["git_sha"] == "sha0"

    def test_compare_ok_on_committed_baseline(self, tmp_path, capsys):
        history, profile = self.seed_history(tmp_path)
        assert main([
            "perf", "compare", "--history", str(history),
            "--profile", str(profile), "--tolerance", "0.30",
        ]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_compare_fails_on_2x_slowdown(self, tmp_path, capsys):
        history, _ = self.seed_history(tmp_path)
        slow = write_profile(tmp_path / "slow.json", wall_s=2.0)
        assert main([
            "perf", "compare", "--history", str(history),
            "--profile", str(slow), "--tolerance", "0.30",
        ]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_json_output(self, tmp_path, capsys):
        history, _ = self.seed_history(tmp_path)
        slow = write_profile(tmp_path / "slow.json", wall_s=2.0)
        capsys.readouterr()  # drain the seeding prints
        assert main([
            "perf", "compare", "--history", str(history),
            "--profile", str(slow), "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] is True
        assert payload["compared"][0]["ratio"] == pytest.approx(0.5)

    def test_compare_without_history_errors(self, tmp_path):
        profile = write_profile(tmp_path / "profile.json", wall_s=1.0)
        assert main([
            "perf", "compare", "--history", str(tmp_path / "none.jsonl"),
            "--profile", str(profile),
        ]) == 2

    def test_report_renders(self, tmp_path, capsys):
        history, _ = self.seed_history(tmp_path)
        assert main(["perf", "report", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "test_throughput" in out and "baseline" in out


class TestHeartbeatCli:
    def faults_heartbeat(self, out):
        assert main([
            "faults", "--words", "12", "--seed", "3",
            "--heartbeat-every", "500", "--heartbeat-out", str(out),
        ]) == 0
        return [json.loads(line) for line in out.read_text().splitlines()]

    def test_heartbeat_jsonl_byte_identical_modulo_wall(self, tmp_path):
        runs = [self.faults_heartbeat(tmp_path / f"hb{i}.jsonl")
                for i in range(2)]
        assert len(runs[0]) >= 2
        assert runs[0][-1]["final"] is True
        strip = [
            [{k: v for k, v in line.items() if k not in WALL_FIELDS}
             for line in run]
            for run in runs
        ]
        assert strip[0] == strip[1]
        # ... and the wall fields really are present on the wire.
        assert all("wall_s" in line for line in runs[0])
