"""The fabric observatory: windowed telemetry, cause attribution, export.

The load-bearing properties:

* **Conservation** — per-link window cells sum back to the link's
  lifetime counters, and blocked wait time partitions *exactly* into
  the four causes (the intervals are non-overlapping by construction).
* **Purity** — attaching a NetScope changes nothing: same event count,
  same trajectory.
* **Byte-identity** — heat-map and counter-track exports are identical
  across same-seed runs, under a seeded fault campaign with a mid-run
  link kill, and across a checkpoint kill/resume cycle.
"""

import json

import pytest

from repro import Compute, RecvWord, SendWord
from repro.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    ResumableRun,
    build_workload,
)
from repro.core.platform import SwallowSystem
from repro.obs.netscope import (
    CAUSES,
    FLEET_SCHEMA,
    HEATMAP_SCHEMA,
    NetScope,
    fleet_heatmap,
    merge_heatmaps,
)

#: faults_stream params with the observatory on; a mid-run kill of the
#: stream's own link (0-8) forces a detour through the rest of the
#: lattice while the heat map keeps recording.
KILL_PARAMS = {
    "words": 10,
    "seed": 4,
    "netscope": True,
    "faults": [
        {"kind": "flaky_link", "at_us": 0.0, "node_a": 0, "node_b": 8,
         "drop_rate": 0.05},
        {"kind": "link_kill", "at_us": 400.0, "node_a": 0, "node_b": 8},
    ],
}


def _contended_system() -> tuple[SwallowSystem, NetScope]:
    """One stream into a receiver that starts consuming late.

    The send outruns the receive: the destination chanend fills
    (``dest_busy``), backpressure exhausts link credits upstream
    (``credit_stall``), and both intervals close when the receiver
    drains — closed intervals, exact partition.
    """
    system = SwallowSystem()
    scope = system.netscope()
    channel = system.channel(system.core(1), system.core(10))
    received = []

    def producer():
        for i in range(16):
            yield SendWord(channel.a, i)

    def consumer():
        yield Compute(instructions=5000)
        for _ in range(16):
            received.append((yield RecvWord(channel.b)))

    system.spawn_task(system.core(1), producer())
    system.spawn_task(system.core(10), consumer())
    return system, scope


class TestConservation:
    def test_window_cells_sum_to_link_counters(self):
        context = build_workload("faults_stream",
                                 {"words": 8, "seed": 0, "netscope": True})
        context.system.run()
        scope = context.system.topology.fabric.netscope
        fabric = context.system.topology.fabric
        seen = 0
        for link in fabric.links:
            probe = scope.link_probes[link.name]
            tokens = sum(cell[0] for cell in probe.windows.values())
            bits = sum(cell[1] for cell in probe.windows.values())
            busy = sum(cell[2] for cell in probe.windows.values())
            assert tokens == link.tokens_carried, link.name
            assert bits == link.bits_carried, link.name
            assert busy == link.busy_time_ps, link.name
            seen += tokens
        assert seen > 0, "workload sent no tokens through probed links"

    def test_blocked_partition_is_exact(self):
        system, scope = _contended_system()
        system.run()
        blocked = scope.blocked_totals()
        assert blocked["total_ps"] > 0
        assert blocked["total_ps"] == sum(blocked["by_cause"].values())
        assert blocked["by_cause"]["dest_busy"] > 0
        assert blocked["by_cause"]["credit_stall"] > 0
        # Port-level waits aggregate to the same totals.
        for cause in CAUSES:
            port_sum = sum(p.waits[cause][1]
                           for p in scope.port_probes.values())
            assert port_sum == blocked["by_cause"][cause]
        # Windowed blocked time conserves the same quantity again.
        for cause in CAUSES:
            window_sum = sum(scope.blocked_windows[cause].values())
            assert window_sum == blocked["by_cause"][cause]

    def test_severed_cause_and_port_discards_on_link_kill(self):
        """Killing a link under an open route attributes the flushed
        route's wait to ``severed`` — and only a *forced* kill does."""
        from repro.network.routing import Layer
        from repro.network.token import CT_END
        from repro.network.topology import SwallowTopology
        from repro.sim import Simulator, us
        from repro.xs1 import BehavioralThread, SendCt, XCore

        sim = Simulator()
        topo = SwallowTopology(sim)
        scope = NetScope(topo.fabric, topology=topo)
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        core_a = XCore(sim, a, topo.fabric)
        core_b = XCore(sim, b, topo.fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        got = []

        def sender():
            for i in range(64):
                yield SendWord(tx, i)
            yield SendCt(tx, CT_END)

        def receiver():
            while True:
                got.append((yield RecvWord(rx)))

        BehavioralThread(core_a, sender())
        BehavioralThread(core_b, receiver())
        topo.fabric.use_table_routing()
        sim.schedule_at(us(2), lambda: topo.fabric.fail_link(a, b, force=True))
        sim.run_for(us(400))

        blocked = scope.blocked_totals()
        assert blocked["intervals"]["severed"] >= 1
        assert blocked["total_ps"] == sum(blocked["by_cause"].values())
        fabric = topo.fabric
        # Per-port shares reconcile with the switch-level counters.
        for switch in fabric.switches.values():
            ports = [*switch.link_ports, *switch.chanend_ports.values()]
            assert (sum(p.routes_severed for p in ports)
                    == switch.routes_severed)
            assert (sum(p.tokens_discarded for p in ports)
                    == switch.tokens_discarded)
        assert any(s.tokens_discarded for s in fabric.switches.values())


class TestPurity:
    def test_attaching_netscope_preserves_the_trajectory(self):
        plain = build_workload("faults_stream", {"words": 8, "seed": 2})
        plain.system.run()
        scoped = build_workload("faults_stream",
                                {"words": 8, "seed": 2, "netscope": True})
        scoped.system.run()
        assert (plain.system.sim.events_processed
                == scoped.system.sim.events_processed)
        assert plain.system.sim.now == scoped.system.sim.now
        assert plain.received == scoped.received


def _heatmap_and_counters(params: dict) -> tuple[str, str]:
    context = build_workload("faults_stream", params)
    context.system.run()
    scope = context.system.topology.fabric.netscope
    return scope.heatmap_json(), json.dumps(scope.counter_events())


class TestByteIdentity:
    def test_same_seed_runs_export_identical_bytes(self):
        params = {"words": 8, "seed": 7, "netscope": True}
        assert _heatmap_and_counters(params) == _heatmap_and_counters(params)

    def test_identical_under_mid_run_link_kill(self):
        first = _heatmap_and_counters(KILL_PARAMS)
        second = _heatmap_and_counters(KILL_PARAMS)
        assert first == second
        heatmap = json.loads(first[0])
        failed = {row["name"] for row in heatmap["links"] if row["failed"]}
        assert failed == {"sw0->sw8#0", "sw8->sw0#0"}

    @pytest.mark.parametrize("params,kill", [
        ({"words": 8, "seed": 7, "netscope": True}, 1500),
        (KILL_PARAMS, 3000),
    ], ids=["flaky", "link-kill"])
    def test_kill_resume_matches_uninterrupted(self, tmp_path, params, kill):
        expected = _heatmap_and_counters(params)

        run = ResumableRun(
            "faults_stream", params,
            policy=CheckpointPolicy(every_events=400, retain=3),
            store=CheckpointStore(tmp_path / "store", retain=3),
        )
        run.run(kill_after_events=kill)
        assert run.killed

        resumed = ResumableRun.resume(
            CheckpointStore(tmp_path / "store", retain=3).latest()
        )
        resumed.run()
        scope = resumed.context.system.topology.fabric.netscope
        assert (scope.heatmap_json(),
                json.dumps(scope.counter_events())) == expected

    def test_fabric_snapshot_carries_netscope_state(self):
        context = build_workload("faults_stream",
                                 {"words": 6, "seed": 1, "netscope": True})
        context.system.run()
        fabric = context.system.topology.fabric
        state = fabric.snapshot_state()
        assert "netscope" in state
        assert state["netscope"]["links"], "no link windows captured"
        # Self-verification round-trips (the restore-replay check).
        fabric.netscope.restore_state(state["netscope"])


class TestSliceCut:
    def test_cross_slice_stream_hits_the_boundary(self):
        system = SwallowSystem(slices_x=2)
        scope = system.netscope()
        topology = system.topology
        by_slice = {}
        for core in system.cores:
            by_slice.setdefault(
                topology.slice_of(core.node_id), []
            ).append(core)
        src = by_slice[(0, 0)][0]
        dst = by_slice[(1, 0)][0]
        channel = system.channel(src, dst)
        received = []

        def producer():
            for i in range(12):
                yield Compute(50)
                yield SendWord(channel.a, i)

        def consumer():
            for _ in range(12):
                received.append((yield RecvWord(channel.b)))

        system.spawn_task(src, producer())
        system.spawn_task(dst, consumer())
        system.run()
        assert len(received) == 12
        cut = scope.slice_cut()
        crossing = {(tuple(row["from"]), tuple(row["to"])): row
                    for row in cut["boundaries"]}
        forward = crossing[((0, 0), (1, 0))]
        assert forward["tokens"] > 0
        assert forward["bits"] > 0
        assert forward["min_gap_ps"] is not None
        assert forward["min_gap_ps"] >= 0
        assert cut["min_gap_ps"] <= forward["min_gap_ps"]
        # The heat map embeds the same report.
        assert scope.heatmap()["slice_cut"] == cut


class TestExports:
    def test_heatmap_document_shape(self):
        context = build_workload("faults_stream",
                                 {"words": 6, "seed": 0, "netscope": True})
        context.system.run()
        doc = context.system.topology.fabric.netscope.heatmap()
        assert doc["schema"] == HEATMAP_SCHEMA
        assert doc["grid"] == {"slices_x": 1, "slices_y": 1,
                               "packages_x": 4, "packages_y": 2}
        assert len(doc["nodes"]) == len(
            context.system.topology.fabric.switches
        )
        active = [row for row in doc["links"] if row["tokens"]]
        assert active, "no link carried traffic"
        for row in active:
            window_tokens = sum(cell[0] for cell in row["windows"].values())
            assert window_tokens == row["tokens"]
        assert 0.0 <= max(row["utilization"] for row in active) <= 1.0

    def test_counter_tracks_join_the_chrome_trace(self):
        from repro.obs.trace_export import CATEGORY_PIDS, to_chrome_trace

        system, scope = _contended_system()
        tracer = system.trace()
        system.run()
        doc = to_chrome_trace(tracer.records, netscope=scope)
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert counters, "no counter events exported"
        pid = CATEGORY_PIDS["netscope"]
        assert all(e["pid"] == pid for e in counters)
        names = {e["name"] for e in counters}
        assert any(name.startswith("util% ") for name in names)
        assert any(name.startswith("queue ") for name in names)
        assert any(name.startswith("blocked_ps ") for name in names)
        # Every series ends with a closing zero sample.
        last_by_name = {}
        for event in counters:
            last_by_name[event["name"]] = event
        assert all(e["args"]["value"] == 0 for e in last_by_name.values())

    def test_netscope_metrics_series(self):
        system, scope = _contended_system()
        system.run()
        snap = system.metrics_snapshot()
        total = snap.value("netscope.blocked_total_ps")
        assert total > 0
        assert total == sum(
            snap.value("netscope.blocked_ps", cause=cause)
            for cause in CAUSES
        )


class TestMerge:
    def _doc(self, seed: int) -> dict:
        context = build_workload("faults_stream",
                                 {"words": 6, "seed": seed, "netscope": True})
        context.system.run()
        return context.system.topology.fabric.netscope.heatmap()

    def test_merge_sums_counters_and_recomputes_utilization(self):
        a, b = self._doc(0), self._doc(5)
        merged = merge_heatmaps([a, b])
        assert merged["merged_from"] == 2
        assert merged["elapsed_ps"] == a["elapsed_ps"] + b["elapsed_ps"]
        totals = lambda doc: sum(row["tokens"] for row in doc["links"])
        assert totals(merged) == totals(a) + totals(b)
        by_name = {row["name"]: row for row in merged["links"]}
        for row in a["links"]:
            if row["tokens"]:
                other = next(r for r in b["links"]
                             if r["name"] == row["name"])
                assert (by_name[row["name"]]["tokens"]
                        == row["tokens"] + other["tokens"])
        for row in merged["links"]:
            assert 0.0 <= row["utilization"] <= 1.0

    def test_merge_refuses_mixed_grids(self):
        small = self._doc(0)
        context = build_workload(
            "faults_stream",
            {"words": 6, "seed": 0, "netscope": True, "slices_x": 2},
        )
        context.system.run()
        wide = context.system.topology.fabric.netscope.heatmap()
        with pytest.raises(ValueError, match="mixed grids"):
            merge_heatmaps([small, wide])
        fleet = fleet_heatmap([small, wide])
        assert fleet["schema"] == FLEET_SCHEMA
        assert fleet["jobs"] == 2
        assert set(fleet["grids"]) == {"1x1", "2x1"}


class TestRouteHoldMetrics:
    def test_direction_labelled_hold_series_and_port_counters(self):
        context = build_workload("faults_stream",
                                 {"words": 6, "seed": 0, "netscope": True})
        context.system.run()
        snap = context.system.metrics_snapshot()
        payload = snap.as_dict()
        hold = [key for key in payload
                if key.startswith("switch.route_hold_ps{")
                and "direction=" in key]
        assert hold, "no per-direction route-hold histograms published"
        # The plain per-switch series (pinned elsewhere) still exists.
        assert snap.value("switch.route_hold_ps", default=None,
                          node="0") is not None
        opened = [key for key in payload
                  if key.startswith("switch.port_routes_opened{")]
        assert opened, "no per-port route counters published"
        assert all("port=" in key for key in opened)
