"""End-to-end tests for ``python -m repro netscope`` and ``topo --heat``.

The CLI contract the docs advertise: exported heat maps and counter
tracks are byte-identical across same-seed runs — including a run that
is killed mid-flight and resumed from its checkpoint store.
"""

import json

from repro.__main__ import EXIT_KILLED, main


def _netscope(tmp_path, tag, *extra):
    heat = tmp_path / f"heat_{tag}.json"
    counters = tmp_path / f"counters_{tag}.json"
    cut = tmp_path / f"cut_{tag}.json"
    rc = main(["netscope", "--workload", "faults_stream",
               "--words", "8", "--seed", "7",
               "--heatmap-out", str(heat),
               "--counters-out", str(counters),
               "--slice-cut-out", str(cut),
               *extra])
    return rc, heat, counters, cut


class TestNetscopeCli:
    def test_fresh_runs_are_byte_identical(self, tmp_path, capsys):
        rc_a, heat_a, counters_a, cut_a = _netscope(tmp_path, "a")
        assert rc_a == 0
        out = capsys.readouterr().out
        assert "netscope:" in out
        assert "blocked total" in out
        rc_b, heat_b, counters_b, cut_b = _netscope(tmp_path, "b")
        assert rc_b == 0
        assert heat_a.read_bytes() == heat_b.read_bytes()
        assert counters_a.read_bytes() == counters_b.read_bytes()
        assert cut_a.read_bytes() == cut_b.read_bytes()

    def test_kill_resume_matches_uninterrupted(self, tmp_path, capsys):
        rc, reference, _, _ = _netscope(tmp_path, "reference")
        assert rc == 0
        capsys.readouterr()

        store = tmp_path / "store"
        rc, _, _, _ = _netscope(
            tmp_path, "killed",
            "--checkpoint-every", "400", "--checkpoint-dir", str(store),
            "--kill-after-events", "1500",
        )
        assert rc == EXIT_KILLED
        assert "rerun the same command to resume" in capsys.readouterr().out

        rc, resumed, _, _ = _netscope(
            tmp_path, "resumed",
            "--checkpoint-every", "400", "--checkpoint-dir", str(store),
        )
        assert rc == 0
        assert "resumed from" in capsys.readouterr().out
        assert resumed.read_bytes() == reference.read_bytes()

    def test_json_mode_emits_the_heatmap(self, tmp_path, capsys):
        assert main(["netscope", "--workload", "faults_stream",
                     "--words", "6", "--seed", "0", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        heatmap = document["heatmap"]
        assert heatmap["schema"] == "netscope-heatmap/1"
        blocked = heatmap["blocked"]
        assert blocked["total_ps"] == sum(blocked["by_cause"].values())

    def test_ascii_overlay_renders(self, tmp_path, capsys):
        assert main(["netscope", "--workload", "demo",
                     "--slices-x", "2", "--seed", "0", "--ascii"]) == 0
        out = capsys.readouterr().out
        assert "heat ramp" in out
        assert "slice cut:" in out


class TestTopoHeat:
    def test_heat_overlay_is_deterministic(self, capsys):
        assert main(["topo", "--heat", "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["topo", "--heat", "--seed", "3"]) == 0
        assert capsys.readouterr().out == first
        assert "heat ramp" in first

    def test_topology_alias_still_draws_the_plain_map(self, capsys):
        assert main(["topology"]) == 0
        assert "=" in capsys.readouterr().out


class TestFarmHeatmapCli:
    def test_farm_report_merges_job_heatmaps(self, tmp_path, capsys):
        matrix = tmp_path / "matrix.json"
        matrix.write_text(json.dumps({
            "workload": "faults_stream",
            "base": {"words": 4, "drop_rate": 0.0, "netscope": True},
            "sweep": {"seed": [0, 1], "slices_x": [1, 2]},
        }))
        farm = tmp_path / "farm"
        assert main(["farm", "run", "--dir", str(farm),
                     "--matrix", str(matrix), "--workers", "2",
                     "--checkpoint-every", "200", "--json"]) == 0
        capsys.readouterr()

        fleet_path = tmp_path / "fleet.json"
        assert main(["farm", "report", "--dir", str(farm),
                     "--heatmap-out", str(fleet_path)]) == 0
        assert str(fleet_path) in capsys.readouterr().out
        fleet = json.loads(fleet_path.read_text())
        assert fleet["schema"] == "netscope-fleet/1"
        assert fleet["jobs"] == 4
        assert set(fleet["grids"]) == {"1x1", "2x1"}
        for merged in fleet["grids"].values():
            assert merged["merged_from"] == 2

    def test_farm_report_notes_missing_heatmaps(self, tmp_path, capsys):
        matrix = tmp_path / "matrix.json"
        matrix.write_text(json.dumps({
            "workload": "faults_stream",
            "base": {"words": 4, "drop_rate": 0.0},
            "sweep": {"seed": [0]},
        }))
        farm = tmp_path / "farm"
        assert main(["farm", "run", "--dir", str(farm),
                     "--matrix", str(matrix), "--workers", "1",
                     "--checkpoint-every", "200", "--json"]) == 0
        capsys.readouterr()
        assert main(["farm", "report", "--dir", str(farm),
                     "--heatmap-out", str(tmp_path / "fleet.json")]) == 0
        assert "no netscope heat maps" in capsys.readouterr().out
