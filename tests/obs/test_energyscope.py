"""Tests for per-span energy attribution (repro.obs.energyscope)."""

from repro import Compute, RecvWord, SendWord, SwallowSystem
from repro.obs import AttributionRow, attribute_energy


def run_traced_workload():
    system = SwallowSystem(slices_x=1)
    recorder = system.spans()
    root = recorder.span("app")
    root.begin(0)
    channel = system.channel(system.core(0), system.core(10))
    received = []

    def producer():
        for i in range(4):
            yield Compute(100)
            yield SendWord(channel.a, i)

    def consumer():
        for _ in range(4):
            received.append((yield RecvWord(channel.b)))
            yield Compute(40)

    system.spawn_task(system.core(0), producer(), name="tx",
                      span=root.child("tx"))
    system.spawn_task(system.core(10), consumer(), name="rx",
                      span=root.child("rx"))
    system.run()
    root.finish(system.sim.now)
    return system, recorder


class TestAttribution:
    def test_partition_sums_to_ledger(self):
        system, recorder = run_traced_workload()
        attribution = attribute_energy(system, recorder)
        assert attribution.total_j > 0
        assert abs(attribution.attributed_j() - attribution.total_j) <= 1e-9

    def test_span_rows_carry_their_ledgers(self):
        system, recorder = run_traced_workload()
        attribution = system.energy_attribution()
        by_path = {row.path: row for row in attribution.rows}
        tx, rx = by_path["app;tx"], by_path["app;rx"]
        assert tx.core_j > 0 and tx.link_j > 0
        assert tx.bits_sent == 4 * 32
        assert rx.core_j > 0 and rx.link_j == 0.0
        # The idle 14 cores and the support rail land on synthetic rows.
        assert sum(1 for p in by_path if p.startswith("<idle ")) == 14
        assert by_path["<support>"].support_j > 0

    def test_folded_stacks_sum_to_ledger(self):
        system, recorder = run_traced_workload()
        attribution = system.energy_attribution()
        folded = attribution.folded()
        total = 0.0
        for line in folded.splitlines():
            path, value = line.rsplit(" ", 1)
            total += float(value)
        assert abs(total - attribution.total_j) <= 1e-9
        assert any(line.startswith("app;tx ") for line in folded.splitlines())

    def test_folded_is_byte_stable(self):
        outputs = set()
        for _ in range(2):
            system, recorder = run_traced_workload()
            outputs.add(attribute_energy(system, recorder).folded())
        assert len(outputs) == 1

    def test_ec_rows_and_render(self):
        system, recorder = run_traced_workload()
        attribution = system.energy_attribution()
        ec = dict(
            (path, ratio)
            for path, _, _, ratio in attribution.ec_rows()
        )
        assert ec["app;tx"] > 0 and ec["app;tx"] != float("inf")
        assert ec["app;rx"] == float("inf")  # computed, never sent
        text = attribution.render(top=4)
        assert "energy attribution over" in text
        assert "more rows" in text

    def test_no_spans_means_pure_residuals(self):
        system = SwallowSystem(slices_x=1)

        def busy():
            yield Compute(500)

        system.spawn_task(system.core(0), busy())
        system.run()
        attribution = attribute_energy(system, recorder=None)
        assert all(row.span_id is None for row in attribution.rows)
        assert abs(attribution.attributed_j() - attribution.total_j) <= 1e-9


class TestAttributionRow:
    def test_ec_ratio_edge_cases(self):
        def row(instructions, bits):
            return AttributionRow(
                path="x", name="x", span_id=1, node_id=0,
                instructions=instructions, bits_sent=bits, retry_bits=0,
                core_j=0.0, link_j=0.0, support_j=0.0,
            )

        assert row(10, 0).ec_ratio == float("inf")
        assert row(0, 0).ec_ratio == 0.0
        # 64 instructions x 32 bits each over 32 communicated bits.
        assert row(64, 32).ec_ratio == 64.0
