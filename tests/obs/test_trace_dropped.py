"""Trace-recorder overflow must surface in metrics and the sim profile."""

from repro import Compute, SwallowSystem


def run_busy_traced(capacity):
    system = SwallowSystem(slices_x=1)
    recorder = system.trace(capacity=capacity)

    def body():
        yield Compute(500)

    system.spawn_task(system.core(0), body())
    return system, recorder


class TestDroppedEvents:
    def test_metric_tracks_ring_buffer_evictions(self):
        system, recorder = run_busy_traced(capacity=1)
        system.run()
        assert recorder.dropped > 0
        snapshot = system.metrics_snapshot()
        assert snapshot.value("trace.dropped_events") == recorder.dropped

    def test_profile_surfaces_drops(self):
        system, recorder = run_busy_traced(capacity=1)
        with system.profile() as profile:
            system.run()
        assert profile.trace_dropped_events == recorder.dropped > 0
        assert f"TRACE DROPPED {recorder.dropped}" in profile.render()
        assert profile.to_dict()["trace_dropped_events"] == recorder.dropped

    def test_unbounded_recorder_drops_nothing(self):
        system, recorder = run_busy_traced(capacity=None)
        with system.profile() as profile:
            system.run()
        assert recorder.dropped == 0
        assert profile.trace_dropped_events == 0
        assert "TRACE DROPPED" not in profile.render()

    def test_reattaching_tracer_does_not_duplicate_series(self):
        system, recorder = run_busy_traced(capacity=1)
        system.trace(capacity=2)  # second attach reuses the lazy series
        system.run()
        snapshot = system.metrics_snapshot()  # raises on duplicate keys
        assert snapshot.value("trace.dropped_events") == system.tracer.dropped
