"""API quality gates: the public surface is importable and documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.sim", "repro.xs1", "repro.network", "repro.board",
    "repro.energy", "repro.analysis", "repro.apps", "repro.core",
    "repro.obs",
]


class TestPublicSurface:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    @pytest.mark.parametrize("package_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.__all__: {name}"

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)


def _public_members():
    """Every public class/function defined inside the repro tree."""
    members = []
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        prefix = package.__name__ + "."
        for module_info in pkgutil.iter_modules(package.__path__, prefix):
            module = importlib.import_module(module_info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                members.append((module.__name__, name, obj))
    return members


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = []
        for package_name in SUBPACKAGES:
            package = importlib.import_module(package_name)
            prefix = package.__name__ + "."
            for module_info in pkgutil.iter_modules(package.__path__, prefix):
                module = importlib.import_module(module_info.name)
                if not (module.__doc__ or "").strip():
                    undocumented.append(module.__name__)
        assert not undocumented

    def test_every_public_item_has_a_docstring(self):
        undocumented = [
            f"{module}.{name}"
            for module, name, obj in _public_members()
            if not (obj.__doc__ or "").strip()
        ]
        assert not undocumented, f"{len(undocumented)} items: {undocumented[:10]}"

    def test_public_methods_documented(self):
        undocumented = []
        for module, name, obj in _public_members():
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if not (inspect.isfunction(attr) or isinstance(attr, property)):
                    continue
                doc = (
                    attr.fget.__doc__ if isinstance(attr, property) and attr.fget
                    else getattr(attr, "__doc__", None)
                )
                if not (doc or "").strip():
                    undocumented.append(f"{module}.{name}.{attr_name}")
        assert not undocumented, (
            f"{len(undocumented)} methods: {undocumented[:10]}"
        )
