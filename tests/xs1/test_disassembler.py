"""Disassembler round-trip: listing -> reassembly -> identical program."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xs1 import INSTRUCTION_SET, Operand, assemble

#: Mnemonics whose operands we can synthesize freely.
_SAFE_MNEMONICS = sorted(
    name for name, spec in INSTRUCTION_SET.items()
    if Operand.LABEL not in spec.operands
)


@st.composite
def random_programs(draw):
    """Random straight-line programs (labels handled separately)."""
    count = draw(st.integers(min_value=1, max_value=12))
    lines = []
    for _ in range(count):
        mnemonic = draw(st.sampled_from(_SAFE_MNEMONICS))
        spec = INSTRUCTION_SET[mnemonic]
        operands = []
        for kind in spec.operands:
            if kind is Operand.REG:
                operands.append(f"r{draw(st.integers(min_value=0, max_value=11))}")
            else:
                operands.append(str(draw(st.integers(min_value=0, max_value=255))))
        lines.append(f"{mnemonic} {', '.join(operands)}".strip())
    lines.append("freet")
    return "\n".join(lines)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_disassemble_reassembles_identically(self, source):
        first = assemble(source)
        second = assemble(first.disassemble())
        assert [str(i) for i in first.instructions] == [
            str(i) for i in second.instructions
        ]

    def test_labelled_program_roundtrip(self):
        source = """
        start:
            ldc r0, 10
        loop:
            subi r0, r0, 1
            bt r0, loop
            bl helper
            freet
        helper:
            nop
            ret
        """
        first = assemble(source)
        listing = first.disassemble()
        # Branch targets in a listing are raw indices; rebuild via labels.
        assert "loop:" in listing and "helper:" in listing

    @settings(max_examples=20, deadline=None)
    @given(random_programs())
    def test_roundtrip_execution_equivalent(self, source):
        """The reassembled program executes identically."""
        from repro.sim import Simulator
        from repro.xs1 import LoopbackFabric, TrapError, XCore

        def run(program):
            sim = Simulator()
            core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
            thread = core.spawn(program)
            try:
                sim.run(max_events=100_000)
            except TrapError as trap:
                return ("trap", str(trap).split(":")[-1])
            if not thread.halted:
                return ("blocked", thread.pause_reason)
            return ("halted", thread.regs.snapshot(), sim.now)

        first = run(assemble(source))
        second = run(assemble(assemble(source).disassemble()))
        assert first == second
