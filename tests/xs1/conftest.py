"""Shared fixtures for XS1 model tests."""

import pytest

from repro.sim import Simulator
from repro.xs1 import LoopbackFabric, XCore


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    return LoopbackFabric(sim)


@pytest.fixture
def core(sim, fabric):
    return XCore(sim, node_id=0, fabric=fabric)


@pytest.fixture
def make_core(sim, fabric):
    """Factory for extra cores sharing the same loopback fabric."""
    counter = {"next": 1}

    def build(**kwargs):
        node_id = kwargs.pop("node_id", counter["next"])
        counter["next"] = max(counter["next"], node_id) + 1
        return XCore(sim, node_id=node_id, fabric=fabric, **kwargs)

    return build
