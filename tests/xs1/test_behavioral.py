"""Tests for behavioural (coroutine) threads."""

import pytest

from repro.sim import Simulator
from repro.xs1 import (
    CT_END,
    BehavioralThread,
    CheckCt,
    Compute,
    LoopbackFabric,
    RecvToken,
    RecvWord,
    SendCt,
    SendToken,
    SendWord,
    Sleep,
    TrapError,
    XCore,
    assemble,
)


class TestCompute:
    def test_compute_occupies_slots(self, sim, core):
        def body():
            yield Compute(100)

        thread = BehavioralThread(core, body())
        sim.run()
        assert thread.halted
        assert thread.instructions_executed == 100
        # Single thread: one issue per 4 cycles.
        assert core.cycle == pytest.approx(400, abs=8)

    def test_compute_zero_is_free(self, sim, core):
        def body():
            yield Compute(0)

        thread = BehavioralThread(core, body())
        sim.run()
        assert thread.halted
        assert thread.instructions_executed == 0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_behavioral_matches_isa_timing(self, sim, core, make_core):
        """Compute(n) should take the same time as n ISA instructions."""
        other = make_core()

        def body():
            yield Compute(202)

        behavioral = BehavioralThread(core, body())
        isa = other.spawn(assemble("""
            ldc r0, 100
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        sim.run()
        assert behavioral.instructions_executed == isa.instructions_executed
        assert core.cycle == pytest.approx(other.cycle, abs=8)


class TestCommunication:
    def test_word_roundtrip(self, sim, core):
        a = core.allocate_chanend()
        b = core.allocate_chanend()
        a.set_dest(b.address)
        b.set_dest(a.address)
        received = []

        def producer():
            yield SendWord(a, 0x12345678)

        def consumer():
            word = yield RecvWord(b)
            received.append(word)

        BehavioralThread(core, producer())
        BehavioralThread(core, consumer())
        sim.run()
        assert received == [0x12345678]

    def test_token_and_ct_roundtrip(self, sim, core):
        a = core.allocate_chanend()
        b = core.allocate_chanend()
        a.set_dest(b.address)
        got = []

        def producer():
            yield SendToken(a, 7)
            yield SendCt(a, CT_END)

        def consumer():
            value = yield RecvToken(b)
            got.append(value)
            yield CheckCt(b, CT_END)

        BehavioralThread(core, producer())
        consumer_thread = BehavioralThread(core, consumer())
        sim.run()
        assert got == [7]
        assert consumer_thread.halted

    def test_checkct_mismatch_traps(self, sim, core):
        a = core.allocate_chanend()
        b = core.allocate_chanend()
        a.set_dest(b.address)

        def producer():
            yield SendToken(a, 1)

        def consumer():
            yield CheckCt(b, CT_END)

        BehavioralThread(core, producer())
        BehavioralThread(core, consumer())
        with pytest.raises(TrapError):
            sim.run()

    def test_blocking_receive_then_data(self, sim, core):
        a = core.allocate_chanend()
        b = core.allocate_chanend()
        a.set_dest(b.address)
        order = []

        def slow_producer():
            yield Compute(500)
            order.append("sent")
            yield SendWord(a, 1)

        def eager_consumer():
            yield RecvWord(b)
            order.append("received")

        BehavioralThread(core, slow_producer())
        BehavioralThread(core, eager_consumer())
        sim.run()
        assert order == ["sent", "received"]

    def test_pingpong_many_rounds(self, sim, core, make_core):
        other = make_core()
        a = core.allocate_chanend()
        b = other.allocate_chanend()
        a.set_dest(b.address)
        b.set_dest(a.address)
        rounds = 20
        log = []

        def ping():
            for i in range(rounds):
                yield SendWord(a, i)
                echoed = yield RecvWord(a)
                log.append(echoed)

        def pong():
            for _ in range(rounds):
                value = yield RecvWord(b)
                yield SendWord(b, value)

        BehavioralThread(core, ping())
        BehavioralThread(other, pong())
        sim.run()
        assert log == list(range(rounds))


class TestSleep:
    def test_sleep_advances_time_without_slots(self, sim, core):
        def body():
            yield Compute(4)
            yield Sleep(1000)
            yield Compute(4)

        thread = BehavioralThread(core, body())
        sim.run()
        assert thread.halted
        assert thread.instructions_executed == 8
        assert core.cycle >= 1000

    def test_sleeping_thread_frees_slots_for_others(self, sim, core):
        """While one thread sleeps, another gets full f/4 issue rate."""
        def sleeper():
            yield Sleep(10_000)

        def worker():
            yield Compute(100)

        BehavioralThread(core, sleeper())
        worker_thread = BehavioralThread(core, worker())
        sim.run_until(core.frequency.cycles_to_ps(450))
        assert worker_thread.halted  # ~404 cycles needed at f/4
