"""Instruction-semantics tests: run small programs to completion."""

import pytest

from repro.xs1 import TrapError, assemble


def run(sim, core, source, max_events=2_000_000, **spawn_kwargs):
    """Assemble, spawn as one thread, run to completion, return the thread."""
    thread = core.spawn(assemble(source), **spawn_kwargs)
    sim.run(max_events=max_events)
    assert thread.halted, f"thread stuck: {thread.state} ({thread.pause_reason})"
    return thread


class TestArithmetic:
    def test_add_sub(self, sim, core):
        t = run(sim, core, """
            ldc r0, 20
            ldc r1, 22
            add r2, r0, r1
            sub r3, r0, r1
            freet
        """)
        assert t.regs.read(2) == 42
        assert t.regs.read(3) == 0xFFFF_FFFE  # -2 wrapped

    def test_mul_wraps(self, sim, core):
        t = run(sim, core, """
            ldc r0, 0x10000
            mul r1, r0, r0
            freet
        """)
        assert t.regs.read(1) == 0

    def test_divu_remu(self, sim, core):
        t = run(sim, core, """
            ldc r0, 17
            ldc r1, 5
            divu r2, r0, r1
            remu r3, r0, r1
            freet
        """)
        assert t.regs.read(2) == 3
        assert t.regs.read(3) == 2

    def test_div_by_zero_traps(self, sim, core):
        core.spawn(assemble("ldc r0, 1\nldc r1, 0\ndivu r2, r0, r1\nfreet"))
        with pytest.raises(TrapError, match="division by zero"):
            sim.run()

    def test_logic_ops(self, sim, core):
        t = run(sim, core, """
            ldc r0, 0xF0
            ldc r1, 0xFF
            and r2, r0, r1
            or  r3, r0, r1
            xor r4, r0, r1
            not r5, r0
            neg r6, r0
            freet
        """)
        assert t.regs.read(2) == 0xF0
        assert t.regs.read(3) == 0xFF
        assert t.regs.read(4) == 0x0F
        assert t.regs.read(5) == 0xFFFF_FF0F
        assert t.regs.read(6) == (-0xF0) & 0xFFFF_FFFF

    def test_shifts(self, sim, core):
        t = run(sim, core, """
            ldc r0, 0x80000000
            ldc r1, 4
            shr r2, r0, r1
            ashr r3, r0, r1
            shli r4, r1, 2
            shri r5, r0, 31
            freet
        """)
        assert t.regs.read(2) == 0x0800_0000
        assert t.regs.read(3) == 0xF800_0000
        assert t.regs.read(4) == 16
        assert t.regs.read(5) == 1

    def test_comparisons(self, sim, core):
        t = run(sim, core, """
            ldc r0, 5
            ldc r1, 0xFFFFFFFF      # -1 signed, huge unsigned
            lss r2, r1, r0          # -1 < 5 signed -> 1
            lsu r3, r1, r0          # huge < 5 unsigned -> 0
            eq  r4, r0, r0
            eqi r5, r0, 5
            freet
        """)
        assert t.regs.read(2) == 1
        assert t.regs.read(3) == 0
        assert t.regs.read(4) == 1
        assert t.regs.read(5) == 1

    def test_mkmsk(self, sim, core):
        t = run(sim, core, "mkmsk r0, 8\nmkmsk r1, 32\nfreet")
        assert t.regs.read(0) == 0xFF
        assert t.regs.read(1) == 0xFFFF_FFFF


class TestMemory:
    def test_ldw_stw(self, sim, core):
        t = run(sim, core, """
            ldc r0, 0x200
            ldc r1, 1234
            stw r1, r0, 0
            stw r1, r0, 3
            ldw r2, r0, 3
            freet
        """)
        assert t.regs.read(2) == 1234
        assert core.memory.load_word(0x200) == 1234
        assert core.memory.load_word(0x20C) == 1234

    def test_ldb_stb(self, sim, core):
        t = run(sim, core, """
            ldc r0, 0x300
            ldc r1, 0xAB
            stb r1, r0, 2
            ldb r2, r0, 2
            freet
        """)
        assert t.regs.read(2) == 0xAB

    def test_ldaw(self, sim, core):
        t = run(sim, core, "ldc r0, 0x100\nldaw r1, r0, 5\nfreet")
        assert t.regs.read(1) == 0x100 + 20

    def test_data_section_loaded(self, sim, core):
        t = run(sim, core, """
            .data 0x400
            .word 777
            start:
                ldc r0, 0x400
                ldw r1, r0, 0
                freet
        """)
        assert t.regs.read(1) == 777


class TestControlFlow:
    def test_countdown_loop(self, sim, core):
        t = run(sim, core, """
            ldc r0, 10
            ldc r2, 0
        loop:
            addi r2, r2, 1
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        assert t.regs.read(2) == 10

    def test_bf_taken_when_zero(self, sim, core):
        t = run(sim, core, """
            ldc r0, 0
            bf r0, skip
            ldc r1, 1
        skip:
            freet
        """)
        assert t.regs.read(1) == 0

    def test_call_and_return(self, sim, core):
        t = run(sim, core, """
        start:
            bl func
            ldc r1, 2
            freet
        func:
            ldc r0, 1
            ret
        """)
        assert t.regs.read(0) == 1
        assert t.regs.read(1) == 2

    def test_computed_branch(self, sim, core):
        t = run(sim, core, """
            ldc r0, 3
            bru r0
            nop
        target:
            ldc r1, 9
            freet
        """)
        # bru jumps to instruction index 3 == "ldc r1, 9"
        assert t.regs.read(1) == 9

    def test_pc_out_of_range_traps(self, sim, core):
        core.spawn(assemble("nop"))
        with pytest.raises(TrapError, match="pc"):
            sim.run()


class TestTimingDeterminism:
    def test_gettime_advances(self, sim, core):
        t = run(sim, core, """
            gettime r0
            nop
            nop
            gettime r1
            freet
        """)
        # Single thread: one issue per 4 cycles; 3 instructions between reads.
        assert t.regs.read(1) - t.regs.read(0) == 12

    def test_identical_runs_identical_timing(self, make_core):
        import repro.sim as sim_mod

        def measure():
            sim = sim_mod.Simulator()
            from repro.xs1 import LoopbackFabric, XCore

            fabric = LoopbackFabric(sim)
            core = XCore(sim, node_id=0, fabric=fabric)
            thread = core.spawn(assemble("""
                ldc r0, 50
            loop:
                subi r0, r0, 1
                bt r0, loop
                freet
            """))
            sim.run()
            return sim.now, thread.instructions_executed

        assert measure() == measure()
