"""Tests for SRAM and the register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xs1 import MemoryAccessError, RegisterFile, Sram, TrapError, s32, u32


class TestSram:
    def test_word_roundtrip(self):
        mem = Sram()
        mem.store_word(0x100, 0xDEADBEEF)
        assert mem.load_word(0x100) == 0xDEADBEEF

    def test_little_endian_layout(self):
        mem = Sram()
        mem.store_word(0, 0x01020304)
        assert mem.load_byte(0) == 0x04
        assert mem.load_byte(3) == 0x01

    def test_byte_and_half(self):
        mem = Sram()
        mem.store_byte(5, 0xAB)
        assert mem.load_byte(5) == 0xAB
        mem.store_half(6, 0x1234)
        assert mem.load_half(6) == 0x1234

    def test_size_is_64kib(self):
        assert Sram().size == 64 * 1024

    def test_word_wraps_to_32_bits(self):
        mem = Sram()
        mem.store_word(0, 0x1_0000_0001)
        assert mem.load_word(0) == 1

    def test_out_of_range_rejected(self):
        mem = Sram()
        with pytest.raises(MemoryAccessError):
            mem.load_word(mem.size)
        with pytest.raises(MemoryAccessError):
            mem.store_word(mem.size - 2, 0)
        with pytest.raises(MemoryAccessError):
            mem.load_byte(-1)

    def test_misaligned_rejected(self):
        mem = Sram()
        with pytest.raises(MemoryAccessError, match="misaligned"):
            mem.load_word(2)
        with pytest.raises(MemoryAccessError, match="misaligned"):
            mem.store_half(1, 0)

    def test_block_roundtrip(self):
        mem = Sram()
        mem.write_block(10, b"hello")
        assert mem.read_block(10, 5) == b"hello"

    def test_block_bounds(self):
        mem = Sram()
        with pytest.raises(MemoryAccessError):
            mem.write_block(mem.size - 2, b"abc")

    def test_access_counters(self):
        mem = Sram()
        mem.store_word(0, 1)
        mem.load_word(0)
        mem.load_byte(0)
        assert mem.stores == 1
        assert mem.loads == 2

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Sram(6)

    @given(st.integers(min_value=0, max_value=0xFFFF_FFFF), st.integers(min_value=0, max_value=(64 * 1024 - 4) // 4))
    def test_word_roundtrip_property(self, value, word_index):
        mem = Sram()
        mem.store_word(word_index * 4, value)
        assert mem.load_word(word_index * 4) == value


class TestRegisterFile:
    def test_initially_zero(self):
        regs = RegisterFile()
        assert all(v == 0 for v in regs.snapshot().values())

    def test_write_read(self):
        regs = RegisterFile()
        regs.write(3, 99)
        assert regs.read(3) == 99

    def test_named_access(self):
        regs = RegisterFile()
        regs.write_named("sp", 0x8000)
        assert regs.read_named("sp") == 0x8000
        assert regs.read(14) == 0x8000

    def test_wraps_32_bits(self):
        regs = RegisterFile()
        regs.write(0, -1)
        assert regs.read(0) == 0xFFFF_FFFF

    def test_invalid_index(self):
        regs = RegisterFile()
        with pytest.raises(TrapError):
            regs.read(16)
        with pytest.raises(TrapError):
            regs.write(-1, 0)

    def test_snapshot_names(self):
        snap = RegisterFile().snapshot()
        assert set(snap) == {f"r{i}" for i in range(12)} | {"cp", "dp", "sp", "lr"}


class TestWrapHelpers:
    @given(st.integers())
    def test_u32_range(self, value):
        assert 0 <= u32(value) <= 0xFFFF_FFFF

    @given(st.integers())
    def test_s32_range(self, value):
        assert -(2**31) <= s32(value) <= 2**31 - 1

    def test_s32_negative(self):
        assert s32(0xFFFF_FFFF) == -1
        assert s32(0x8000_0000) == -(2**31)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_s32_roundtrip(self, value):
        assert s32(u32(value)) == value
