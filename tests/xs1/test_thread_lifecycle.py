"""Thread lifecycle invariants: pause/resume/halt state machine."""

import pytest

from repro.sim import Simulator
from repro.xs1 import (
    BehavioralThread,
    Compute,
    LoopbackFabric,
    Sleep,
    ThreadState,
    TrapError,
    XCore,
    assemble,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def core(sim):
    return XCore(sim, node_id=0, fabric=LoopbackFabric(sim))


class TestStates:
    def test_spawned_thread_is_runnable(self, core):
        thread = core.spawn(assemble("freet"))
        assert thread.state is ThreadState.RUNNABLE
        assert thread.runnable

    def test_halt_is_terminal(self, sim, core):
        thread = core.spawn(assemble("freet"))
        sim.run()
        assert thread.state is ThreadState.HALTED
        thread.resume()   # no-op on halted threads
        assert thread.halted
        thread.halt()     # idempotent
        assert thread.halted

    def test_pause_of_halted_thread_traps(self, sim, core):
        thread = core.spawn(assemble("freet"))
        sim.run()
        with pytest.raises(TrapError):
            thread.pause("nope")

    def test_resume_is_idempotent_for_runnable(self, core):
        thread = core.spawn(assemble("nop\nfreet"))
        thread.resume()
        thread.resume()
        assert thread.runnable

    def test_pause_reason_cleared_on_resume(self, sim, core):
        def body():
            yield Sleep(100)

        thread = BehavioralThread(core, body())
        sim.run_until(core.frequency.cycles_to_ps(10))
        assert thread.pause_reason == "sleep"
        sim.run()
        assert thread.halted
        assert thread.pause_reason is None


class TestCounters:
    def test_active_thread_count_tracks_pauses(self, sim, core):
        def sleeper():
            yield Sleep(1000)

        def worker():
            yield Compute(2000)

        BehavioralThread(core, sleeper())
        BehavioralThread(core, worker())
        assert core.active_threads == 2
        sim.run_until(core.frequency.cycles_to_ps(20))
        assert core.active_threads == 1   # sleeper parked
        sim.run()
        assert core.active_threads == 0
        assert core.live_threads == 0

    def test_halt_callbacks_fire(self, sim, core):
        halted = []
        core.on_halt_callbacks.append(lambda t: halted.append(t.name))
        core.spawn(assemble("freet"), name="one")
        core.spawn(assemble("nop\nfreet"), name="two")
        sim.run()
        assert sorted(halted) == ["one", "two"]

    def test_instruction_counter_excludes_blocked_retries(self, sim, core):
        """A blocked instruction retires exactly once despite re-issues."""
        receiver = core.allocate_chanend()
        sender = core.allocate_chanend()
        sender.set_dest(receiver.address)
        program = assemble("""
            in r1, r0
            freet
        """)
        thread = core.spawn(program, regs={"r0": receiver.address.encode()})
        sim.run()
        assert not thread.halted            # still blocked
        count_while_blocked = thread.instructions_executed
        assert count_while_blocked == 0     # nothing retired yet
        from repro.network.token import word_to_tokens

        sender.push_tx(word_to_tokens(5))
        sim.run()
        assert thread.halted
        assert thread.instructions_executed == 2   # in + freet


class TestSchedulerFairness:
    def test_equal_threads_make_equal_progress(self, sim, core):
        program = assemble("""
            ldc r0, 400
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        threads = [core.spawn(program) for _ in range(6)]
        sim.run_until(core.frequency.cycles_to_ps(1200))
        counts = [t.instructions_executed for t in threads]
        assert max(counts) - min(counts) <= 1

    def test_woken_thread_rejoins_rotation(self, sim, core):
        def napper():
            yield Compute(10)
            yield Sleep(500)
            yield Compute(10)

        def grinder():
            yield Compute(5000)

        nap = BehavioralThread(core, napper())
        BehavioralThread(core, grinder())
        sim.run()
        assert nap.halted
        assert nap.instructions_executed == 20
