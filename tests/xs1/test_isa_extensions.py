"""Tests for the extended ISA subset (bit-manipulation instructions)
and the extra assembler directives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.xs1 import LoopbackFabric, TrapError, XCore, assemble

u32s = st.integers(min_value=0, max_value=0xFFFF_FFFF)


def run_program(source, r0=0):
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    thread = core.spawn(assemble(source), regs={"r0": r0})
    sim.run()
    assert thread.halted
    return thread, core


class TestSignExtension:
    def test_sext_negative_byte(self):
        thread, _ = run_program("sext r0, 8\nfreet", r0=0xFF)
        assert thread.regs.read(0) == 0xFFFF_FFFF

    def test_sext_positive_byte(self):
        thread, _ = run_program("sext r0, 8\nfreet", r0=0x7F)
        assert thread.regs.read(0) == 0x7F

    def test_zext_mask(self):
        thread, _ = run_program("zext r0, 12\nfreet", r0=0xFFFF_FFFF)
        assert thread.regs.read(0) == 0xFFF

    def test_bad_width_traps(self):
        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        core.spawn(assemble("sext r0, 33\nfreet"))
        with pytest.raises(TrapError):
            sim.run()

    @given(u32s, st.integers(min_value=1, max_value=32))
    def test_zext_idempotent(self, value, bits):
        source = f"zext r0, {bits}\nmov r1, r0\nzext r1, {bits}\nfreet"
        thread, _ = run_program(source, r0=value)
        assert thread.regs.read(0) == thread.regs.read(1)


class TestBitOps:
    def test_andnot(self):
        thread, _ = run_program("""
            ldc r1, 0x0F
            andnot r0, r1
            freet
        """, r0=0xFF)
        assert thread.regs.read(0) == 0xF0

    @pytest.mark.parametrize("value,expected", [
        (0, 32), (1, 31), (0x8000_0000, 0), (0xFF, 24),
    ])
    def test_clz(self, value, expected):
        thread, _ = run_program("clz r1, r0\nfreet", r0=value)
        assert thread.regs.read(1) == expected

    def test_byterev(self):
        thread, _ = run_program("byterev r1, r0\nfreet", r0=0x01020304)
        assert thread.regs.read(1) == 0x04030201

    def test_bitrev(self):
        thread, _ = run_program("bitrev r1, r0\nfreet", r0=0x1)
        assert thread.regs.read(1) == 0x8000_0000

    @given(u32s)
    def test_bitrev_involution(self, value):
        thread, _ = run_program("bitrev r1, r0\nbitrev r2, r1\nfreet", r0=value)
        assert thread.regs.read(2) == value

    @given(u32s)
    def test_byterev_involution(self, value):
        thread, _ = run_program("byterev r1, r0\nbyterev r2, r1\nfreet", r0=value)
        assert thread.regs.read(2) == value


class TestNewDirectives:
    def test_byte_directive(self):
        _, core = run_program("""
            .data 0x50
            .byte 1, 2, 0x83
            start: freet
        """)
        assert core.memory.read_block(0x50, 3) == bytes([1, 2, 0x83])

    def test_ascii_directive(self):
        _, core = run_program("""
            .data 0x60
            .ascii "swallow"
            start: freet
        """)
        assert core.memory.read_block(0x60, 7) == b"swallow"

    def test_ascii_requires_quotes(self):
        from repro.xs1 import AssemblerError

        with pytest.raises(AssemblerError, match="quoted"):
            assemble('.data 0\n.ascii unquoted')

    def test_byte_before_data_rejected(self):
        from repro.xs1 import AssemblerError

        with pytest.raises(AssemblerError):
            assemble(".byte 1")

    def test_mixed_directives_contiguous(self):
        _, core = run_program("""
            .data 0x80
            .byte 0xAA
            .ascii "xy"
            .byte 0xBB
            start: freet
        """)
        assert core.memory.read_block(0x80, 4) == bytes([0xAA, 0x78, 0x79, 0xBB])
