"""Edge cases of instruction execution and resource handling."""

import pytest

from repro.sim import Simulator
from repro.xs1 import (
    LoopbackFabric,
    ResourceError,
    TrapError,
    XCore,
    assemble,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def core(sim):
    return XCore(sim, node_id=0, fabric=LoopbackFabric(sim))


class TestResourceEdges:
    def test_getr_port_unsupported(self, sim, core):
        core.spawn(assemble("getr r0, 0\nfreet"))
        with pytest.raises(TrapError, match="unsupported resource type"):
            sim.run()

    def test_freer_garbage_id(self, sim, core):
        core.spawn(assemble("ldc r0, 0xFF\nfreer r0\nfreet"))
        with pytest.raises(TrapError, match="freer"):
            sim.run()

    def test_in_from_unsupported_type(self, sim, core):
        core.spawn(assemble("""
            ldc r0, 0x07       # type 7: not a resource we model
            in r1, r0
            freet
        """))
        with pytest.raises(TrapError, match="unsupported resource"):
            sim.run()

    def test_setd_on_foreign_node_chanend_traps(self, sim, core):
        foreign = (42 << 16) | (0 << 8) | 2
        core.spawn(assemble("setd r0, r1\nfreet"), regs={"r0": foreign})
        with pytest.raises(TrapError, match="not on node"):
            sim.run()

    def test_timer_exhaustion(self, sim, core):
        n = core.config.num_timers
        source = "\n".join(["getr r0, 1"] * (n + 1)) + "\nfreet"
        core.spawn(assemble(source))
        with pytest.raises(ResourceError, match="out of timers"):
            sim.run()

    def test_lock_exhaustion(self, sim, core):
        n = core.config.num_locks
        source = "\n".join(["getr r0, 3"] * (n + 1)) + "\nfreet"
        core.spawn(assemble(source))
        with pytest.raises(ResourceError, match="out of locks"):
            sim.run()

    def test_freed_timer_read_traps(self, sim, core):
        core.spawn(assemble("""
            getr r0, 1
            freer r0
            in r1, r0
            freet
        """))
        with pytest.raises(TrapError, match="not allocated"):
            sim.run()

    def test_lock_reacquire_by_holder_is_idempotent(self, sim, core):
        lock_id = core.allocate_resource(3)
        thread = core.spawn(assemble("""
            in r1, r0
            in r2, r0          # re-acquire while holding: no self-deadlock
            out r0, r1
            freet
        """), regs={"r0": lock_id})
        sim.run()
        assert thread.halted


class TestMemoryEdges:
    def test_unaligned_load_traps_cleanly(self, sim, core):
        from repro.xs1 import MemoryAccessError

        core.spawn(assemble("ldc r0, 2\nldw r1, r0, 0\nfreet"))
        with pytest.raises(MemoryAccessError):
            sim.run()

    def test_wrapped_address_is_checked(self, sim, core):
        from repro.xs1 import MemoryAccessError

        core.spawn(assemble("""
            ldc r0, 0xFFFF0000
            ldw r1, r0, 0
            freet
        """))
        with pytest.raises(MemoryAccessError):
            sim.run()


class TestControlEdges:
    def test_in_word_with_interleaved_control_token_traps(self, sim, core):
        program = assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            ldc r2, 1
            outt r0, r2        # one data token...
            outct r0, 1        # ...then a control token mid-word
            outt r0, r2
            outt r0, r2
            in r3, r1          # expects 4 clean data tokens
            freet
        """)
        core.spawn(program)
        with pytest.raises(TrapError, match="control token"):
            sim.run()

    def test_intt_on_control_token_traps(self, sim, core):
        program = assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            outct r0, 1
            intt r2, r1
            freet
        """)
        core.spawn(program)
        with pytest.raises(TrapError, match="control token"):
            sim.run()


class TestCliIsa:
    def test_isa_listing(self, capsys):
        from repro.__main__ import main

        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        assert "instructions in the XS1 subset" in out
        assert "waiteu" in out
        assert "[comm]" in out
