"""Tests for the two-pass assembler."""

import pytest

from repro.xs1 import AssemblerError, assemble


class TestBasicAssembly:
    def test_empty_program(self):
        assert len(assemble("")) == 0

    def test_single_instruction(self):
        program = assemble("ldc r0, 5")
        assert len(program) == 1
        assert program.instructions[0].mnemonic == "ldc"
        assert program.instructions[0].args == (0, 5)

    def test_comments_ignored(self):
        program = assemble("""
        # hash comment
        ldc r0, 1   ; trailing comment
        ; whole-line comment
        """)
        assert len(program) == 1

    def test_registers_parse(self):
        program = assemble("add r11, sp, lr")
        assert program.instructions[0].args == (11, 14, 15)

    def test_hex_and_negative_immediates(self):
        program = assemble("ldc r0, 0xff\nldc r1, -1")
        assert program.instructions[0].args == (0, 0xFF)
        assert program.instructions[1].args == (1, -1)

    def test_char_immediate(self):
        program = assemble("ldc r0, 'A'")
        assert program.instructions[0].args == (0, 65)


class TestLabels:
    def test_label_resolves_to_index(self):
        program = assemble("""
        start:
            ldc r0, 3
        loop:
            subi r0, r0, 1
            bt r0, loop
        """)
        assert program.labels == {"start": 0, "loop": 1}
        assert program.instructions[2].args == (0, 1)

    def test_forward_reference(self):
        program = assemble("""
            bu end
            nop
        end:
            freet
        """)
        assert program.instructions[0].args == (2,)

    def test_label_on_same_line_as_instruction(self):
        program = assemble("here: nop")
        assert program.labels["here"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\nnop\na:\nnop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblerError, match="unknown label"):
            assemble("bu nowhere")

    def test_entry_defaults(self):
        program = assemble("nop\nstart: freet")
        assert program.entry() == 1
        assert program.entry("start") == 1

    def test_entry_missing_start_is_zero(self):
        assert assemble("nop").entry() == 0

    def test_entry_unknown_label(self):
        with pytest.raises(AssemblerError):
            assemble("nop").entry("other")


class TestDirectives:
    def test_equ_constant(self):
        program = assemble(".equ N, 42\nldc r0, N")
        assert program.instructions[0].args == (0, 42)
        assert program.constants["N"] == 42

    def test_data_words(self):
        program = assemble(".data 0x100\n.word 1, 2")
        assert program.data_blocks == [(0x100, (1).to_bytes(4, "little") + (2).to_bytes(4, "little"))]

    def test_space(self):
        program = assemble(".data 0\n.space 8\n.word 7")
        address, data = program.data_blocks[0]
        assert address == 0
        assert data[:8] == bytes(8)
        assert data[8:12] == (7).to_bytes(4, "little")

    def test_word_without_data_rejected(self):
        with pytest.raises(AssemblerError, match=".word before"):
            assemble(".word 1")

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus 1")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r0")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("add r0, r1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble("mov r0, r99")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError, match="cannot parse"):
            assemble("ldc r0, banana")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus_op r1")


class TestDisassembly:
    def test_roundtrip_readable(self):
        source = """
        start:
            ldc r0, 10
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """
        listing = assemble(source).disassemble()
        assert "start:" in listing
        assert "ldc r0, 10" in listing
        assert "freet" in listing
