"""Pipeline-scheduler tests: Eq. 2 of the paper must emerge from mechanism.

    IPS_thread = f / max(4, N_threads)
    IPS_core   = f * min(4, N_threads) / 4
"""

import pytest

from repro.sim import Frequency, Simulator
from repro.xs1 import LoopbackFabric, ResourceError, XCore, assemble

LOOP = """
    ldc r0, {count}
loop:
    subi r0, r0, 1
    bt r0, loop
    freet
"""


def spawn_spinners(core, n_threads, iterations=500):
    program = assemble(LOOP.format(count=iterations))
    return [core.spawn(program, name=f"spin{i}") for i in range(n_threads)]


@pytest.mark.parametrize("n_threads,expected_share", [
    (1, 4),   # one issue per 4 cycles
    (2, 4),
    (3, 4),
    (4, 4),
    (5, 5),   # one issue per 5 cycles
    (6, 6),
    (8, 8),
])
def test_per_thread_issue_rate_matches_eq2(n_threads, expected_share):
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    iterations = 300
    threads = spawn_spinners(core, n_threads, iterations)
    sim.run()
    instructions_each = 2 * iterations + 2  # ldc + (subi+bt)*n + freet
    # The last thread to finish bounds the total: its issue rate is
    # f/expected_share while all threads run.  All threads execute the same
    # count, so total cycles ~= instructions_each * expected_share.
    cycles = core.cycle
    expected_cycles = instructions_each * expected_share
    assert cycles == pytest.approx(expected_cycles, rel=0.02), (
        f"{n_threads} threads took {cycles} cycles, expected ~{expected_cycles}"
    )
    assert all(t.instructions_executed == instructions_each for t in threads)


def test_core_throughput_saturates_at_four_threads():
    """IPS_core = f*min(4,Nt)/4: 4 and 6 threads give the same aggregate rate."""
    def total_rate(n_threads):
        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        spawn_spinners(core, n_threads, iterations=250)
        sim.run()
        return core.stats.total_instructions / core.cycle

    assert total_rate(1) == pytest.approx(0.25, rel=0.02)
    assert total_rate(2) == pytest.approx(0.50, rel=0.02)
    assert total_rate(4) == pytest.approx(1.00, rel=0.02)
    assert total_rate(6) == pytest.approx(1.00, rel=0.02)
    assert total_rate(8) == pytest.approx(1.00, rel=0.02)


def test_thread_limit_enforced():
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    spawn_spinners(core, 8, iterations=1)
    with pytest.raises(ResourceError, match="hardware threads"):
        core.spawn(assemble("freet"))


def test_halted_thread_slot_reusable():
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    spawn_spinners(core, 8, iterations=1)
    sim.run()
    assert core.all_halted
    core.spawn(assemble("freet"))  # must not raise
    sim.run()
    assert core.all_halted


def test_frequency_scaling_slows_wall_clock():
    def runtime(mhz):
        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        core.set_frequency(Frequency.mhz(mhz))
        spawn_spinners(core, 1, iterations=100)
        sim.run()
        return sim.now

    assert runtime(250) == pytest.approx(2 * runtime(500), rel=0.01)
    assert runtime(125) == pytest.approx(4 * runtime(500), rel=0.01)


def test_mid_run_frequency_change_preserves_cycle_count():
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    spawn_spinners(core, 1, iterations=1000)
    sim.run_until(core.frequency.cycles_to_ps(400))
    cycles_before = core.cycle
    core.set_frequency(Frequency.mhz(100))
    assert core.cycle == cycles_before
    sim.run()
    assert core.all_halted


def test_bubble_slots_counted_for_single_thread():
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    spawn_spinners(core, 1, iterations=100)
    sim.run()
    # One thread: 3 of every 4 slots are pipeline bubbles.
    assert core.stats.slots_bubble == pytest.approx(3 * core.stats.slots_issued, rel=0.05)


def test_four_threads_have_no_bubbles():
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    spawn_spinners(core, 4, iterations=100)
    sim.run()
    assert core.stats.slots_bubble <= 4  # only edge effects at start/end
