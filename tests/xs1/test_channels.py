"""Channel-communication tests over the loopback fabric."""

import pytest

from repro.xs1 import CT_END, TrapError, assemble


class TestIsaChannels:
    def test_word_transfer_between_threads(self, sim, core):
        """Two threads on one core exchange a word through chanends."""
        producer = assemble("""
            getr r0, 2              # our chanend
            ldc r1, 0x100
            stw r0, r1, 0           # publish our id at 0x100
        wait_peer:
            ldw r2, r1, 1           # peer id written at 0x104
            bf r2, wait_peer
            setd r0, r2
            ldc r3, 0xBEEF
            out r0, r3
            freet
        """)
        consumer = assemble("""
            getr r0, 2
            ldc r1, 0x100
            stw r0, r1, 1           # publish our id at 0x104
        wait_peer:
            ldw r2, r1, 0
            bf r2, wait_peer
            setd r0, r2
            in r4, r0
            ldc r5, 0x200
            stw r4, r5, 0           # store result at 0x200
            freet
        """)
        core.spawn(producer)
        core.spawn(consumer)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x200) == 0xBEEF

    def test_in_blocks_until_data(self, sim, core):
        """A lone receiver pauses rather than spinning."""
        receiver = core.spawn(assemble("""
            getr r0, 2
            in r1, r0
            freet
        """))
        sim.run()
        assert not receiver.halted
        assert receiver.state.value == "paused"

    def test_control_token_roundtrip(self, sim, core):
        program = assemble("""
            getr r0, 2
            getr r1, 2
            # extract addresses: send r0 -> r1 and check END token
            setd r0, r1
            setd r1, r0
            outct r0, 1            # CT_END
            chkct r1, 1
            ldc r2, 1
            ldc r3, 0x80
            stw r2, r3, 0
            freet
        """)
        core.spawn(program)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x80) == 1

    def test_chkct_wrong_token_traps(self, sim, core):
        program = assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            ldc r2, 42
            outt r0, r2            # data token, not control
            chkct r1, 1
            freet
        """)
        core.spawn(program)
        with pytest.raises(TrapError, match="chkct"):
            sim.run()

    def test_token_transfer(self, sim, core):
        program = assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            ldc r2, 0x5A
            outt r0, r2
            intt r2, r1
            ldc r3, 0x90
            stw r2, r3, 0
            freet
        """)
        core.spawn(program)
        sim.run()
        assert core.memory.load_word(0x90) == 0x5A

    def test_send_before_setd_raises(self, sim, core):
        core.spawn(assemble("""
            getr r0, 2
            ldc r1, 7
            out r0, r1
            freet
        """))
        with pytest.raises(Exception, match="setd"):
            sim.run()

    def test_out_backpressure_blocks_sender(self, sim, core):
        """Filling the tx+rx buffers with no receiver pauses the sender."""
        sender = core.spawn(assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            ldc r2, 20
        loop:
            out r0, r2              # 4 tokens per word; nobody drains r1
            subi r2, r2, 1
            bt r2, loop
            freet
        """))
        sim.run()
        assert not sender.halted
        assert sender.pause_reason is not None and "out" in sender.pause_reason

    def test_cross_core_transfer_on_shared_fabric(self, sim, core, make_core):
        """Loopback fabric delivers between chanends of different cores."""
        other = make_core()
        tx = core.allocate_chanend()
        rx = other.allocate_chanend()
        tx.set_dest(rx.address)

        sender = core.spawn(assemble("""
            ldc r1, 0xCAFE
            out r0, r1
            freet
        """), regs={"r0": tx.address.encode()})
        receiver = other.spawn(assemble("""
            in r1, r0
            ldc r2, 0x100
            stw r1, r2, 0
            freet
        """), regs={"r0": rx.address.encode()})
        sim.run()
        assert sender.halted and receiver.halted
        assert other.memory.load_word(0x100) == 0xCAFE


class TestLocksAndTimers:
    def test_lock_mutual_exclusion(self, sim, core):
        """Two threads increment a shared counter under a lock."""
        program = assemble("""
            # r0 = lock id (preloaded), r1 = iterations
            ldc r1, 50
        loop:
            in r2, r0               # acquire
            ldc r3, 0x500
            ldw r4, r3, 0
            addi r4, r4, 1
            stw r4, r3, 0
            out r0, r4              # release (value ignored for locks)
            subi r1, r1, 1
            bt r1, loop
            freet
        """)
        lock_id = core.allocate_resource(3)
        core.spawn(program, regs={"r0": lock_id})
        core.spawn(program, regs={"r0": lock_id})
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x500) == 100

    def test_timer_read_monotonic(self, sim, core):
        thread = core.spawn(assemble("""
            getr r0, 1
            in r1, r0
            ldc r3, 200
        spin:
            subi r3, r3, 1
            bt r3, spin
            in r2, r0
            freet
        """))
        sim.run()
        assert thread.regs.read(2) > thread.regs.read(1)

    def test_timer_reads_reference_clock(self, sim, core):
        """Timer ticks at 100 MHz regardless of core frequency."""
        thread = core.spawn(assemble("""
            getr r0, 1
            in r1, r0
            freet
        """))
        sim.run()
        # getr at cycle c, in at c+4: elapsed sim time ~8 cycles * 2ns = 16ns
        # -> 1 reference tick (10 ns each).
        assert thread.regs.read(1) <= 2

    def test_release_unheld_lock_raises(self, sim, core):
        lock_id = core.allocate_resource(3)
        core.spawn(assemble("out r0, r1\nfreet"), regs={"r0": lock_id})
        with pytest.raises(Exception, match="held by"):
            sim.run()


class TestResourceLifecycle:
    def test_getr_returns_distinct_chanends(self, sim, core):
        thread = core.spawn(assemble("""
            getr r0, 2
            getr r1, 2
            freet
        """))
        sim.run()
        assert thread.regs.read(0) != thread.regs.read(1)
        assert thread.regs.read(0) & 0xFF == 2

    def test_freer_allows_reallocation(self, sim, core):
        thread = core.spawn(assemble("""
            getr r0, 2
            freer r0
            getr r1, 2
            freet
        """))
        sim.run()
        assert thread.regs.read(0) == thread.regs.read(1)

    def test_chanend_exhaustion(self, sim, core):
        n = core.config.num_chanends
        source = "\n".join(["getr r0, 2"] * (n + 1)) + "\nfreet"
        core.spawn(assemble(source))
        with pytest.raises(Exception, match="out of channel ends"):
            sim.run()

    def test_unallocated_chanend_use_traps(self, sim, core):
        unused = core.chanend(5)
        core.spawn(assemble("out r0, r1\nfreet"),
                   regs={"r0": unused.address.encode()})
        with pytest.raises(TrapError, match="not allocated"):
            sim.run()
