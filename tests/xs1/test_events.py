"""Tests for the XS1 event system (setv/eeu/edu/clre/waiteu/tsetafter)."""

import pytest

from repro.sim import Simulator, to_us, us
from repro.xs1 import LoopbackFabric, TrapError, XCore, assemble


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def core(sim):
    return XCore(sim, node_id=0, fabric=LoopbackFabric(sim))


class TestChanendEvents:
    def test_event_dispatches_to_vector(self, sim, core):
        """A thread waits on a chanend event; a peer's token wakes it at
        the vector."""
        waiter = assemble("""
            getr r0, 2
            ldc r1, 0x100
            stw r0, r1, 0          # publish chanend id
            setv r0, got_data
            eeu r0
            waiteu
            freet                  # never reached directly
        got_data:
            intt r2, r0
            ldc r3, 0x200
            stw r2, r3, 0
            freet
        """)
        sender = assemble("""
            getr r0, 2
            ldc r1, 0x100
        wait:
            ldw r2, r1, 0
            bf r2, wait
            setd r0, r2
            ldc r3, 0x7E
            outt r0, r3
            freet
        """)
        core.spawn(waiter)
        core.spawn(sender)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x200) == 0x7E

    def test_ready_event_fires_immediately(self, sim, core):
        """If data is already buffered, waiteu dispatches without pausing."""
        program = assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            ldc r2, 0x55
            outt r0, r2            # data sits in r1's buffer
            setv r1, handler
            eeu r1
            ldc r3, 3000
        spin:                      # let the token actually arrive
            subi r3, r3, 1
            bt r3, spin
            waiteu
            freet
        handler:
            intt r4, r1
            ldc r5, 0x300
            stw r4, r5, 0
            freet
        """)
        core.spawn(program)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x300) == 0x55

    def test_select_between_two_channels(self, sim, core):
        """The classic select: two chanends, distinct vectors."""
        selector = assemble("""
            getr r0, 2             # channel A
            getr r1, 2             # channel B
            ldc r2, 0x100
            stw r0, r2, 0
            stw r1, r2, 1
            setv r0, handle_a
            setv r1, handle_b
            eeu r0
            eeu r1
            waiteu
            freet
        handle_a:
            intt r3, r0
            ldc r4, 0x200
            stw r3, r4, 0
            freet
        handle_b:
            intt r3, r1
            ldc r4, 0x204
            stw r3, r4, 0
            freet
        """)
        sender_b = assemble("""
            getr r0, 2
            ldc r1, 0x100
        wait:
            ldw r2, r1, 1          # channel B's id
            bf r2, wait
            setd r0, r2
            ldc r3, 0xBB
            outt r0, r3
            freet
        """)
        core.spawn(selector)
        core.spawn(sender_b)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x204) == 0xBB   # B's handler ran
        assert core.memory.load_word(0x200) == 0      # A's did not

    def test_event_without_vector_traps(self, sim, core):
        program = assemble("""
            getr r0, 2
            getr r1, 2
            setd r0, r1
            eeu r1                 # events enabled, but no setv
            ldc r2, 1
            outt r0, r2
            waiteu
            freet
        """)
        core.spawn(program)
        with pytest.raises(TrapError, match="no vector"):
            sim.run()

    def test_edu_disables(self, sim, core):
        """After edu, the waiter is not dispatched by arriving data."""
        waiter = core.spawn(assemble("""
            getr r0, 2
            ldc r1, 0x100
            stw r0, r1, 0
            setv r0, handler
            eeu r0
            edu r0
            waiteu                 # bare wait: parks forever
            freet
        handler:
            freet
        """))
        sender = assemble("""
            getr r0, 2
            ldc r1, 0x100
        wait:
            ldw r2, r1, 0
            bf r2, wait
            setd r0, r2
            ldc r3, 9
            outt r0, r3
            freet
        """)
        core.spawn(sender)
        sim.run()
        assert not waiter.halted
        assert waiter.pause_reason == "waiteu"

    def test_clre_clears_all(self, sim, core):
        thread = core.spawn(assemble("""
            getr r0, 2
            getr r1, 2
            setv r0, handler
            setv r1, handler
            eeu r0
            eeu r1
            clre
            freet
        handler:
            freet
        """))
        sim.run()
        assert thread.event_resources == []


class TestTimerEvents:
    def test_timer_event_fires_at_compare_time(self, sim, core):
        """Arm a timer 100 us ahead; the event wakes the thread then."""
        program = assemble("""
            getr r0, 1             # timer
            in r1, r0              # now (ref ticks)
            ldc r2, 10000          # +10000 ticks = 100 us at 100 MHz
            add r1, r1, r2
            tsetafter r0, r1
            setv r0, fired
            eeu r0
            waiteu
            freet
        fired:
            gettime r3
            ldc r4, 0x400
            stw r3, r4, 0
            ldc r5, 1
            stw r5, r4, 1
            freet
        """)
        core.spawn(program)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x404) == 1
        assert to_us(sim.now) == pytest.approx(100, rel=0.05)

    def test_elapsed_compare_fires_immediately(self, sim, core):
        program = assemble("""
            getr r0, 1
            ldc r1, 0              # already in the past
            tsetafter r0, r1
            setv r0, fired
            eeu r0
            waiteu
            freet
        fired:
            ldc r2, 1
            ldc r3, 0x500
            stw r2, r3, 0
            freet
        """)
        core.spawn(program)
        sim.run_for(us(10))
        assert core.all_halted
        assert core.memory.load_word(0x500) == 1

    def test_periodic_ticker(self, sim, core):
        """A timer-event loop: tick N times at a fixed period."""
        program = assemble("""
            .equ PERIOD, 2000      # 20 us
            getr r0, 1
            in r1, r0
            ldc r5, 0              # tick count
            ldc r6, 5              # ticks wanted
        arm:
            ldc r2, PERIOD
            add r1, r1, r2
            tsetafter r0, r1
            setv r0, tick
            eeu r0
            waiteu
            freet
        tick:
            addi r5, r5, 1
            eq r7, r5, r6
            bf r7, arm
            ldc r4, 0x600
            stw r5, r4, 0
            freet
        """)
        core.spawn(program)
        sim.run()
        assert core.all_halted
        assert core.memory.load_word(0x600) == 5
        assert to_us(sim.now) == pytest.approx(100, rel=0.1)

    def test_events_on_lock_rejected(self, sim, core):
        core.spawn(assemble("""
            getr r0, 3             # lock
            eeu r0
            freet
        """))
        with pytest.raises(TrapError, match="does not support events"):
            sim.run()
