"""Unit tests for tokens, words, and route headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.header import CHANEND_TYPE, ChanendAddress
from repro.network.token import (
    CT_END,
    HEADER_TOKENS,
    Token,
    control_token,
    data_token,
    tokens_to_word,
    word_to_tokens,
)

u32s = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestToken:
    def test_data_token_masks_low_byte(self):
        assert data_token(0x1FF).value == 0xFF

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Token(256)
        with pytest.raises(ValueError):
            Token(-1)

    def test_end_detection(self):
        assert control_token(CT_END).is_end
        assert not data_token(CT_END).is_end
        assert not control_token(0x03).is_end

    def test_str_forms(self):
        assert str(data_token(0x2A)) == "DT:2a"
        assert str(control_token(1)) == "CT:01"

    @given(u32s)
    def test_word_roundtrip(self, word):
        assert tokens_to_word(word_to_tokens(word)) == word

    def test_word_is_msb_first(self):
        tokens = word_to_tokens(0x01020304)
        assert [t.value for t in tokens] == [1, 2, 3, 4]

    def test_tokens_to_word_validates(self):
        with pytest.raises(ValueError):
            tokens_to_word([data_token(1)] * 3)
        with pytest.raises(ValueError):
            tokens_to_word([data_token(1)] * 3 + [control_token(1)])


class TestChanendAddress:
    def test_encode_layout(self):
        address = ChanendAddress(node=0x1234, index=0x56)
        assert address.encode() == 0x1234_5602

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFF))
    def test_encode_decode_roundtrip(self, node, index):
        address = ChanendAddress(node, index)
        assert ChanendAddress.decode(address.encode()) == address

    def test_decode_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            ChanendAddress.decode(0x1234_5601)   # type 1 = timer

    def test_range_validation(self):
        with pytest.raises(ValueError):
            ChanendAddress(node=0x1_0000, index=0)
        with pytest.raises(ValueError):
            ChanendAddress(node=0, index=256)

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFF))
    def test_header_roundtrip(self, node, index):
        address = ChanendAddress(node, index)
        tokens = address.header_tokens()
        assert len(tokens) == HEADER_TOKENS
        assert ChanendAddress.from_header(tokens) == address

    def test_from_header_validates_length(self):
        with pytest.raises(ValueError):
            ChanendAddress.from_header([data_token(1)])

    def test_str(self):
        assert str(ChanendAddress(3, 7)) == "n3:c7"

    def test_type_constant(self):
        assert CHANEND_TYPE == 2
