"""Unit tests for half-links, credits, and direction groups."""

import pytest

from repro.network.link import DirectionGroup, HalfLink
from repro.network.params import (
    LINK_BOARD_VERTICAL,
    LINK_ON_CHIP,
    SWITCH_BUFFER_TOKENS,
    LinkSpec,
    symbol_timing_cycles,
)
from repro.network.token import data_token
from repro.sim import Simulator


class FakePort:
    """Minimal InputPort stand-in."""

    def __init__(self):
        self.tokens = []
        self.pumps = 0
        self.granted = []

    def accept(self, token):
        self.tokens.append(token)

    def pump(self):
        self.pumps += 1

    def granted_link(self, link):
        self.granted.append(link)


def make_link(sim, spec=LINK_ON_CHIP):
    link = HalfLink(sim, spec, "test-link")
    link.sink = FakePort()
    return link


class TestTokenTiming:
    def test_symbol_timing_formula(self):
        """Ts=2, Tt=1 -> 8 cycles (500 Mbit/s at 500 MHz, paper SecV.C)."""
        assert symbol_timing_cycles(2, 1) == 8

    def test_invalid_symbol_timing(self):
        with pytest.raises(ValueError):
            symbol_timing_cycles(0, 1)
        with pytest.raises(ValueError):
            symbol_timing_cycles(2, -1)

    def test_token_time_from_bitrate(self):
        assert LINK_ON_CHIP.token_time_ps() == 16_000          # 500 Mbit/s
        assert LINK_ON_CHIP.token_time_ps(True) == 32_000      # 250 Mbit/s
        assert LINK_BOARD_VERTICAL.token_time_ps() == 64_000   # 125 Mbit/s

    def test_energy_per_bit_derivation(self):
        spec = LinkSpec("x", 100_000_000, 50_000_000, 5.0)
        assert spec.energy_per_bit_pj == pytest.approx(100.0)

    def test_delivery_takes_token_time(self):
        sim = Simulator()
        link = make_link(sim)
        link.send(data_token(0xAA))
        sim.run()
        assert sim.now == 16_000
        assert link.sink.tokens[0].value == 0xAA


class TestCredits:
    def test_initial_credits_match_buffer(self):
        assert make_link(Simulator()).credits == SWITCH_BUFFER_TOKENS

    def test_send_consumes_credit(self):
        sim = Simulator()
        link = make_link(sim)
        link.send(data_token(1))
        assert link.credits == SWITCH_BUFFER_TOKENS - 1

    def test_cannot_send_without_credit(self):
        sim = Simulator()
        link = make_link(sim)
        for i in range(SWITCH_BUFFER_TOKENS):
            link.send(data_token(i))
            sim.run()
        assert not link.can_send()
        with pytest.raises(AssertionError):
            link.send(data_token(99))

    def test_credit_return_reenables(self):
        sim = Simulator()
        link = make_link(sim)
        for i in range(SWITCH_BUFFER_TOKENS):
            link.send(data_token(i))
            sim.run()
        link.return_credit()
        assert link.can_send()

    def test_credit_return_pumps_holder(self):
        sim = Simulator()
        link = make_link(sim)
        holder = FakePort()
        link.seize(holder)
        link.return_credit()
        assert holder.pumps == 1

    def test_busy_while_serializing(self):
        sim = Simulator()
        link = make_link(sim)
        link.send(data_token(1))
        assert link.busy
        sim.run()
        assert not link.busy


class TestAllocation:
    def test_seize_release(self):
        link = make_link(Simulator())
        port = FakePort()
        assert link.free
        link.seize(port)
        assert not link.free
        link.release(port)
        assert link.free

    def test_double_seize_asserts(self):
        link = make_link(Simulator())
        link.seize(FakePort())
        with pytest.raises(AssertionError):
            link.seize(FakePort())

    def test_stats_accumulate(self):
        sim = Simulator()
        link = make_link(sim)
        for i in range(3):
            link.send(data_token(i))
            sim.run()
        assert link.tokens_carried == 3
        assert link.bits_carried == 24
        assert link.utilization(sim.now) == pytest.approx(1.0)

    def test_utilization_of_idle_span(self):
        sim = Simulator()
        link = make_link(sim)
        link.send(data_token(0))
        sim.run()
        sim.run_until(sim.now * 4)
        assert link.utilization(sim.now) == pytest.approx(0.25)


class TestDirectionGroup:
    def test_allocates_next_unused_link(self):
        """Paper SecV.B: 'a new communication will use the next unused link'."""
        sim = Simulator()
        group = DirectionGroup("I")
        links = [make_link(sim) for _ in range(4)]
        for link in links:
            group.add(link)
        ports = [FakePort() for _ in range(4)]
        granted = [group.try_allocate(p) for p in ports]
        assert granted == links  # in order, all distinct

    def test_exhausted_group_queues(self):
        sim = Simulator()
        group = DirectionGroup("E")
        group.add(make_link(sim))
        first, second = FakePort(), FakePort()
        assert group.try_allocate(first) is not None
        assert group.try_allocate(second) is None
        assert second in group.all_waiters

    def test_release_grants_to_waiter(self):
        sim = Simulator()
        group = DirectionGroup("E")
        link = make_link(sim)
        group.add(link)
        first, second = FakePort(), FakePort()
        group.try_allocate(first)
        group.try_allocate(second)
        group.release(link, first)
        assert link.holder is second
        assert second.granted == [link]

    def test_no_duplicate_waiters(self):
        sim = Simulator()
        group = DirectionGroup("E")
        group.add(make_link(sim))
        group.try_allocate(FakePort())
        waiter = FakePort()
        group.try_allocate(waiter)
        group.try_allocate(waiter)
        assert group.all_waiters.count(waiter) == 1

    def test_lane_reservation(self):
        """Aggregated groups keep their last link for exit crossings."""
        sim = Simulator()
        group = DirectionGroup("I")
        links = [make_link(sim) for _ in range(4)]
        for link in links:
            group.add(link)
        entries = [FakePort() for _ in range(4)]
        granted = [group.try_allocate(p, lane="entry") for p in entries]
        assert granted[:3] == links[:3]
        assert granted[3] is None          # the escape link is off-limits
        exit_port = FakePort()
        assert group.try_allocate(exit_port, lane="exit") is links[3]

    def test_exit_release_goes_to_exit_waiter(self):
        sim = Simulator()
        group = DirectionGroup("I")
        links = [make_link(sim) for _ in range(4)]
        for link in links:
            group.add(link)
        holder = FakePort()
        group.try_allocate(holder, lane="exit")
        entry_waiter, exit_waiter = FakePort(), FakePort()
        for port in (FakePort(), FakePort(), FakePort()):
            group.try_allocate(port, lane="entry")
        group.try_allocate(entry_waiter, lane="entry")
        group.try_allocate(exit_waiter, lane="exit")
        group.release(links[3], holder)
        assert links[3].holder is exit_waiter

    def test_unknown_lane_rejected(self):
        group = DirectionGroup("I")
        group.add(make_link(Simulator()))
        group.add(make_link(Simulator()))
        with pytest.raises(ValueError, match="lane"):
            group.try_allocate(FakePort(), lane="bogus")
