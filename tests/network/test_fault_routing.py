"""Tests for link failures and software routing tables (§IV-B / §V.A)."""

import pytest

from repro.network.routing import Layer, RoutingError
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.sim import Simulator
from repro.xs1 import BehavioralThread, CheckCt, RecvWord, SendCt, SendWord, XCore


def build():
    sim = Simulator()
    topo = SwallowTopology(sim)
    return sim, topo


def transfer(sim, topo, src, dst, value=0xABCD):
    core_a = XCore(sim, src, topo.fabric)
    core_b = XCore(sim, dst, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)
    got = []

    def sender():
        yield SendWord(tx, value)
        yield SendCt(tx, CT_END)

    def receiver():
        got.append((yield RecvWord(rx)))
        yield CheckCt(rx, CT_END)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    return got


class TestFailLink:
    def test_fail_marks_both_halves(self):
        sim, topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        record = topo.fabric.fail_link(a, b)
        assert record.forward.failed and record.backward.failed
        assert not record.healthy

    def test_unknown_pair_rejected(self):
        sim, topo = build()
        with pytest.raises(RoutingError, match="no link"):
            topo.fabric.fail_link(0, 15)   # not adjacent

    def test_index_out_of_range(self):
        sim, topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        with pytest.raises(RoutingError, match="only 1"):
            topo.fabric.fail_link(a, b, index=1)

    def test_failed_internal_link_excluded_from_aggregation(self):
        sim, topo = build()
        package = topo.packages[(0, 0)]
        topo.fabric.fail_link(package.vertical_node, package.horizontal_node)
        # The remaining three internal links still carry traffic.
        got = transfer(sim, topo, package.vertical_node, package.horizontal_node)
        assert got == [0xABCD]


class TestTableRouting:
    def test_tables_match_dimension_order_when_healthy(self):
        """On a healthy lattice, table routes still deliver everything."""
        sim, topo = build()
        topo.fabric.use_table_routing()
        src = topo.node_at(0, 0, Layer.HORIZONTAL)
        dst = topo.node_at(3, 1, Layer.VERTICAL)
        assert transfer(sim, topo, src, dst) == [0xABCD]

    def test_reroute_around_failed_vertical_link(self):
        """Kill the only direct N-S link on a column; table routing finds
        the detour; coordinate routing would strand the message."""
        sim, topo = build()
        a = topo.node_at(2, 0, Layer.VERTICAL)
        b = topo.node_at(2, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b)
        topo.fabric.use_table_routing()
        assert transfer(sim, topo, a, b) == [0xABCD]

    def test_unreachable_destination_raises(self):
        """Sever every link to a node: routing reports it, not a hang."""
        sim, topo = build()
        package = topo.packages[(0, 0)]
        v, h = package.vertical_node, package.horizontal_node
        for index in range(4):
            topo.fabric.fail_link(v, h, index=index)
        south = topo.node_at(0, 1, Layer.VERTICAL)
        topo.fabric.fail_link(v, south)
        topo.fabric.use_table_routing()
        with pytest.raises(RoutingError, match="no healthy route"):
            transfer(sim, topo, topo.node_at(1, 0, Layer.VERTICAL), v)

    def test_tables_recompute_on_later_failures(self):
        sim, topo = build()
        topo.fabric.use_table_routing()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        before = dict(topo.fabric.routing_tables[a])
        topo.fabric.fail_link(a, b)
        after = topo.fabric.routing_tables[a]
        assert before[b] != after[b]   # detour direction differs
        assert transfer(sim, topo, a, b) == [0xABCD]

    def test_return_to_coordinate_routing(self):
        sim, topo = build()
        topo.fabric.use_table_routing()
        topo.fabric.use_coordinate_routing()
        assert topo.fabric.routing_tables is None
        src = topo.node_at(0, 0, Layer.VERTICAL)
        dst = topo.node_at(1, 1, Layer.HORIZONTAL)
        assert transfer(sim, topo, src, dst) == [0xABCD]

    def test_full_traffic_on_degraded_lattice(self):
        """Bit-complement still completes with a failed board link."""
        from repro.network.traffic import TrafficRun, bit_complement_pairs

        sim, topo = build()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b)
        topo.fabric.use_table_routing()
        run = TrafficRun(topo, bit_complement_pairs(topo), packets=2).start()
        sim.run()
        assert run.stats.complete


class TestAutoRecompute:
    """The fabric heals its own tables when faults land in table mode."""

    def test_node_kill_recomputes_tables(self):
        sim, topo = build()
        topo.fabric.use_table_routing()
        victim = topo.node_at(1, 0, Layer.VERTICAL)
        topo.fabric.fail_node_links(victim)
        # Survivors detour around the dead switch without manual help.
        src = topo.node_at(0, 0, Layer.VERTICAL)
        dst = topo.node_at(2, 1, Layer.VERTICAL)
        assert transfer(sim, topo, src, dst) == [0xABCD]

    def test_forced_failure_also_recomputes(self):
        sim, topo = build()
        topo.fabric.use_table_routing()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        before = dict(topo.fabric.routing_tables[a])
        topo.fabric.fail_link(a, b, force=True)
        assert topo.fabric.routing_tables[a][b] != before[b]

    def test_coordinate_mode_does_not_create_tables(self):
        """Without table routing, failures never conjure tables — the
        monitor in repro.faults owns that switch-over decision."""
        sim, topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b)
        assert topo.fabric.routing_tables is None

    def test_listeners_notified_for_every_record(self):
        sim, topo = build()
        seen = []
        topo.fabric.fault_listeners.append(seen.append)
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        record = topo.fabric.fail_link(a, b)
        assert seen == [record]
        victim = topo.node_at(3, 0, Layer.VERTICAL)
        records = topo.fabric.fail_node_links(victim)
        assert seen[1:] == records
