"""Tests for the ASCII topology renderer."""

from repro.network.routing import Layer
from repro.network.topology import SwallowTopology
from repro.network.visualize import render_summary, render_topology
from repro.sim import Simulator


def build(sx=1, sy=1):
    return SwallowTopology(Simulator(), slices_x=sx, slices_y=sy)


class TestRenderTopology:
    def test_single_slice_draws_all_packages(self):
        text = render_topology(build())
        for node in range(0, 16, 2):
            assert f"{node:>3}/{node + 1:<3}" in text

    def test_on_board_links_drawn(self):
        text = render_topology(build())
        assert "--" in text   # horizontal links
        assert "|" in text    # vertical links
        assert "‖" not in text.splitlines()[0]  # no FFC in one slice

    def test_interslice_links_marked_ffc(self):
        text = render_topology(build(2, 2))
        assert "==" in text   # horizontal FFC
        assert "‖" in text    # vertical FFC

    def test_failed_link_marked(self):
        topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b)
        assert "x" in render_topology(topo)

    def test_legend_present(self):
        assert "failed" in render_topology(build())


class TestRenderSummary:
    def test_counts(self):
        summary = render_summary(build())
        assert "16 cores" in summary
        assert "8 packages" in summary
        assert "32 on-chip" in summary

    def test_failed_links_reported(self):
        topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b)
        assert "1 failed link pair" in render_summary(topo)

    def test_cli_topology(self, capsys):
        from repro.__main__ import main

        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "16 cores" in out
