"""Structural tests for packages, slices and grids (Figs. 5-7)."""

import pytest

from repro.network.params import (
    LINK_BOARD_HORIZONTAL,
    LINK_BOARD_VERTICAL,
    LINK_OFFBOARD_FFC,
    LINK_ON_CHIP,
)
from repro.network.routing import Layer
from repro.network.topology import (
    CORES_PER_SLICE,
    SLICE_EDGE_PORTS,
    SLICE_OFFBOARD_LINKS,
    SwallowTopology,
)
from repro.sim import Simulator


def build(slices_x=1, slices_y=1):
    return SwallowTopology(Simulator(), slices_x=slices_x, slices_y=slices_y)


class TestSlice:
    def test_sixteen_cores_per_slice(self):
        assert build().num_nodes == 16
        assert CORES_PER_SLICE == 16

    def test_eight_packages(self):
        assert len(build().packages) == 8

    def test_paper_offboard_link_count(self):
        """Ten off-board links after two Ethernet reservations (paper)."""
        assert SLICE_EDGE_PORTS == 12
        assert SLICE_OFFBOARD_LINKS == 10

    def test_each_package_has_one_node_per_layer(self):
        topo = build()
        for package in topo.packages.values():
            assert topo.coord_of(package.vertical_node).layer is Layer.VERTICAL
            assert topo.coord_of(package.horizontal_node).layer is Layer.HORIZONTAL

    def test_internal_links_are_on_chip_class_and_quadruple(self):
        topo = build()
        graph = topo.graph()
        package = topo.packages[(0, 0)]
        edges = graph.get_edge_data(package.vertical_node, package.horizontal_node)
        assert len(edges) == 4
        assert all(e["spec"] is LINK_ON_CHIP for e in edges.values())

    def test_board_links_use_board_classes(self):
        topo = build()
        graph = topo.graph()
        specs = {data["spec"].name for _, _, data in graph.edges(data=True)}
        assert LINK_BOARD_VERTICAL.name in specs
        assert LINK_BOARD_HORIZONTAL.name in specs
        assert LINK_OFFBOARD_FFC.name not in specs  # single slice: no cables

    def test_single_slice_link_counts(self):
        """8 packages x 4 internal + 4 vertical + 6 horizontal PCB links."""
        graph = build().graph()
        by_class = {}
        for _, _, data in graph.edges(data=True):
            by_class[data["spec"].name] = by_class.get(data["spec"].name, 0) + 1
        assert by_class[LINK_ON_CHIP.name] == 32
        assert by_class[LINK_BOARD_VERTICAL.name] == 4   # 4 columns x 1 gap
        assert by_class[LINK_BOARD_HORIZONTAL.name] == 6  # 2 rows x 3 gaps


class TestGrid:
    def test_grid_core_count(self):
        assert build(2, 2).num_nodes == 64
        assert build(1, 8).num_nodes == 128  # the Fig. 1 stack

    def test_480_core_system_size(self):
        """The largest demonstrated machine: 30 slices = 480 cores."""
        topo = build(5, 6)
        assert topo.num_slices == 30
        assert topo.num_nodes == 480

    def test_interslice_links_are_ffc(self):
        topo = build(2, 1)
        graph = topo.graph()
        ffc = [
            (u, v) for u, v, d in graph.edges(data=True)
            if d["spec"] is LINK_OFFBOARD_FFC
        ]
        # 2 rows of packages cross the slice boundary on the horizontal layer.
        assert len(ffc) == 2
        for u, v in ffc:
            assert topo.slice_of(u) != topo.slice_of(v)

    def test_vertical_interslice_links(self):
        topo = build(1, 2)
        graph = topo.graph()
        ffc = [
            (u, v) for u, v, d in graph.edges(data=True)
            if d["spec"] is LINK_OFFBOARD_FFC
        ]
        assert len(ffc) == 4  # 4 columns cross the boundary on the V layer

    def test_slice_membership(self):
        topo = build(2, 2)
        for sx in range(2):
            for sy in range(2):
                assert len(topo.nodes_in_slice(sx, sy)) == 16

    def test_graph_is_connected(self):
        import networkx as nx

        assert nx.is_connected(build(2, 2).graph())

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            build(0, 1)


class TestNodeLookup:
    def test_node_at_roundtrip(self):
        topo = build()
        for node in topo.node_ids():
            coord = topo.coord_of(node)
            assert topo.node_at(coord.x, coord.y, coord.layer) == node

    def test_node_ids_contiguous(self):
        topo = build()
        assert topo.node_ids() == list(range(16))
