"""Fixtures: cores attached to a real switched Swallow topology."""

import pytest

from repro.network.topology import SwallowTopology
from repro.sim import Simulator
from repro.xs1 import XCore


class NetworkRig:
    """A topology plus lazily created cores, for network integration tests."""

    def __init__(self, slices_x=1, slices_y=1, **topo_kwargs):
        self.sim = Simulator()
        self.topology = SwallowTopology(
            self.sim, slices_x=slices_x, slices_y=slices_y, **topo_kwargs
        )
        self.fabric = self.topology.fabric
        self.cores = {}

    def core(self, node_id) -> XCore:
        if node_id not in self.cores:
            self.cores[node_id] = XCore(self.sim, node_id, self.fabric)
        return self.cores[node_id]

    def channel(self, src_node, dst_node):
        """An allocated, destination-set chanend pair between two nodes."""
        tx = self.core(src_node).allocate_chanend()
        rx = self.core(dst_node).allocate_chanend()
        tx.set_dest(rx.address)
        rx.set_dest(tx.address)
        return tx, rx


@pytest.fixture
def rig():
    return NetworkRig()


@pytest.fixture
def make_rig():
    return NetworkRig
