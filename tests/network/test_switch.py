"""Unit tests for switch internals: header handling, route lifecycle,
lane classification."""

import pytest

from repro.network.fabric import SwallowFabric
from repro.network.header import ChanendAddress
from repro.network.params import LINK_BOARD_VERTICAL, LINK_ON_CHIP
from repro.network.routing import Direction, Layer, NodeCoord, RoutingError
from repro.network.token import CT_END, control_token, data_token
from repro.sim import Simulator
from repro.xs1 import XCore


def two_node_fabric(internal_links=4):
    """A single package: V node 0, H node 1."""
    sim = Simulator()
    fabric = SwallowFabric(sim)
    fabric.add_node(0, NodeCoord(0, 0, Layer.VERTICAL))
    fabric.add_node(1, NodeCoord(0, 0, Layer.HORIZONTAL))
    fabric.connect(0, Direction.INTERNAL, 1, Direction.INTERNAL,
                   LINK_ON_CHIP, count=internal_links)
    return sim, fabric


class TestHeaderHandling:
    def test_chanend_port_synthesizes_header(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        core_b = XCore(sim, 1, fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        tx.push_tx([data_token(0x42), control_token(CT_END)])
        sim.run()
        # Payload arrived; the 3 header tokens were consumed by the
        # destination switch, not delivered to the chanend.
        assert [t.value for t in rx.rx] == [0x42, CT_END]

    def test_send_without_dest_raises(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        tx = core_a.allocate_chanend()
        tx.dest = None
        tx.tx.append(data_token(1))
        fabric.notify_tx(tx)
        with pytest.raises(RoutingError, match="setd"):
            sim.run()

    def test_route_to_unknown_node_raises(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        tx = core_a.allocate_chanend()
        tx.set_dest(ChanendAddress(node=77, index=0))
        tx.push_tx([data_token(1)])
        with pytest.raises(RoutingError, match="unknown destination"):
            sim.run()

    def test_route_to_missing_chanend_raises(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        XCore(sim, 1, fabric)
        tx = core_a.allocate_chanend()
        tx.set_dest(ChanendAddress(node=1, index=200))
        tx.push_tx([data_token(1)])
        with pytest.raises(RoutingError, match="no chanend"):
            sim.run()


class TestRouteLifecycle:
    def test_routes_counted(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        core_b = XCore(sim, 1, fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        tx.push_tx([data_token(9)])
        sim.run()
        assert fabric.total_routes_open >= 1   # no END: circuit held
        tx.push_tx([control_token(CT_END)])
        sim.run()
        assert fabric.total_routes_open == 0

    def test_switch_repr_and_stats(self):
        sim, fabric = two_node_fabric()
        switch = fabric.switches[0]
        assert "sw0" in repr(switch)
        assert switch.routes_open == 0
        assert switch.routes_closed == 0

    def test_no_links_in_needed_direction_raises(self):
        """A node with no SOUTH links cannot route southward."""
        sim = Simulator()
        fabric = SwallowFabric(sim)
        fabric.add_node(0, NodeCoord(0, 0, Layer.VERTICAL))
        fabric.add_node(1, NodeCoord(0, 5, Layer.VERTICAL))
        core_a = XCore(sim, 0, fabric)
        XCore(sim, 1, fabric)
        tx = core_a.allocate_chanend()
        tx.set_dest(ChanendAddress(node=1, index=0))
        tx.push_tx([data_token(1)])
        with pytest.raises(RoutingError, match="no S links"):
            sim.run()


class TestLaneClassification:
    def test_direct_lane_for_in_package_message(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        core_b = XCore(sim, 1, fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        port = fabric.switches[0].chanend_port(tx)
        lane = port._crossing_lane(Direction.INTERNAL, rx.address)
        assert lane == "direct"

    def test_compass_directions_use_any_lane(self):
        sim, fabric = two_node_fabric()
        core_a = XCore(sim, 0, fabric)
        tx = core_a.allocate_chanend()
        port = fabric.switches[0].chanend_port(tx)
        assert port._crossing_lane(Direction.SOUTH, ChanendAddress(1, 0)) == "any"

    def test_exit_lane_for_arriving_link_port(self):
        """A link-port crossing into the destination package is exit-class."""
        sim = Simulator()
        fabric = SwallowFabric(sim)
        fabric.add_node(0, NodeCoord(0, 0, Layer.VERTICAL))
        fabric.add_node(1, NodeCoord(0, 0, Layer.HORIZONTAL))
        fabric.add_node(2, NodeCoord(0, 1, Layer.VERTICAL))
        fabric.connect(0, Direction.INTERNAL, 1, Direction.INTERNAL,
                       LINK_ON_CHIP, count=4)
        fabric.connect(0, Direction.SOUTH, 2, Direction.NORTH, LINK_BOARD_VERTICAL)
        switch0 = fabric.switches[0]
        link_port = switch0.link_ports[-1]   # fed from node 2
        XCore(sim, 1, fabric)
        lane = link_port._crossing_lane(Direction.INTERNAL, ChanendAddress(1, 0))
        assert lane == "exit"
