"""Unit tests for dimension-order 2.5-D routing on the unwoven lattice."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.routing import (
    Direction,
    Layer,
    NodeCoord,
    RoutingError,
    horizontal_first_direction,
    layer_transitions,
    next_direction,
    route_hops,
)

V, H = Layer.VERTICAL, Layer.HORIZONTAL


def coord(x, y, layer):
    return NodeCoord(x, y, layer)


coords = st.builds(
    NodeCoord,
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.sampled_from([V, H]),
)


class TestNextDirection:
    def test_local_at_destination(self):
        assert next_direction(coord(2, 3, V), coord(2, 3, V)) is Direction.LOCAL

    def test_vertical_moves_first(self):
        assert next_direction(coord(0, 0, V), coord(5, 5, V)) is Direction.SOUTH
        assert next_direction(coord(0, 5, V), coord(5, 0, V)) is Direction.NORTH

    def test_crosses_to_vertical_layer_for_vertical_move(self):
        assert next_direction(coord(0, 0, H), coord(0, 5, H)) is Direction.INTERNAL

    def test_horizontal_after_vertical_done(self):
        assert next_direction(coord(0, 5, H), coord(3, 5, H)) is Direction.EAST
        assert next_direction(coord(3, 5, H), coord(0, 5, H)) is Direction.WEST

    def test_crosses_to_horizontal_layer_for_horizontal_move(self):
        assert next_direction(coord(0, 5, V), coord(3, 5, V)) is Direction.INTERNAL

    def test_final_layer_correction(self):
        assert next_direction(coord(2, 2, V), coord(2, 2, H)) is Direction.INTERNAL


class TestRouteHops:
    def test_same_node_empty_route(self):
        assert route_hops(coord(1, 1, V), coord(1, 1, V)) == []

    def test_package_sibling_single_internal_hop(self):
        assert route_hops(coord(1, 1, V), coord(1, 1, H)) == [Direction.INTERNAL]

    def test_vertical_only_route(self):
        hops = route_hops(coord(0, 0, V), coord(0, 3, V))
        assert hops == [Direction.SOUTH] * 3

    def test_paper_worst_case_two_layer_transitions(self):
        """Two horizontal-layer nodes with different vertical index (§V.A)."""
        hops = route_hops(coord(0, 0, H), coord(2, 2, H))
        assert hops[0] is Direction.INTERNAL           # H -> V
        assert hops[1:3] == [Direction.SOUTH] * 2      # vertical first
        assert hops[3] is Direction.INTERNAL           # V -> H
        assert hops[4:] == [Direction.EAST] * 2

    @given(coords, coords)
    def test_route_terminates_and_reaches_destination(self, src, dst):
        hops = route_hops(src, dst)
        # Replay the hops to confirm arrival.
        from repro.network.routing import _step

        current = src
        for hop in hops:
            current = _step(current, hop)
        assert current == dst

    @given(coords, coords)
    def test_at_most_two_layer_transitions(self, src, dst):
        assert layer_transitions(src, dst) <= 2

    @given(coords, coords)
    def test_route_length_is_manhattan_plus_transitions(self, src, dst):
        hops = route_hops(src, dst)
        manhattan = abs(src.x - dst.x) + abs(src.y - dst.y)
        assert len(hops) == manhattan + layer_transitions(src, dst)

    @given(coords, coords)
    def test_dimension_order_is_respected(self, src, dst):
        """Hops of one dimension are contiguous (true dimension order)."""
        hops = route_hops(src, dst)
        kinds = []
        for hop in hops:
            kind = "v" if hop in (Direction.NORTH, Direction.SOUTH) else (
                "h" if hop in (Direction.EAST, Direction.WEST) else None
            )
            if kind and (not kinds or kinds[-1] != kind):
                kinds.append(kind)
        assert len(kinds) <= 2, f"dimension interleaving in {hops}"

    @given(coords, coords)
    def test_vertical_first_except_h_to_v(self, src, dst):
        """Vertical precedes horizontal unless src is H-layer and dst V-layer."""
        hops = route_hops(src, dst)
        directions = [h for h in hops if h is not Direction.INTERNAL]
        has_v = any(h in (Direction.NORTH, Direction.SOUTH) for h in directions)
        has_h = any(h in (Direction.EAST, Direction.WEST) for h in directions)
        if has_v and has_h:
            vertical_first = directions[0] in (Direction.NORTH, Direction.SOUTH)
            expect_horizontal_first = (
                src.layer is Layer.HORIZONTAL and dst.layer is Layer.VERTICAL
            )
            assert vertical_first != expect_horizontal_first


class TestHorizontalFirstPolicy:
    @given(coords, coords)
    def test_reaches_destination(self, src, dst):
        from repro.network.routing import _step

        hops = route_hops(src, dst, policy=horizontal_first_direction)
        current = src
        for hop in hops:
            current = _step(current, hop)
        assert current == dst

    def test_differs_from_vertical_first(self):
        src, dst = coord(0, 0, V), coord(2, 2, V)
        assert route_hops(src, dst)[0] is Direction.SOUTH
        assert route_hops(src, dst, policy=horizontal_first_direction)[0] is (
            Direction.INTERNAL
        )
