"""Topology variants: mesh, torus, link aggregation (the DSE axes)."""

import pytest

from repro.network.params import LINK_OFFBOARD_FFC
from repro.network.routing import Direction, Layer
from repro.network.topology import TOPOLOGIES, SwallowTopology
from repro.sim import Simulator


def build(topology="lattice", slices_x=1, slices_y=1, agg=1):
    return SwallowTopology(
        Simulator(), slices_x, slices_y,
        topology=topology, link_aggregation=agg,
    )


class TestVariantWiring:
    def test_known_variants(self):
        assert TOPOLOGIES == ("lattice", "mesh", "torus")
        with pytest.raises(ValueError, match="unknown topology"):
            build("hypercube")
        with pytest.raises(ValueError, match="link_aggregation"):
            build(agg=0)

    def test_same_nodes_every_variant(self):
        """Only the wiring differs: node ids and coords are invariant."""
        reference = build("lattice")
        for name in ("mesh", "torus"):
            variant = build(name)
            assert variant.node_ids() == reference.node_ids()
            assert all(
                variant.coord_of(n) == reference.coord_of(n)
                for n in reference.node_ids()
            )

    def test_mesh_adds_cross_layer_links(self):
        lattice, mesh = build("lattice"), build("mesh")
        assert len(mesh.fabric.links) > len(lattice.fabric.links)
        # Every horizontal-layer node now has vertical neighbours too.
        package = mesh.packages[(0, 0)]
        south = mesh.packages[(0, 1)]
        graph = mesh.graph()
        assert graph.has_edge(package.horizontal_node, south.horizontal_node)
        assert not lattice.graph().has_edge(
            package.horizontal_node, south.horizontal_node
        )

    def test_torus_wraps_rows_and_columns(self):
        torus = build("torus")
        graph = torus.graph()
        west = torus.packages[(0, 0)]
        east = torus.packages[(torus.packages_x - 1, 0)]
        top = torus.packages[(0, 0)]
        bottom = torus.packages[(0, torus.packages_y - 1)]
        assert graph.has_edge(east.horizontal_node, west.horizontal_node)
        assert graph.has_edge(bottom.vertical_node, top.vertical_node)
        # Wraps are costed as the off-board ribbon-cable class.
        wrap = next(
            data for _, _, data in graph.edges(
                east.horizontal_node, data=True
            )
            if data["spec"] is LINK_OFFBOARD_FFC
        )
        assert wrap["spec"].name == "off-board-ffc"

    def test_link_aggregation_multiplies_external_links(self):
        single, doubled = build("lattice"), build("lattice", agg=2)
        graph_1, graph_2 = single.graph(), doubled.graph()
        package = single.packages[(0, 0)]
        south = single.packages[(0, 1)]
        assert len(graph_2.get_edge_data(
            package.vertical_node, south.vertical_node
        )) == 2 * len(graph_1.get_edge_data(
            package.vertical_node, south.vertical_node
        ))
        # On-chip links are the package's fixed four — never aggregated.
        assert len(graph_2.get_edge_data(
            package.vertical_node, package.horizontal_node
        )) == 4

    def test_lattice_wiring_unchanged_by_refactor(self):
        """The planner must reproduce the historical lattice exactly."""
        topo = build("lattice")
        names = [link.name for link in topo.fabric.links]
        assert names == sorted(set(names), key=names.index)  # unique
        # One slice: 8 packages x 4 on-chip + 4 on-board vertical +
        # 6 on-board horizontal = 42 full-duplex pairs.
        assert len(topo.fabric.links) == 42 * 2
        assert topo.fabric.routing_tables is None

    def test_duplicate_pair_link_names_stay_unique(self):
        """A torus wrap joining grid neighbours must not collide names."""
        torus = build("torus")
        names = [link.name for link in torus.fabric.links]
        assert len(names) == len(set(names))


class TestVariantRouting:
    def test_non_lattice_uses_table_routing(self):
        assert build("lattice").fabric.routing_tables is None
        for name in ("mesh", "torus"):
            topology = build(name)
            assert topology.fabric.routing_tables is not None

    def test_torus_wrap_shortens_routes(self):
        """End-to-end row routes take the wrap, not the full row."""
        torus = build("torus")
        west = torus.packages[(0, 0)].horizontal_node
        east = torus.packages[(torus.packages_x - 1, 0)].horizontal_node
        direction = torus.fabric.next_direction(east, west)
        assert direction is Direction.EAST  # out the wrap, not back west

    def test_table_routes_reach_everywhere(self):
        for name in ("mesh", "torus"):
            topology = build(name)
            nodes = topology.node_ids()
            for src in nodes[:4]:
                for dst in nodes:
                    if src == dst:
                        continue
                    assert topology.fabric.next_direction(src, dst) is not None

    def test_graph_matches_live_fabric(self):
        """graph() and the wired fabric derive from one plan."""
        for name in TOPOLOGIES:
            topology = build(name)
            assert topology.graph().number_of_edges() * 2 == len(
                topology.fabric.links
            )


class TestVariantWorkloads:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_demo_runs_on_every_variant(self, topology):
        from repro.checkpoint.resume import ResumableRun

        run = ResumableRun(
            "demo",
            {"seed": 5, "messages": 2, "topology": topology,
             "link_aggregation": 2},
        )
        run.run()
        report = run.final_report()
        assert report["energy"]["total_energy_j"] > 0
        assert report["state_digest"]

    def test_variant_runs_are_byte_identical(self):
        from repro.checkpoint.resume import ResumableRun

        def digest():
            run = ResumableRun(
                "demo", {"seed": 5, "messages": 2, "topology": "torus"}
            )
            run.run()
            return run.final_report()["state_digest"]

        assert digest() == digest()

    def test_layer_lookup_still_works(self):
        mesh = build("mesh")
        node = mesh.node_at(0, 0, Layer.VERTICAL)
        assert mesh.coord_of(node).layer is Layer.VERTICAL
