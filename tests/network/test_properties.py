"""Property-based tests of the network fabric.

Invariants the hardware guarantees and the simulator must too:

* every token injected for a reachable destination is eventually
  delivered, in order, uncorrupted;
* no tokens are created or destroyed (conservation);
* identical configurations produce identical runs (determinism);
* routes always close when an END is sent, never when it isn't.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.routing import Layer
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.sim import Simulator
from repro.xs1 import (
    BehavioralThread,
    CheckCt,
    RecvWord,
    SendCt,
    SendWord,
    XCore,
)

#: Any lattice coordinate of a single slice.
coords = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=1),
    st.sampled_from([Layer.VERTICAL, Layer.HORIZONTAL]),
)

#: Payload words.
payloads = st.lists(
    st.integers(min_value=0, max_value=0xFFFF_FFFF), min_size=1, max_size=6
)

_slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def transfer(src_coord, dst_coord, words, close=True):
    """Run one transfer; returns (received words, sim, fabric)."""
    sim = Simulator()
    topo = SwallowTopology(sim)
    src = topo.node_at(*src_coord)
    dst = topo.node_at(*dst_coord)
    core_a = XCore(sim, src, topo.fabric)
    core_b = core_a if src == dst else XCore(sim, dst, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)
    got = []

    def sender():
        for word in words:
            yield SendWord(tx, word)
        if close:
            yield SendCt(tx, CT_END)

    def receiver():
        for _ in words:
            got.append((yield RecvWord(rx)))
        if close:
            yield CheckCt(rx, CT_END)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    return got, sim, topo.fabric


class TestDeliveryProperties:
    @_slow
    @given(coords, coords, payloads)
    def test_words_delivered_in_order_uncorrupted(self, src, dst, words):
        got, _, _ = transfer(src, dst, words)
        assert got == words

    @_slow
    @given(coords, coords, payloads)
    def test_token_conservation(self, src, dst, words):
        """Chanend counters: sent payload == received payload."""
        got, _, fabric = transfer(src, dst, words)
        assert got == words
        # Every route opened was closed by the END.
        assert fabric.total_routes_open == 0

    @_slow
    @given(coords, coords, payloads)
    def test_determinism(self, src, dst, words):
        first = transfer(src, dst, words)
        second = transfer(src, dst, words)
        assert first[0] == second[0]
        assert first[1].now == second[1].now
        assert first[1].events_processed == second[1].events_processed

    @_slow
    @given(coords, coords, payloads)
    def test_unclosed_route_stays_open_iff_remote(self, src, dst, words):
        got, _, fabric = transfer(src, dst, words, close=False)
        assert got == words
        # A route is held open somewhere (source chanend port at minimum).
        assert fabric.total_routes_open >= 1


class TestCrossTrafficProperties:
    @_slow
    @given(
        st.lists(
            st.tuples(coords, coords, st.integers(min_value=1, max_value=3)),
            min_size=1,
            max_size=4,
        )
    )
    def test_concurrent_packetised_flows_all_complete(self, flows):
        """Any mix of packetised flows on one slice completes correctly."""
        sim = Simulator()
        topo = SwallowTopology(sim)
        cores = {}

        def core_at(coord):
            node = topo.node_at(*coord)
            if node not in cores:
                cores[node] = XCore(sim, node, topo.fabric)
            return cores[node]

        expectations = []
        for index, (src, dst, words) in enumerate(flows):
            core_a, core_b = core_at(src), core_at(dst)
            if (core_a.live_threads >= core_a.config.max_threads - 1
                    or core_b.live_threads >= core_b.config.max_threads - 1):
                continue
            tx = core_a.allocate_chanend()
            rx = core_b.allocate_chanend()
            tx.set_dest(rx.address)
            payload = [index * 100 + i for i in range(words)]
            got = []
            expectations.append((payload, got))

            def sender(tx=tx, payload=payload):
                for word in payload:
                    yield SendWord(tx, word)
                    yield SendCt(tx, CT_END)

            def receiver(rx=rx, got=got, count=words):
                for _ in range(count):
                    got.append((yield RecvWord(rx)))
                    yield CheckCt(rx, CT_END)

            BehavioralThread(core_a, sender())
            BehavioralThread(core_b, receiver())
        sim.run()
        for payload, got in expectations:
            assert got == payload
