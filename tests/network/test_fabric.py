"""End-to-end tests of the switched network fabric."""

import pytest

from repro.network.routing import Layer
from repro.network.token import CT_END
from repro.sim import to_ns
from repro.xs1 import (
    BehavioralThread,
    CheckCt,
    RecvWord,
    SendCt,
    SendWord,
)


def send_words(chanend, words, close=True):
    def body():
        for word in words:
            yield SendWord(chanend, word)
        if close:
            yield SendCt(chanend, CT_END)
    return body()


def recv_words(chanend, count, out, expect_end=True):
    def body():
        for _ in range(count):
            word = yield RecvWord(chanend)
            out.append(word)
        if expect_end:
            yield CheckCt(chanend, CT_END)
    return body()


class TestBasicTransfers:
    def test_in_package_word_transfer(self, rig):
        """Between the two nodes of one package (4 on-chip links)."""
        v = rig.topology.node_at(0, 0, Layer.VERTICAL)
        h = rig.topology.node_at(0, 0, Layer.HORIZONTAL)
        tx, rx = rig.channel(v, h)
        got = []
        BehavioralThread(rig.core(v), send_words(tx, [0xAA55AA55]))
        BehavioralThread(rig.core(h), recv_words(rx, 1, got))
        rig.sim.run()
        assert got == [0xAA55AA55]

    def test_cross_package_transfer(self, rig):
        """Across an on-board link between adjacent packages."""
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(0, 1, Layer.VERTICAL)
        tx, rx = rig.channel(a, b)
        got = []
        BehavioralThread(rig.core(a), send_words(tx, [1, 2, 3]))
        BehavioralThread(rig.core(b), recv_words(rx, 3, got))
        rig.sim.run()
        assert got == [1, 2, 3]

    def test_multi_hop_with_layer_changes(self, rig):
        """Corner-to-corner: crosses layers and both dimensions."""
        src = rig.topology.node_at(0, 0, Layer.HORIZONTAL)
        dst = rig.topology.node_at(3, 1, Layer.HORIZONTAL)
        tx, rx = rig.channel(src, dst)
        got = []
        BehavioralThread(rig.core(src), send_words(tx, [7, 8]))
        BehavioralThread(rig.core(dst), recv_words(rx, 2, got))
        rig.sim.run()
        assert got == [7, 8]

    def test_core_local_via_switch_loopback(self, rig):
        """Same-node chanends route through the local switch."""
        node = rig.topology.node_at(1, 0, Layer.VERTICAL)
        tx, rx = rig.channel(node, node)
        got = []
        BehavioralThread(rig.core(node), send_words(tx, [42]))
        BehavioralThread(rig.core(node), recv_words(rx, 1, got))
        rig.sim.run()
        assert got == [42]

    def test_cross_slice_over_ffc(self, make_rig):
        rig = make_rig(slices_x=2)
        src = rig.topology.node_at(0, 0, Layer.HORIZONTAL)
        dst = rig.topology.node_at(7, 0, Layer.HORIZONTAL)
        tx, rx = rig.channel(src, dst)
        got = []
        BehavioralThread(rig.core(src), send_words(tx, [0xF00D]))
        BehavioralThread(rig.core(dst), recv_words(rx, 1, got))
        rig.sim.run()
        assert got == [0xF00D]
        stats = rig.fabric.link_stats_by_class()
        assert stats["off-board-ffc"]["tokens"] > 0

    def test_bidirectional_pingpong(self, rig):
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(2, 1, Layer.HORIZONTAL)
        tx, rx = rig.channel(a, b)
        rounds, log = 10, []

        def ping():
            for i in range(rounds):
                yield SendWord(tx, i)
                log.append((yield RecvWord(tx)))

        def pong():
            for _ in range(rounds):
                value = yield RecvWord(rx)
                yield SendWord(rx, value * 2)

        BehavioralThread(rig.core(a), ping())
        BehavioralThread(rig.core(b), pong())
        rig.sim.run()
        assert log == [2 * i for i in range(rounds)]


class TestLatencyShape:
    """The paper's §V.C ordering: local < in-package < cross-package."""

    def _transfer_time(self, rig, src, dst):
        tx, rx = rig.channel(src, dst)
        got = []
        start = rig.sim.now
        BehavioralThread(rig.core(src), send_words(tx, [1], close=False))
        BehavioralThread(rig.core(dst), recv_words(rx, 1, got, expect_end=False))
        rig.sim.run()
        assert got == [1]
        return rig.sim.now - start

    def test_latency_ordering(self, make_rig):
        local = self._transfer_time(
            make_rig(), 0, 0
        )
        rig2 = make_rig()
        in_package = self._transfer_time(
            rig2,
            rig2.topology.node_at(0, 0, Layer.VERTICAL),
            rig2.topology.node_at(0, 0, Layer.HORIZONTAL),
        )
        rig3 = make_rig()
        cross_package = self._transfer_time(
            rig3,
            rig3.topology.node_at(0, 0, Layer.VERTICAL),
            rig3.topology.node_at(0, 1, Layer.VERTICAL),
        )
        assert local < in_package < cross_package

    def test_cross_package_word_latency_near_paper(self, make_rig):
        """Paper: 360 ns for a 32-bit word between packages (shape match)."""
        rig = make_rig()
        elapsed = self._transfer_time(
            rig,
            rig.topology.node_at(0, 0, Layer.VERTICAL),
            rig.topology.node_at(0, 1, Layer.VERTICAL),
        )
        assert 200 <= to_ns(elapsed) <= 700


class TestRouteLifecycle:
    def test_end_token_closes_routes(self, rig):
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(1, 1, Layer.HORIZONTAL)
        tx, rx = rig.channel(a, b)
        got = []
        BehavioralThread(rig.core(a), send_words(tx, [5]))
        BehavioralThread(rig.core(b), recv_words(rx, 1, got))
        rig.sim.run()
        assert rig.fabric.total_routes_open == 0

    def test_unclosed_route_stays_open(self, rig):
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(1, 1, Layer.HORIZONTAL)
        tx, rx = rig.channel(a, b)
        got = []
        BehavioralThread(rig.core(a), send_words(tx, [5], close=False))
        BehavioralThread(rig.core(b), recv_words(rx, 1, got, expect_end=False))
        rig.sim.run()
        assert got == [5]
        assert rig.fabric.total_routes_open > 0

    def test_sequential_messages_reuse_link(self, rig):
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(0, 1, Layer.VERTICAL)
        tx, rx = rig.channel(a, b)
        got = []

        def sender():
            for i in range(3):
                yield SendWord(tx, i)
                yield SendCt(tx, CT_END)   # close and reopen each time

        def receiver():
            for _ in range(3):
                got.append((yield RecvWord(rx)))
                yield CheckCt(rx, CT_END)

        BehavioralThread(rig.core(a), sender())
        BehavioralThread(rig.core(b), receiver())
        rig.sim.run()
        assert got == [0, 1, 2]
        assert rig.fabric.total_routes_open == 0


class TestContention:
    def test_two_streams_share_aggregated_internal_links(self, rig):
        """In-package has 4 links: two circuits proceed concurrently."""
        v = rig.topology.node_at(0, 0, Layer.VERTICAL)
        h = rig.topology.node_at(0, 0, Layer.HORIZONTAL)
        results = {1: [], 2: []}
        for stream in (1, 2):
            tx, rx = rig.channel(v, h)
            BehavioralThread(
                rig.core(v), send_words(tx, [stream] * 5, close=False)
            )
            BehavioralThread(
                rig.core(h), recv_words(rx, 5, results[stream], expect_end=False)
            )
        rig.sim.run()
        assert results[1] == [1] * 5
        assert results[2] == [2] * 5

    def test_circuit_blocks_competitor_on_single_external_link(self, rig):
        """One external link: a held-open circuit serializes a competitor."""
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(0, 1, Layer.VERTICAL)
        slow_got, fast_got = [], []
        tx1, rx1 = rig.channel(a, b)
        tx2, rx2 = rig.channel(a, b)

        def circuit_holder():
            for i in range(4):
                yield SendWord(tx1, i)
            # no END: route held open
        def competitor():
            yield SendWord(tx2, 99)
            yield SendCt(tx2, CT_END)

        BehavioralThread(rig.core(a), circuit_holder())
        BehavioralThread(rig.core(a), competitor())
        BehavioralThread(rig.core(b), recv_words(rx1, 4, slow_got, expect_end=False))
        receiver2 = BehavioralThread(
            rig.core(b), recv_words(rx2, 1, fast_got)
        )
        rig.sim.run()
        assert slow_got == [0, 1, 2, 3]
        assert fast_got == []            # starved: the circuit never closed
        assert not receiver2.halted

    def test_backpressure_reaches_remote_sender(self, rig):
        """An unread receiver eventually pauses a remote sender."""
        a = rig.topology.node_at(0, 0, Layer.VERTICAL)
        b = rig.topology.node_at(0, 1, Layer.VERTICAL)
        tx, rx = rig.channel(a, b)

        def flood():
            for i in range(100):
                yield SendWord(tx, i)

        sender = BehavioralThread(rig.core(a), flood())
        # No receiver thread at all.
        rig.sim.run()
        assert not sender.halted
        assert sender.pause_reason is not None


class TestDeterminism:
    def test_identical_runs_produce_identical_timing(self, make_rig):
        def run_once():
            rig = make_rig()
            a = rig.topology.node_at(0, 0, Layer.HORIZONTAL)
            b = rig.topology.node_at(3, 1, Layer.VERTICAL)
            tx, rx = rig.channel(a, b)
            got = []
            BehavioralThread(rig.core(a), send_words(tx, list(range(20))))
            BehavioralThread(rig.core(b), recv_words(rx, 20, got))
            rig.sim.run()
            return rig.sim.now, tuple(got), rig.sim.events_processed

        assert run_once() == run_once()
