"""Tests for the Ethernet bridge (§V.E)."""

import pytest

from repro.network.ethernet import ETHERNET_BITRATE, EthernetBridge
from repro.network.routing import Layer
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.sim import Simulator, ms
from repro.xs1 import BehavioralThread, RecvWord, SendCt, SendWord, SetDest, XCore


def build():
    sim = Simulator()
    topo = SwallowTopology(sim)
    bridge = EthernetBridge.attach(topo, column=0)
    return sim, topo, bridge


class TestAttachment:
    def test_bridge_is_addressable_node(self):
        sim, topo, bridge = build()
        assert bridge.node_id in topo.fabric.coords
        assert bridge.node_id not in topo.node_ids()  # beyond the core grid

    def test_bad_column_rejected(self):
        sim = Simulator()
        topo = SwallowTopology(sim)
        with pytest.raises(ValueError):
            EthernetBridge.attach(topo, column=99)

    def test_two_bridges_per_slice(self):
        sim = Simulator()
        topo = SwallowTopology(sim)
        b0 = EthernetBridge.attach(topo, column=0)
        b1 = EthernetBridge.attach(topo, column=3)
        assert b0.node_id != b1.node_id


class TestEgress:
    def test_core_streams_words_to_host(self):
        sim, topo, bridge = build()
        node = topo.node_at(0, 0, Layer.VERTICAL)
        core = XCore(sim, node, topo.fabric)
        tx = core.allocate_chanend()

        def streamer():
            yield SetDest(tx, bridge.endpoint(0))
            for i in range(5):
                yield SendWord(tx, 100 + i)
            yield SendCt(tx, CT_END)

        BehavioralThread(core, streamer())
        sim.run()
        received = bridge.host_receive()
        assert [w.value for w in received] == [100, 101, 102, 103, 104]
        assert bridge.bits_out == 5 * 32

    def test_host_receive_drains_queue(self):
        sim, topo, bridge = build()
        node = topo.node_at(0, 0, Layer.VERTICAL)
        core = XCore(sim, node, topo.fabric)
        tx = core.allocate_chanend()

        def streamer():
            yield SetDest(tx, bridge.endpoint(0))
            yield SendWord(tx, 7)
            yield SendCt(tx, CT_END)

        BehavioralThread(core, streamer())
        sim.run()
        assert len(bridge.host_receive()) == 1
        assert bridge.host_receive() == []


class TestIngress:
    def test_host_sends_words_to_core(self):
        sim, topo, bridge = build()
        node = topo.node_at(1, 0, Layer.HORIZONTAL)
        core = XCore(sim, node, topo.fabric)
        rx = core.allocate_chanend()
        got = []

        def receiver():
            for _ in range(3):
                got.append((yield RecvWord(rx)))

        BehavioralThread(core, receiver())
        bridge.host_send_words(rx.address, [11, 22, 33])
        sim.run()
        assert got == [11, 22, 33]
        assert bridge.bits_in == 96

    def test_ingress_paced_at_ethernet_rate(self):
        sim, topo, bridge = build()
        node = topo.node_at(0, 0, Layer.VERTICAL)
        core = XCore(sim, node, topo.fabric)
        rx = core.allocate_chanend()
        count = 100
        got = []

        def receiver():
            for _ in range(count):
                got.append((yield RecvWord(rx)))

        BehavioralThread(core, receiver())
        bridge.host_send_words(rx.address, list(range(count)))
        sim.run()
        assert len(got) == count
        # 99 inter-word gaps x 32 bits at 80 Mbit/s = 39.6 us minimum.
        assert sim.now >= 39_600_000

    def test_transfer_time_helper(self):
        _, _, bridge = build()
        assert bridge.transfer_time_s(ETHERNET_BITRATE) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            bridge.transfer_time_s(-1)
