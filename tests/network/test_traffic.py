"""Tests for the synthetic traffic generators."""

import pytest

from repro.network.topology import SwallowTopology
from repro.network.traffic import (
    TrafficRun,
    bit_complement_pairs,
    hotspot_pairs,
    neighbour_pairs,
    uniform_random_pairs,
)
from repro.sim import Simulator


def topo(**kwargs):
    return SwallowTopology(Simulator(), **kwargs)


class TestPairGenerators:
    def test_uniform_random_deterministic(self):
        nodes = list(range(16))
        assert uniform_random_pairs(nodes, 10, seed=1) == uniform_random_pairs(
            nodes, 10, seed=1
        )

    def test_uniform_random_no_self_traffic(self):
        pairs = uniform_random_pairs(list(range(16)), 50, seed=2)
        assert all(src != dst for src, dst in pairs)

    def test_bit_complement_is_involution(self):
        topology = topo()
        pairs = dict(bit_complement_pairs(topology))
        for src, dst in pairs.items():
            assert pairs[dst] == src

    def test_bit_complement_crosses_bisection(self):
        topology = topo()
        crossing = sum(
            1
            for src, dst in bit_complement_pairs(topology)
            if (topology.coord_of(src).y < 1) != (topology.coord_of(dst).y < 1)
        )
        assert crossing == len(bit_complement_pairs(topology))

    def test_hotspot_targets_one_node(self):
        pairs = hotspot_pairs(list(range(16)), hotspot=5, count=6, seed=3)
        assert all(dst == 5 for _, dst in pairs)
        assert all(src != 5 for src, _ in pairs)

    def test_neighbour_pairs_are_in_package(self):
        topology = topo()
        for src, dst in neighbour_pairs(topology):
            a, b = topology.coord_of(src), topology.coord_of(dst)
            assert (a.x, a.y) == (b.x, b.y)
            assert a.layer is not b.layer


class TestTrafficRun:
    def test_all_packets_delivered(self):
        topology = topo()
        pairs = neighbour_pairs(topology)
        run = TrafficRun(topology, pairs, packets=3).start()
        topology.sim.run()
        assert run.stats.complete
        assert run.stats.received == 3 * len(pairs)

    def test_latencies_recorded(self):
        topology = topo()
        run = TrafficRun(topology, [(0, 15)], packets=4).start()
        topology.sim.run()
        assert len(run.stats.latencies_ps) == 4
        assert run.stats.mean_latency_ps > 0
        assert run.stats.p99_latency_ps >= run.stats.mean_latency_ps * 0.5

    def test_uniform_random_run(self):
        topology = topo()
        pairs = uniform_random_pairs(topology.node_ids(), 5, seed=11)
        run = TrafficRun(topology, pairs, packets=2).start()
        topology.sim.run()
        assert run.stats.complete

    def test_hotspot_congestion_raises_latency(self):
        def mean_latency(pairs):
            topology = topo()
            run = TrafficRun(topology, pairs, packets=3, gap_instructions=0).start()
            topology.sim.run()
            assert run.stats.complete
            return run.stats.mean_latency_ps

        light = mean_latency([(0, 15)])
        heavy = mean_latency(hotspot_pairs(list(range(16)), hotspot=15, count=5, seed=7))
        assert heavy > light

    def test_deterministic_runs(self):
        def digest():
            topology = topo()
            pairs = uniform_random_pairs(topology.node_ids(), 6, seed=42)
            run = TrafficRun(topology, pairs, packets=2).start()
            topology.sim.run()
            return tuple(run.stats.latencies_ps), topology.sim.now

        assert digest() == digest()

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            TrafficRun(topo(), [])

    def test_bit_complement_full_lattice(self):
        topology = topo()
        pairs = bit_complement_pairs(topology)
        run = TrafficRun(topology, pairs, packets=2).start()
        topology.sim.run()
        assert run.stats.complete
