"""Tests for placement strategies and communication-scope classification."""

import pytest

from repro.apps import Placement, communication_scope, place
from repro.board import build_machine
from repro.sim import Simulator


@pytest.fixture
def machine():
    return build_machine(Simulator(), slices_x=2)


class TestPlace:
    def test_same_core_repeats_one_core(self, machine):
        cores = place(machine, 4, Placement.SAME_CORE)
        assert len(set(id(c) for c in cores)) == 1

    def test_same_core_thread_limit(self, machine):
        with pytest.raises(ValueError):
            place(machine, 9, Placement.SAME_CORE)

    def test_same_package_alternates(self, machine):
        cores = place(machine, 4, Placement.SAME_PACKAGE)
        nodes = [c.node_id for c in cores]
        assert nodes[0] == nodes[2]
        assert nodes[1] == nodes[3]
        assert nodes[0] != nodes[1]

    def test_same_slice_stays_on_one_board(self, machine):
        cores = place(machine, 8, Placement.SAME_SLICE)
        slices = {machine.topology.slice_of(c.node_id) for c in cores}
        assert len(slices) == 1

    def test_cross_slice_spans_boards(self, machine):
        cores = place(machine, 2, Placement.CROSS_SLICE)
        slices = {machine.topology.slice_of(c.node_id) for c in cores}
        assert len(slices) == 2

    def test_cross_slice_needs_two_slices(self):
        single = build_machine(Simulator())
        with pytest.raises(ValueError):
            place(single, 2, Placement.CROSS_SLICE)

    def test_zero_tasks_rejected(self, machine):
        with pytest.raises(ValueError):
            place(machine, 0, Placement.SAME_CORE)


class TestScope:
    def test_core_local(self, machine):
        cores = place(machine, 3, Placement.SAME_CORE)
        assert communication_scope(cores, machine) == "core-local"

    def test_chip_local(self, machine):
        cores = place(machine, 2, Placement.SAME_PACKAGE)
        assert communication_scope(cores, machine) == "chip-local"

    def test_board_local(self, machine):
        cores = place(machine, 6, Placement.SAME_SLICE)
        assert communication_scope(cores, machine) == "board-local"

    def test_off_board(self, machine):
        cores = place(machine, 2, Placement.CROSS_SLICE)
        assert communication_scope(cores, machine) == "off-board"
