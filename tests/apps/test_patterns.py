"""Tests for the parallel application patterns."""

import pytest

from repro.apps import (
    SharedMemoryServer,
    build_client_server,
    build_message_ring,
    build_pipeline,
    build_task_farm,
    shmem_read,
    shmem_write,
)
from repro.board import build_machine
from repro.sim import Simulator
from repro.xs1 import BehavioralThread


@pytest.fixture
def machine():
    return build_machine(Simulator())


class TestPipeline:
    def test_items_flow_through_all_stages(self, machine):
        cores = machine.cores[:4]
        result = build_pipeline(cores, items=8, compute_per_stage=10)
        machine.sim.run()
        assert result.complete
        # Source emits 0..7; three downstream stages each add 1.
        assert result.outputs == [i + 3 for i in range(8)]

    def test_two_stage_minimum(self, machine):
        result = build_pipeline(machine.cores[:2], items=3, compute_per_stage=5)
        machine.sim.run()
        assert result.outputs == [1, 2, 3]

    def test_single_core_rejected(self, machine):
        with pytest.raises(ValueError):
            build_pipeline(machine.cores[:1], items=1, compute_per_stage=1)

    def test_zero_items_rejected(self, machine):
        with pytest.raises(ValueError):
            build_pipeline(machine.cores[:2], items=0, compute_per_stage=1)

    def test_makespan_scales_with_compute(self):
        def makespan(compute):
            machine = build_machine(Simulator())
            result = build_pipeline(
                machine.cores[:3], items=5, compute_per_stage=compute
            )
            machine.sim.run()
            return result.makespan_ps

        assert makespan(2000) > makespan(10)

    def test_traffic_recorded(self, machine):
        result = build_pipeline(machine.cores[:3], items=4, compute_per_stage=1)
        machine.sim.run()
        # 4 items x 32 bits over 2 channels, at minimum.
        assert result.bits_moved >= 4 * 32 * 2

    def test_pipeline_on_single_core_threads(self, machine):
        """Stages as hardware threads of one core (core-local channel)."""
        core = machine.cores[0]
        result = build_pipeline([core, core, core], items=5, compute_per_stage=3)
        machine.sim.run()
        assert result.complete


class TestTaskFarm:
    def test_all_items_processed(self, machine):
        result = build_task_farm(
            machine.cores[0], machine.cores[1:4], items=12, compute_per_item=20
        )
        machine.sim.run()
        assert result.complete
        assert sorted(result.outputs) == [2 * i for i in range(12)]

    def test_single_worker(self, machine):
        result = build_task_farm(
            machine.cores[0], [machine.cores[1]], items=5, compute_per_item=5
        )
        machine.sim.run()
        assert sorted(result.outputs) == [0, 2, 4, 6, 8]

    def test_more_workers_faster(self):
        def makespan(n_workers):
            machine = build_machine(Simulator())
            result = build_task_farm(
                machine.cores[0], machine.cores[1 : 1 + n_workers],
                items=16, compute_per_item=4000,
            )
            machine.sim.run()
            assert result.complete
            return result.makespan_ps

        assert makespan(4) < makespan(1)

    def test_no_workers_rejected(self, machine):
        with pytest.raises(ValueError):
            build_task_farm(machine.cores[0], [], items=1, compute_per_item=1)


class TestClientServer:
    def test_every_client_answered(self, machine):
        result = build_client_server(
            machine.cores[0], machine.cores[1:4],
            requests_per_client=3, compute_per_request=10,
        )
        machine.sim.run()
        assert result.complete
        assert len(result.outputs) == 9
        assert all(value >= 1000 for value in result.outputs)

    def test_responses_match_requests(self, machine):
        result = build_client_server(
            machine.cores[0], [machine.cores[1]],
            requests_per_client=4, compute_per_request=1,
        )
        machine.sim.run()
        assert result.outputs == [1000, 1001, 1002, 1003]


class TestMessageRing:
    def test_token_gains_one_per_hop(self, machine):
        cores = machine.cores[:4]
        result = build_message_ring(cores, rounds=3)
        machine.sim.run()
        # Each full round adds len(cores) (head adds 1 + 3 relays).
        assert result.outputs == [4, 8, 12]

    def test_ring_of_two(self, machine):
        result = build_message_ring(machine.cores[:2], rounds=2)
        machine.sim.run()
        assert result.outputs == [2, 4]

    def test_single_core_rejected(self, machine):
        with pytest.raises(ValueError):
            build_message_ring(machine.cores[:1], rounds=1)


class TestBsp:
    def test_all_workers_complete_all_supersteps(self, machine):
        from repro.apps import build_bsp

        result = build_bsp(machine.cores[:5], supersteps=4, compute_per_step=50)
        machine.sim.run()
        assert result.complete
        assert result.outputs == [4, 4, 4, 4]
        assert len(result.finish_times_ps) == 4

    def test_barrier_separates_supersteps(self, machine):
        """Barrier exits are strictly ordered in time."""
        from repro.apps import build_bsp

        result = build_bsp(machine.cores[:4], supersteps=3, compute_per_step=100)
        machine.sim.run()
        times = result.finish_times_ps
        assert times == sorted(times)
        assert len(set(times)) == 3

    def test_slow_worker_holds_barrier(self):
        """Imbalanced compute: makespan tracks the slowest worker."""
        from repro.apps import build_bsp
        from repro.board import build_machine
        from repro.sim import Simulator

        def makespan(compute):
            machine = build_machine(Simulator())
            result = build_bsp(machine.cores[:3], supersteps=2,
                               compute_per_step=compute)
            machine.sim.run()
            assert result.complete
            return result.makespan_ps

        assert makespan(4000) > makespan(100)

    def test_minimum_sizes_enforced(self, machine):
        from repro.apps import build_bsp

        with pytest.raises(ValueError):
            build_bsp(machine.cores[:1], supersteps=1, compute_per_step=1)
        with pytest.raises(ValueError):
            build_bsp(machine.cores[:3], supersteps=0, compute_per_step=1)


class TestSharedMemory:
    def test_remote_read_write(self, machine):
        server_core = machine.cores[0]
        client_core = machine.cores[5]
        server = SharedMemoryServer(core=server_core)
        channel = server.connect(client_core)
        server.serve(total_requests=3)
        observed = []

        def client():
            yield from shmem_write(channel, 0x100, 777)
            value = yield from shmem_read(channel, 0x100)
            observed.append(value)
            value2 = yield from shmem_read(channel, 0x104)
            observed.append(value2)

        BehavioralThread(client_core, client())
        machine.sim.run()
        assert observed == [777, 0]
        assert server.requests_served == 3
        assert server_core.memory.load_word(0x100) == 777

    def test_two_clients_share_state(self, machine):
        server = SharedMemoryServer(core=machine.cores[0])
        ch1 = server.connect(machine.cores[1])
        ch2 = server.connect(machine.cores[2])
        server.serve(total_requests=2)
        seen = []

        def writer():
            yield from shmem_write(ch1, 0x40, 31337)

        def reader():
            value = yield from shmem_read(ch2, 0x40)
            seen.append(value)

        BehavioralThread(machine.cores[1], writer())
        BehavioralThread(machine.cores[2], reader())
        machine.sim.run()
        # Server round-robins; writer is client 0, so the write lands
        # before the read is answered.
        assert seen == [31337]
