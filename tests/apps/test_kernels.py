"""Tests for the assembly kernel suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kernels import (
    bubble_sort,
    checksum32,
    default_suite,
    dot_product,
    fibonacci,
    matrix_multiply,
    memcpy_words,
    run_kernel,
    vector_scale,
)
from repro.sim import Simulator
from repro.xs1 import EnergyClass, LoopbackFabric, XCore

words = st.lists(
    st.integers(min_value=0, max_value=0xFFFF_FFFF), min_size=1, max_size=16
)


def fresh_core():
    sim = Simulator()
    return XCore(sim, node_id=0, fabric=LoopbackFabric(sim))


class TestKernels:
    def test_memcpy(self):
        core = fresh_core()
        data = [10, 20, 30, 40]
        outputs, _ = run_kernel(core, memcpy_words(4), data)
        assert outputs == data

    def test_dot_product(self):
        core = fresh_core()
        outputs, _ = run_kernel(core, dot_product(3), [1, 2, 3], [4, 5, 6])
        assert outputs == [32]

    def test_vector_scale(self):
        core = fresh_core()
        outputs, _ = run_kernel(core, vector_scale(3, 7), [1, 2, 3])
        assert outputs == [7, 14, 21]

    def test_checksum_differs_on_permutation(self):
        c1 = fresh_core()
        c2 = fresh_core()
        out1, _ = run_kernel(c1, checksum32(3), [1, 2, 3])
        out2, _ = run_kernel(c2, checksum32(3), [3, 2, 1])
        assert out1 != out2

    def test_bubble_sort(self):
        core = fresh_core()
        outputs, _ = run_kernel(core, bubble_sort(6), [5, 1, 4, 2, 6, 3])
        assert outputs == [1, 2, 3, 4, 5, 6]

    def test_matrix_multiply_identity(self):
        core = fresh_core()
        identity = [1, 0, 0, 1]
        m = [1, 2, 3, 4]
        outputs, _ = run_kernel(core, matrix_multiply(2), m, identity)
        assert outputs == m

    def test_matrix_multiply_general(self):
        core = fresh_core()
        outputs, _ = run_kernel(
            core, matrix_multiply(2), [1, 2, 3, 4], [5, 6, 7, 8]
        )
        assert outputs == [19, 22, 43, 50]

    def test_fibonacci(self):
        core = fresh_core()
        outputs, _ = run_kernel(core, fibonacci(8))
        assert outputs == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_full_suite_verifies(self):
        for kernel in default_suite():
            core = fresh_core()
            size = kernel.output_words if kernel.name != "dot-product" else 32
            a = list(range(1, 33))
            b = list(range(33, 65))
            run_kernel(core, kernel, a[:32], b[:32])


class TestKernelProperties:
    @settings(max_examples=15, deadline=None)
    @given(words)
    def test_memcpy_any_data(self, data):
        core = fresh_core()
        outputs, _ = run_kernel(core, memcpy_words(len(data)), data)
        assert outputs == data

    @settings(max_examples=15, deadline=None)
    @given(words)
    def test_sort_any_data(self, data):
        core = fresh_core()
        outputs, _ = run_kernel(core, bubble_sort(len(data)), data)
        assert outputs == sorted(data)

    @settings(max_examples=10, deadline=None)
    @given(words, words)
    def test_dot_product_any_data(self, a, b):
        n = min(len(a), len(b))
        core = fresh_core()
        outputs, _ = run_kernel(core, dot_product(n), a[:n], b[:n])
        expected = sum(x * y for x, y in zip(a[:n], b[:n])) & 0xFFFF_FFFF
        assert outputs == [expected]


class TestKernelTiming:
    def test_cycle_counts_deterministic(self):
        def cycles():
            core = fresh_core()
            _, thread = run_kernel(core, dot_product(16), list(range(16)),
                                   list(range(16)))
            return core.cycle, thread.instructions_executed

        assert cycles() == cycles()

    def test_instruction_mix_varies_by_kernel(self):
        """Different kernels have different energy-class mixes (§II)."""
        def mix(kernel, a, b=None):
            core = fresh_core()
            run_kernel(core, kernel, a, b)
            histogram = core.stats.instructions
            total = sum(histogram.values())
            return {cls: count / total for cls, count in histogram.items()}

        mem_mix = mix(memcpy_words(16), list(range(16)))
        fib_mix = mix(fibonacci(16), None)
        dot_mix = mix(dot_product(16), list(range(16)), list(range(16)))
        # memcpy is load/store heavy; fibonacci does no loads; dot multiplies.
        assert mem_mix[EnergyClass.MEM_LOAD] > 0.15
        assert EnergyClass.MEM_LOAD not in fib_mix
        assert dot_mix[EnergyClass.MUL] > 0.08

    def test_energy_per_instruction_tracks_mix(self):
        """The Kerrison model prices kernels differently by their mix."""
        from repro.energy import InstructionEnergyModel

        model = InstructionEnergyModel()

        def mean_nj(kernel, a, b=None):
            core = fresh_core()
            run_kernel(core, kernel, a, b)
            return model.mean_nj(core.stats.instructions)

        memcpy_nj = mean_nj(memcpy_words(16), list(range(16)))
        fib_nj = mean_nj(fibonacci(16), None)
        assert memcpy_nj > fib_nj  # loads/stores cost more than ALU
        low, high = model.range_nj
        assert low <= fib_nj <= memcpy_nj <= high
