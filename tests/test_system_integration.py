"""Whole-system integration: everything at once, invariants throughout.

A 2x1-slice machine with Ethernet bridges runs a mixed workload —
assembly kernels, behavioural pipelines, a farm, the power governor,
ADC tracing, host streaming — and the global invariants must hold:
all work completes, energy is conserved and attributable, the network
quiesces, and the whole thing replays deterministically.
"""

import pytest

from repro import (
    Compute,
    Placement,
    SendCt,
    SendWord,
    SetDest,
    SwallowSystem,
    build_pipeline,
    build_task_farm,
    place,
)
from repro.apps.kernels import dot_product, run_kernel
from repro.core import NanoOS, PowerGovernor, attribute_to_threads
from repro.network.token import CT_END


def build_and_run():
    system = SwallowSystem(slices_x=2, ethernet_columns=(0, 7))
    bridge_in, bridge_out = system.bridges

    # 1. Assembly kernel on core 0.
    kernel = dot_product(8)
    kernel.load_inputs(system.core(0), list(range(8)), list(range(8)))
    system.core(0).spawn(kernel.program)

    # 2. A pipeline across one package.
    machine = system.machine
    pipeline_cores = place(machine, 4, Placement.SAME_PACKAGE)
    pipeline = build_pipeline(pipeline_cores, items=10, compute_per_stage=30)

    # 3. A task farm across the second slice.
    farm_cores = machine.slice_board(1, 0).cores
    farm = build_task_farm(farm_cores[0], farm_cores[1:4], items=9,
                           compute_per_item=50)

    # 4. nOS tasks booted over Ethernet, streaming results to the host.
    nos = NanoOS(system, bridge=bridge_in)

    def make_task(task_id):
        def factory(core):
            def body():
                tx = core.allocate_chanend()
                yield SetDest(tx, bridge_out.endpoint(task_id % 4))
                yield Compute(100)
                yield SendWord(tx, 0x1000 + task_id)
                yield SendCt(tx, CT_END)
            return body()
        return factory

    handles = [nos.submit(make_task(i)) for i in range(4)]

    # 5. Governor watching slice 0's rail 0, ADC trace in parallel.
    board = system.measurement_board(0, 0)
    governor = PowerGovernor(board, channel=0, budget_mw=900, period_cycles=50_000)
    governor.install(system.core(12), iterations=5)
    trace = board.record_trace(duration_s=0.0005, rate_hz=200_000, channel=1)

    system.run_for_us(2_000)
    return system, kernel, pipeline, farm, handles, trace, bridge_out


class TestSystemIntegration:
    def test_everything_completes_and_balances(self):
        system, kernel, pipeline, farm, handles, trace, bridge_out = build_and_run()
        # All workloads finished.
        assert kernel.read_output(system.core(0))[0] == sum(i * i for i in range(8))
        assert pipeline.complete
        assert farm.complete
        assert all(handle.done for handle in handles)
        # Host received every streamed word.
        values = sorted(w.value for w in bridge_out.host_receive())
        assert values == [0x1000, 0x1001, 0x1002, 0x1003]
        # ADC trace recorded at the requested rate.
        assert len(trace) == 100
        # The network has quiesced (packet mode closed all routes).
        assert system.topology.fabric.total_routes_open == 0
        # Energy ledger is self-consistent and attributable.
        report = system.energy_report()
        assert report.total_energy_j > 0
        rows = attribute_to_threads(system)
        attributed = sum(r.energy_j for r in rows)
        assert attributed == pytest.approx(report.core_energy_j, rel=1e-6)
        # Mean machine power is plausible: between all-idle and all-max.
        idle_floor = 32 * 113 * 1e-3 * 0.9
        max_ceiling = 32 * 260 * 1e-3 * 1.2
        assert idle_floor <= report.mean_power_w <= max_ceiling

    def test_full_scenario_is_deterministic(self):
        def digest():
            system, kernel, pipeline, farm, handles, trace, bridge_out = (
                build_and_run()
            )
            return (
                system.sim.now,
                system.sim.events_processed,
                tuple(pipeline.outputs),
                tuple(sorted(farm.outputs)),
                round(system.energy_report().total_energy_j, 15),
                tuple(tuple(v) for v in trace.values_mw),
            )

        assert digest() == digest()
