"""Tests for checkpoint cadence and the on-disk retained set."""

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointStore,
    ResumableRun,
    Snapshot,
)


class TestPolicy:
    def test_needs_at_least_one_cadence(self):
        with pytest.raises(ValueError, match="every_events and/or every_us"):
            CheckpointPolicy()

    def test_validates_bounds(self):
        with pytest.raises(ValueError, match="every_events"):
            CheckpointPolicy(every_events=0)
        with pytest.raises(ValueError, match="every_us"):
            CheckpointPolicy(every_us=0.0)
        with pytest.raises(ValueError, match="retain"):
            CheckpointPolicy(every_events=10, retain=0)

    def test_event_cadence_captures_at_boundaries(self):
        run = ResumableRun(
            "faults_stream", {"words": 4, "seed": 0},
            policy=CheckpointPolicy(every_events=300, retain=2),
        )
        run.run()
        total = run.context.system.sim.events_processed
        assert run.captures == total // 300
        assert len(run.snapshots) == 2          # retained set is bounded
        assert [s.events_processed for s in run.snapshots] == [
            (run.captures - 1) * 300, run.captures * 300
        ]

    def test_time_cadence_captures_between_events(self):
        run = ResumableRun(
            "faults_stream", {"words": 4, "seed": 0},
            policy=CheckpointPolicy(every_us=50.0, retain=100),
        )
        run.run()
        assert run.captures >= 2
        marks = [s.time_ps for s in run.snapshots]
        assert marks == sorted(marks)


class TestStore:
    def test_add_prunes_beyond_retain(self, tmp_path):
        run = ResumableRun(
            "faults_stream", {"words": 4, "seed": 0},
            policy=CheckpointPolicy(every_events=300, retain=2),
            store=CheckpointStore(tmp_path / "store", retain=2),
        )
        run.run()
        store = CheckpointStore(tmp_path / "store", retain=2)
        assert len(store) == 2
        names = [p.name for p in store.paths()]
        assert names == sorted(names)

    def test_latest_returns_newest_validated_bundle(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", retain=3)
        run = ResumableRun(
            "faults_stream", {"words": 4, "seed": 0},
            policy=CheckpointPolicy(every_events=400, retain=3),
            store=store,
        )
        run.run()
        latest = store.latest()
        assert latest.events_processed == run.snapshots[-1].events_processed
        assert isinstance(latest, Snapshot)

    def test_latest_on_empty_store_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "empty")
        with pytest.raises(CheckpointError, match="no checkpoint bundles"):
            store.latest()

    def test_orphans_are_pruned_and_retained_set_survives(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", retain=3)
        ResumableRun(
            "faults_stream", {"words": 4, "seed": 0},
            policy=CheckpointPolicy(every_events=400, retain=3),
            store=store,
        ).run()
        retained = [p.name for p in store.paths()]
        # Simulate a writer killed mid-replace and a hand-mangled name.
        (store.directory / "checkpoint-000000099999.json.tmp").write_text("{")
        (store.directory / "checkpoint-zzz.json").write_text("{}")
        (store.directory / "NOTES.txt").write_text("unrelated")

        reopened = CheckpointStore(tmp_path / "store", retain=3)
        assert [p.name for p in reopened.paths()] == retained
        assert reopened.orphans() == []
        assert (store.directory / "NOTES.txt").exists()  # never collateral
        # latest() still loads a validated bundle, not the mangled file.
        assert reopened.latest().events_processed > 0

    def test_reopening_with_smaller_retain_trims_to_bound(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", retain=5)
        ResumableRun(
            "faults_stream", {"words": 4, "seed": 0},
            policy=CheckpointPolicy(every_events=300, retain=5),
            store=store,
        ).run()
        assert len(store) > 1
        newest = store.paths()[-1].name
        reopened = CheckpointStore(tmp_path / "store", retain=1)
        assert len(reopened) == 1
        assert reopened.paths()[0].name == newest
