"""End-to-end watchdog recovery: detect, replace, rollback, replay.

The ``watchdog_stream`` workload livelocks deliberately: a permanent
100%-drop flaky link lands mid-stream, the sender retries forever, and
delivery freezes.  These tests walk the whole recovery ladder — stall
detection, the (useless here) replace rung, the rollback rung, masked
replay — and pin down that the resulting :class:`RecoveryReport` is
deterministic.
"""

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    ResumableRun,
)

PARAMS = {"words": 24, "seed": 0}


def recovered_run(retain: int = 16) -> ResumableRun:
    run = ResumableRun(
        "watchdog_stream", dict(PARAMS),
        policy=CheckpointPolicy(every_us=6.0, retain=retain),
    )
    run.recovery = run.run()
    return run


class TestRecoveryLadder:
    def test_livelock_is_recovered_end_to_end(self):
        run = recovered_run()
        report = run.recovery.to_dict()
        assert report["outcome"] == "completed"
        assert report["rollbacks"] == 1
        assert report["masked"] == [0]
        assert report["final"]["delivered"] == 24
        assert report["final"]["delivered_ok"] is True
        assert run.context.received == run.context.expected

    def test_ladder_climbs_replace_then_rollback(self):
        run = recovered_run()
        [attempt] = run.recovery.to_dict()["attempts"]
        rungs = [a["rung"] for a in attempt["watchdog_actions"]]
        # First fire tries re-placement (fail-stop assumption); the
        # fault is on the wire, so the second fire escalates.
        assert rungs == ["replace", "rollback"]
        assert all(a["cause"] == "stall" for a in attempt["watchdog_actions"])
        assert attempt["masked_fault"] == {
            "index": 0, "kind": "flaky_link", "at_us": 20.0,
        }

    def test_rollback_replays_from_a_pre_fault_checkpoint(self):
        run = recovered_run(retain=16)
        [attempt] = run.recovery.to_dict()["attempts"]
        resumed = attempt["resumed_from"]
        assert resumed is not None
        # Only checkpoints strictly preceding the masked injection are
        # valid replay targets.
        assert resumed["time_ps"] < 20.0 * 1e6

    def test_rollback_restarts_when_no_checkpoint_predates_fault(self):
        # retain=1 keeps only the newest snapshot, which postdates the
        # 20 us injection by the time the watchdog fires (~90 us).
        run = recovered_run(retain=1)
        report = run.recovery.to_dict()
        [attempt] = report["attempts"]
        assert attempt["resumed_from"] is None      # full masked restart
        assert report["final"]["delivered_ok"] is True

    def test_masked_injection_still_fires_but_takes_no_action(self):
        """Masking preserves the event trajectory: the injection event
        fires (keeping sequence allocation identical) but the fault
        takes no effect."""
        run = recovered_run()
        campaign = run.context.campaign
        assert campaign.masked == {0}
        masked_events = [
            e for e in campaign.events if e.get("masked")
        ]
        assert len(masked_events) == 1
        # No link ended up degraded in the recovered run.
        fabric = run.context.system.topology.fabric
        assert all(r.healthy for r in fabric.link_records)

    def test_watchdog_metrics_and_trace_recorded(self):
        run = recovered_run()
        watchdog = run.context.watchdog
        # The recovered (replayed) context's watchdog never fired — the
        # masked replay runs clean; the pre-rollback firing lives in the
        # attempt record instead.
        assert watchdog.checks > 0
        assert run.recovery.to_dict()["final"]["watchdog_fired"] == 0

    def test_rollback_budget_exhaustion_raises(self):
        run = ResumableRun(
            "watchdog_stream", dict(PARAMS),
            policy=CheckpointPolicy(every_us=6.0, retain=16),
            max_rollbacks=0,
        )
        with pytest.raises(CheckpointError, match="gave up after 0 rollbacks"):
            run.run()


class TestDeterminism:
    def test_recovery_report_is_byte_stable(self):
        """The acceptance bar: two identical configurations produce
        byte-identical recovery reports, ladder and all."""
        first = recovered_run().recovery
        second = recovered_run().recovery
        assert first.to_json() == second.to_json()

    def test_render_is_deterministic_and_complete(self):
        text = recovered_run().recovery.render()
        assert "recovery report: completed" in text
        assert "rollback #1" in text
        assert "masked flaky_link[0] @ 20.0 us" in text
        assert "watchdog replace" in text
        assert "watchdog rollback" in text
