"""The byte-identity property: snapshot + resume == uninterrupted run.

For each seeded workload we run an uninterrupted reference, then the
same configuration checkpointed and killed mid-run, resume it from the
newest bundle, and require the final report — energy report, metrics
snapshot, delivered payload, and a digest of the *entire* system state
tree — to be byte-for-byte identical.
"""

import pytest

from repro.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    CheckpointStore,
    ResumableRun,
    build_workload,
    canonical_json,
)

#: (workload, params, kill point) — the ≥3 seeded byte-identity cases,
#: including one with an armed FaultCampaign and one under watchdog
#: supervision with a mid-run injection.
CASES = [
    ("demo", {"seed": 5}, 5000),
    ("faults_stream", {"words": 12, "seed": 3}, 1500),
    ("faults_stream", {"words": 8, "seed": 11, "drop_rate": 0.10}, 900),
    ("watchdog_stream",
     {"words": 24, "seed": 0, "fault_at_us": 5000.0}, 2000),
]

IDS = [f"{name}-seed{params['seed']}-kill{kill}"
       for name, params, kill in CASES]


def reference_report(workload: str, params: dict) -> str:
    context = build_workload(workload, params)
    context.system.run()
    return canonical_json(context.final_report())


class TestByteIdentity:
    @pytest.mark.parametrize("workload,params,kill", CASES, ids=IDS)
    def test_kill_resume_matches_uninterrupted(
        self, tmp_path, workload, params, kill
    ):
        expected = reference_report(workload, params)

        run = ResumableRun(
            workload, params,
            policy=CheckpointPolicy(every_events=400, retain=3),
            store=CheckpointStore(tmp_path / "store", retain=3),
        )
        report = run.run(kill_after_events=kill)
        assert run.killed
        assert report.to_dict()["outcome"] == "killed"

        # Resume from disk — schema and digest validated on load.
        resumed = ResumableRun.resume(
            CheckpointStore(tmp_path / "store", retain=3).latest()
        )
        final = resumed.run()
        assert final.to_dict()["outcome"] == "completed"
        assert canonical_json(resumed.final_report()) == expected

    def test_resume_replays_through_verification(self, tmp_path):
        """Resume verifies the replay field-by-field before continuing."""
        run = ResumableRun(
            "faults_stream", {"words": 8, "seed": 1},
            policy=CheckpointPolicy(every_events=500, retain=2),
        )
        run.run(kill_after_events=1200)
        bundle = run.snapshots[-1]
        resumed = ResumableRun.resume(bundle)
        sim = resumed.context.system.sim
        assert sim.events_processed == bundle.events_processed
        assert sim.now == bundle.time_ps

    def test_resume_with_wrong_setup_fails_loudly(self):
        """A bundle whose recorded setup rebuilds a different trajectory
        must fail verification, not silently continue."""
        import json

        from repro.checkpoint import Snapshot, content_digest

        run = ResumableRun(
            "faults_stream", {"words": 8, "seed": 1},
            policy=CheckpointPolicy(every_events=500, retain=2),
        )
        run.run(kill_after_events=1200)
        payload = json.loads(run.snapshots[-1].to_json())
        # Forge a bundle: different seed in the setup, digest re-signed.
        payload["setup"]["params"]["seed"] = 2
        body = {k: v for k, v in payload.items() if k != "digest"}
        payload["digest"] = content_digest(body)
        forged = Snapshot.from_json(json.dumps(payload))
        with pytest.raises(Exception):
            ResumableRun.resume(forged)

    def test_setupless_bundle_is_not_resumable(self):
        context = build_workload("demo", {"seed": 5})
        context.system.sim.run(max_events=50)
        snapshot = context.capture()        # no setup recorded
        with pytest.raises(CheckpointError, match="no workload setup"):
            ResumableRun.resume(snapshot)
