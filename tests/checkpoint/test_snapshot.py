"""Tests for snapshot bundles: capture, serialisation, integrity."""

import json

import pytest

from repro.checkpoint import (
    SCHEMA_VERSION,
    BundleIntegrityError,
    CheckpointError,
    Snapshot,
    build_workload,
    canonical_json,
    content_digest,
)


def captured_context(events: int = 600):
    context = build_workload("faults_stream", {"words": 8, "seed": 1})
    context.system.sim.run(max_events=events)
    snapshot = context.capture(
        setup={"workload": "faults_stream", "params": {"words": 8, "seed": 1}}
    )
    return context, snapshot


class TestCapture:
    def test_capture_records_every_layer(self):
        _context, snapshot = captured_context()
        assert snapshot.schema == SCHEMA_VERSION
        assert snapshot.events_processed == 600
        assert snapshot.time_ps > 0
        state = snapshot.state
        assert set(state) == {"system", "campaign"}
        assert set(state["system"]) == {"sim", "cores", "fabric", "energy"}

    def test_capture_does_not_perturb_the_run(self):
        """Capturing mid-run must not change the final report."""
        plain = build_workload("faults_stream", {"words": 8, "seed": 1})
        plain.system.run()
        context, _snapshot = captured_context()
        context.system.run()
        assert (
            canonical_json(context.final_report())
            == canonical_json(plain.final_report())
        )

    def test_live_system_verifies_against_its_own_capture(self):
        context, snapshot = captured_context()
        context.verify(snapshot)       # no divergence, no raise

    def test_diverged_system_fails_verification(self):
        from repro.sim.state import StateMismatchError

        context, snapshot = captured_context()
        context.system.sim.run(max_events=1)
        # Which diverging field is reported first is an implementation
        # detail; that verification raises and names *a* path is not.
        with pytest.raises(StateMismatchError, match="system\\."):
            context.verify(snapshot)


class TestBundleIO:
    def test_roundtrip_is_byte_identical(self, tmp_path):
        _context, snapshot = captured_context()
        path = tmp_path / "bundle.json"
        snapshot.save(path)
        loaded = Snapshot.load(path)
        assert loaded.to_json() == snapshot.to_json()
        assert loaded.digest == snapshot.digest

    def test_digest_covers_the_body(self):
        _context, snapshot = captured_context()
        body = {k: v for k, v in snapshot.payload.items() if k != "digest"}
        assert snapshot.digest == content_digest(body)

    def test_tampered_state_rejected(self, tmp_path):
        _context, snapshot = captured_context()
        payload = json.loads(snapshot.to_json())
        payload["state"]["system"]["sim"]["events_processed"] += 1
        with pytest.raises(BundleIntegrityError, match="digest mismatch"):
            Snapshot.from_json(json.dumps(payload))

    def test_tampered_setup_rejected(self):
        _context, snapshot = captured_context()
        payload = json.loads(snapshot.to_json())
        payload["setup"]["params"]["seed"] = 999
        with pytest.raises(BundleIntegrityError):
            Snapshot.from_json(json.dumps(payload))

    def test_unsupported_schema_rejected(self):
        _context, snapshot = captured_context()
        payload = json.loads(snapshot.to_json())
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="schema"):
            Snapshot.from_json(json.dumps(payload))

    def test_non_bundle_rejected(self):
        with pytest.raises(CheckpointError, match="unparseable"):
            Snapshot.from_json("not json at all {")
        with pytest.raises(CheckpointError, match="no schema"):
            Snapshot.from_json('{"hello": "world"}')
