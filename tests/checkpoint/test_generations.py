"""Restart generations across checkpoint/resume with a mid-run kill.

A task's ``restarts`` counter is its generation: stale start events are
gated on it, so a resume that rewound (or re-healed) a generation would
double-start tasks.  These tests kill a ``policy_rt`` run *after* its
fault campaign has healed a core death, resume from the newest bundle,
and require generations to replay exactly and only ever grow.
"""

import json

from repro.checkpoint import (
    CheckpointPolicy,
    CheckpointStore,
    ResumableRun,
    build_workload,
    canonical_json,
)

#: least_loaded with budget 2 under a single early core kill: the heal
#: path has fired (two orphans re-placed) well before the kill point.
PARAMS = {
    "policy": "least_loaded",
    "k": 2,
    "seed": 1,
    "kills": 1,
    "kill_from_us": 5.0,
}


def bundle_generations(bundle) -> dict[int, int]:
    state = json.loads(bundle.to_json())["state"]
    return {
        task["task_id"]: task["restarts"]
        for task in state["nos"]["tasks"]
    }


class TestGenerationMonotonicity:
    def test_generations_survive_kill_and_resume(self, tmp_path):
        reference = build_workload("policy_rt", PARAMS)
        reference.system.run()
        final_generations = {
            task.task_id: task.restarts for task in reference.nos.tasks
        }
        assert reference.nos.replacements >= 1     # the kill bit something
        expected = canonical_json(reference.final_report())

        run = ResumableRun(
            "policy_rt", PARAMS,
            policy=CheckpointPolicy(every_events=5_000, retain=3),
            store=CheckpointStore(tmp_path / "store", retain=3),
        )
        run.run(kill_after_events=60_000)
        assert run.killed
        bundle = run.snapshots[-1]
        at_bundle = bundle_generations(bundle)
        # The bundle was cut after the heal: some generation already > 0.
        assert any(generation > 0 for generation in at_bundle.values())

        resumed = ResumableRun.resume(
            CheckpointStore(tmp_path / "store", retain=3).latest()
        )
        # Replay reproduced every generation exactly...
        replayed = {
            task.task_id: task.restarts
            for task in resumed.context.nos.tasks
        }
        assert replayed == at_bundle
        resumed.run()
        # ...and from there generations only ever grew.
        for task in resumed.context.nos.tasks:
            assert task.restarts >= at_bundle[task.task_id]
            assert task.restarts == final_generations[task.task_id]
        assert canonical_json(resumed.final_report()) == expected

    def test_resumed_run_heals_no_extra_cores(self, tmp_path):
        run = ResumableRun(
            "policy_rt", PARAMS,
            policy=CheckpointPolicy(every_events=5_000, retain=3),
            store=CheckpointStore(tmp_path / "store", retain=3),
        )
        run.run(kill_after_events=60_000)
        resumed = ResumableRun.resume(
            CheckpointStore(tmp_path / "store", retain=3).latest()
        )
        resumed.run()
        nos = resumed.context.nos
        assert len(nos.failed_cores) == PARAMS["kills"]
        assert nos.all_done
