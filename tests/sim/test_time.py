"""Tests for the time/frequency primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import F_500MHZ, Frequency, ms, ns, seconds, to_ns, to_seconds, us


class TestConversions:
    def test_ns_is_thousand_ps(self):
        assert ns(1) == 1_000

    def test_us_is_million_ps(self):
        assert us(1) == 1_000_000

    def test_ms(self):
        assert ms(2) == 2_000_000_000

    def test_seconds(self):
        assert seconds(1) == 10**12

    def test_fractional_ns_rounds(self):
        assert ns(1.5) == 1_500
        assert ns(0.0004) == 0  # sub-ps rounds to zero

    def test_roundtrip_ns(self):
        assert to_ns(ns(270)) == 270.0

    def test_roundtrip_seconds(self):
        assert to_seconds(seconds(3)) == 3.0


class TestFrequency:
    def test_500mhz_period_exact(self):
        assert F_500MHZ.period_ps == 2_000

    def test_250mhz_period_exact(self):
        assert Frequency.mhz(250).period_ps == 4_000

    def test_mhz_constructor(self):
        assert Frequency.mhz(500).hz == 500_000_000

    def test_megahertz_property(self):
        assert Frequency.mhz(71).megahertz == 71.0

    def test_cycles_to_ps(self):
        assert F_500MHZ.cycles_to_ps(3) == 6_000  # paper: 3 cycles = 6 ns

    def test_ps_to_cycles(self):
        assert F_500MHZ.ps_to_cycles(6_000) == 3
        assert F_500MHZ.ps_to_cycles(6_500) == 3  # truncates

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            Frequency(0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            Frequency(-1)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            F_500MHZ.cycles_to_ps(-1)

    def test_str(self):
        assert str(F_500MHZ) == "500 MHz"

    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=0, max_value=10**6))
    def test_cycles_roundtrip(self, hz, cycles):
        freq = Frequency(hz)
        assert freq.ps_to_cycles(freq.cycles_to_ps(cycles)) == cycles

    @given(st.integers(min_value=1, max_value=1000))
    def test_period_positive(self, mhz):
        assert Frequency.mhz(mhz).period_ps >= 1
