"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Process, SimulationError, Simulator, ns


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(10), lambda: fired.append(sim.now))
        sim.run()
        assert fired == [ns(10)]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(ns(30), lambda: order.append("c"))
        sim.schedule(ns(10), lambda: order.append("a"))
        sim.schedule(ns(20), lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(ns(10), lambda: order.append("first"))
        sim.schedule(ns(10), lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(ns(10), lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(ns(5), lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(ns(5), lambda: times.append(sim.now))

        sim.schedule(ns(10), first)
        sim.run()
        assert times == [ns(10), ns(15)]

    def test_run_returns_event_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(ns(i), lambda: None)
        assert sim.run() == 5
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(ns(10), lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(ns(10), lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(ns(10), lambda: None)
        handle = sim.schedule(ns(20), lambda: None)
        handle.cancel()
        assert sim.pending_events == 1

    def test_cancel_pending_reports_withdrawal(self):
        sim = Simulator()
        handle = sim.schedule(ns(10), lambda: None)
        assert handle.cancel() is True
        assert handle.cancel() is False     # second call withdrew nothing

    def test_cancel_after_execution_is_safe_noop(self):
        """A stale handle — e.g. a send-deadline timer kept across a
        checkpoint restore — must cancel as a no-op, not corrupt state."""
        sim = Simulator()
        fired = []
        handle = sim.schedule(ns(10), lambda: fired.append(sim.now))
        sim.run()
        assert handle.executed
        assert handle.cancel() is False
        assert not handle.cancelled         # it fired; it was never withdrawn
        assert fired == [ns(10)]
        # The no-op must not disturb kernel counters or later events.
        assert sim.events_processed == 1
        later = []
        sim.schedule(ns(5), lambda: later.append(True))
        assert sim.pending_events == 1
        sim.run()
        assert later == [True]

    def test_executed_flag_tracks_firing(self):
        sim = Simulator()
        first = sim.schedule(ns(10), lambda: None)
        second = sim.schedule(ns(20), lambda: None)
        assert not first.executed and not second.executed
        sim.step()
        assert first.executed and not second.executed
        sim.run()
        assert second.executed

    def test_cancelled_event_never_marked_executed(self):
        sim = Simulator()
        handle = sim.schedule(ns(10), lambda: None)
        handle.cancel()
        sim.run()
        assert handle.cancelled and not handle.executed


class TestNextEventTime:
    def test_peeks_without_executing(self):
        sim = Simulator()
        sim.schedule(ns(10), lambda: None)
        assert sim.next_event_time() == ns(10)
        assert sim.events_processed == 0
        assert sim.now == 0

    def test_skips_cancelled_heads(self):
        sim = Simulator()
        head = sim.schedule(ns(5), lambda: None)
        sim.schedule(ns(10), lambda: None)
        head.cancel()
        assert sim.next_event_time() == ns(10)

    def test_idle_queue_returns_none(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        handle = sim.schedule(ns(10), lambda: None)
        handle.cancel()
        assert sim.next_event_time() is None


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(10), lambda: fired.append(10))
        sim.schedule(ns(30), lambda: fired.append(30))
        sim.run_until(ns(20))
        assert fired == [10]
        assert sim.now == ns(20)

    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(20), lambda: fired.append(20))
        sim.run_until(ns(20))
        assert fired == [20]

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(ns(100))
        assert sim.now == ns(100)
        sim.run_for(ns(100))
        assert sim.now == ns(200)

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(ns(100))
        with pytest.raises(SimulationError):
            sim.run_until(ns(50))

    def test_remaining_events_fire_on_later_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(ns(30), lambda: fired.append(30))
        sim.run_until(ns(10))
        sim.run()
        assert fired == [30]


class TestProcess:
    def test_process_advances_time(self):
        sim = Simulator()
        times = []

        def body():
            times.append(sim.now)
            yield ns(100)
            times.append(sim.now)
            yield ns(50)
            times.append(sim.now)

        Process(sim, body())
        sim.run()
        assert times == [0, ns(100), ns(150)]

    def test_process_finishes(self):
        sim = Simulator()

        def body():
            yield ns(1)

        proc = Process(sim, body())
        sim.run()
        assert proc.finished

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def body():
            yield "not a delay"

        Process(sim, body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def maker(name, step):
            def body():
                for _ in range(3):
                    log.append((sim.now, name))
                    yield step
            return body

        Process(sim, maker("a", ns(10))())
        Process(sim, maker("b", ns(15))())
        sim.run()
        assert log == [
            (0, "a"), (0, "b"),
            (ns(10), "a"), (ns(15), "b"),
            (ns(20), "a"), (ns(30), "b"),
        ]
