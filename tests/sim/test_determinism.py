"""Property-based determinism tests of the event kernel.

Determinism is the simulator's load-bearing invariant (it stands in for
the hardware's time-deterministic execution): any schedule of events —
including ties, cancellations, and nested scheduling — must replay
identically.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator

#: A scripted scheduling action: (delay, payload, cancel_index | None).
actions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=99),
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    ),
    min_size=1,
    max_size=30,
)


def run_script(script):
    """Execute a scheduling script; return the observable trace."""
    sim = Simulator()
    log = []
    handles = []

    def make_event(payload, nested_delay):
        def fire():
            log.append((sim.now, payload))
            if nested_delay is not None and nested_delay % 3 == 0:
                sim.schedule(nested_delay * 10, lambda: log.append((sim.now, -payload)))
        return fire

    for delay, payload, cancel in script:
        handle = sim.schedule(delay, make_event(payload, cancel))
        handles.append(handle)
        if cancel is not None and cancel < len(handles):
            handles[cancel].cancel()
    sim.run()
    return tuple(log), sim.now, sim.events_processed


class TestKernelDeterminism:
    @given(actions)
    def test_replay_is_identical(self, script):
        assert run_script(script) == run_script(script)

    @given(actions)
    def test_time_is_monotone(self, script):
        log, _, _ = run_script(script)
        times = [t for t, _ in log]
        assert times == sorted(times)

    @given(actions)
    def test_ties_fire_in_schedule_order(self, script):
        """Among same-delay events, earlier scheduling fires first."""
        sim = Simulator()
        order = []
        for index, (delay, _, _) in enumerate(script):
            sim.schedule(500, lambda i=index: order.append(i))
        sim.run()
        assert order == sorted(order)


class TestObservabilityDeterminism:
    """Identical configs must yield byte-identical snapshots and exports."""

    @staticmethod
    def _run_demo(seed: int):
        from repro.__main__ import _demo_workload
        from repro import SwallowSystem

        system = SwallowSystem()
        recorder = system.trace()
        _demo_workload(system, seed=seed)
        system.run()
        return system, recorder

    def test_metric_snapshots_byte_identical(self):
        first, _ = self._run_demo(seed=11)
        second, _ = self._run_demo(seed=11)
        a = first.metrics_snapshot().to_json()
        b = second.metrics_snapshot().to_json()
        assert a == b
        assert len(a) > 2  # not trivially empty

    def test_trace_exports_byte_identical(self):
        _, first = self._run_demo(seed=11)
        _, second = self._run_demo(seed=11)
        assert first.to_chrome_trace_json() == second.to_chrome_trace_json()
        assert first.to_jsonl() == second.to_jsonl()

    def test_different_seeds_diverge(self):
        first, _ = self._run_demo(seed=11)
        second, _ = self._run_demo(seed=12)
        assert (
            first.metrics_snapshot().to_json()
            != second.metrics_snapshot().to_json()
        )


class TestSystemDeterminism:
    def test_full_machine_digest_stable(self):
        """A loaded multi-slice machine replays to an identical trace."""
        from repro.board import build_machine
        from repro.sim import TraceRecorder
        from repro.xs1 import assemble

        def run_once():
            sim = Simulator()
            machine = build_machine(sim, slices_x=2)
            tracer = TraceRecorder(kinds={"issue"})
            program = assemble("""
                ldc r0, 50
            loop:
                subi r0, r0, 1
                bt r0, loop
                freet
            """)
            for board in machine.slices:
                for core in board.cores[:4]:
                    core.tracer = tracer
                    core.spawn(program)
            sim.run()
            return tracer.digest(), sim.now, sim.events_processed

        assert run_once() == run_once()
