"""Tests for trace recording."""

from repro.sim import NullTracer, TraceRecorder


class TestTraceRecorder:
    def test_records_in_order(self):
        tracer = TraceRecorder()
        tracer.record(100, "core0", "issue", "ADD")
        tracer.record(200, "core0", "issue", "SUB")
        assert [r.kind for r in tracer] == ["issue", "issue"]
        assert [r.time_ps for r in tracer] == [100, 200]

    def test_kind_filter_at_record_time(self):
        tracer = TraceRecorder(kinds={"issue"})
        tracer.record(1, "core0", "issue")
        tracer.record(2, "core0", "token")
        assert len(tracer) == 1

    def test_capacity_keeps_newest_and_counts_drops(self):
        """A full recorder behaves as a flight recorder: oldest evicted."""
        tracer = TraceRecorder(capacity=2)
        for t in range(5):
            tracer.record(t, "x", "k")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [r.time_ps for r in tracer] == [3, 4]

    def test_repr_surfaces_drops(self):
        tracer = TraceRecorder(capacity=1)
        tracer.record(1, "x", "k")
        tracer.record(2, "x", "k")
        assert "1/1" in repr(tracer) and "1 dropped" in repr(tracer)
        assert tracer.stats() == {"records": 1, "capacity": 1, "dropped": 1}

    def test_unbounded_repr(self):
        tracer = TraceRecorder()
        tracer.record(1, "x", "k")
        assert "1/inf" in repr(tracer)
        assert tracer.capacity is None

    def test_invalid_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_filter_by_source_and_kind(self):
        tracer = TraceRecorder()
        tracer.record(1, "a", "x")
        tracer.record(2, "b", "x")
        tracer.record(3, "a", "y")
        assert len(tracer.filter(kind="x")) == 2
        assert len(tracer.filter(source="a")) == 2
        assert len(tracer.filter(kind="x", source="a")) == 1

    def test_filter_predicate(self):
        tracer = TraceRecorder()
        tracer.record(1, "a", "x", 5)
        tracer.record(2, "a", "x", 50)
        hits = tracer.filter(predicate=lambda r: r.detail[0] > 10)
        assert len(hits) == 1

    def test_first_and_last(self):
        tracer = TraceRecorder()
        tracer.record(1, "a", "x")
        tracer.record(9, "a", "x")
        assert tracer.first("x").time_ps == 1
        assert tracer.last("x").time_ps == 9
        assert tracer.first("missing") is None

    def test_digest_is_stable(self):
        t1, t2 = TraceRecorder(), TraceRecorder()
        for t in (t1, t2):
            t.record(1, "a", "x", "p")
        assert t1.digest() == t2.digest()

    def test_digest_differs_on_content(self):
        t1, t2 = TraceRecorder(), TraceRecorder()
        t1.record(1, "a", "x")
        t2.record(2, "a", "x")
        assert t1.digest() != t2.digest()

    def test_clear(self):
        tracer = TraceRecorder(capacity=1)
        tracer.record(1, "a", "x")
        tracer.record(2, "a", "x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_str_render(self):
        tracer = TraceRecorder()
        tracer.record(1, "core0", "issue", "ADD")
        text = str(tracer[0])
        assert "core0" in text and "ADD" in text


class TestNullTracer:
    def test_drops_everything(self):
        tracer = NullTracer()
        tracer.record(1, "a", "x")
        assert len(tracer) == 0
