"""Full-scale smoke tests: the 480-core machine builds and runs."""

import pytest

from repro.analysis import system_gips
from repro.board import build_machine, system_power_w
from repro.network.routing import Layer
from repro.sim import Simulator, us
from repro.xs1 import BehavioralThread, RecvWord, SendWord


class TestLargestMachine:
    @pytest.fixture(scope="class")
    def machine(self):
        sim = Simulator()
        return build_machine(sim, slices_x=5, slices_y=6)

    def test_480_cores_build(self, machine):
        assert len(machine.cores) == 480
        assert machine.topology.num_slices == 30

    def test_headline_figures_hold_at_scale(self, machine):
        assert system_gips(len(machine.cores)) == pytest.approx(240.0)
        assert system_power_w(machine.topology.num_slices) == pytest.approx(
            134, rel=0.02
        )

    def test_corner_to_corner_transfer(self, machine):
        """A word crosses the whole 20x12 package grid."""
        topo = machine.topology
        src = topo.node_at(0, 0, Layer.VERTICAL)
        dst = topo.node_at(topo.packages_x - 1, topo.packages_y - 1,
                           Layer.HORIZONTAL)
        tx = machine.core_at_node(src).allocate_chanend()
        rx = machine.core_at_node(dst).allocate_chanend()
        tx.set_dest(rx.address)
        got = []

        def sender():
            yield SendWord(tx, 0x5CA1E)

        def receiver():
            got.append((yield RecvWord(rx)))

        BehavioralThread(machine.core_at_node(src), sender())
        BehavioralThread(machine.core_at_node(dst), receiver())
        machine.sim.run()
        assert got == [0x5CA1E]

    def test_idle_energy_at_scale(self, machine):
        machine.sim.run_for(us(10))
        energy = machine.accounting.total_energy_j()
        # 480 idle cores at 113 mW + support: ~0.8 W x 10 us (order check).
        assert energy > 480 * 0.100 * 10e-6
        assert energy < 480 * 0.300 * 10e-6
