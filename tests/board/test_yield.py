"""Tests for the manufacturing-yield model."""

import pytest

from repro.board import (
    CONNECTOR_FAILURE_P,
    MANUFACTURED_SLICES,
    USABLE_SLICES,
    expected_usable,
    largest_machine_cores,
    manufacturing_run,
    usable_slices,
)


class TestCalibration:
    def test_expected_usable_matches_paper(self):
        """A 40-board run yields 30 usable boards in expectation."""
        assert expected_usable() == pytest.approx(USABLE_SLICES, rel=1e-9)

    def test_failure_probability_sane(self):
        assert 0 < CONNECTOR_FAILURE_P < 0.05


class TestRuns:
    def test_deterministic_given_seed(self):
        assert manufacturing_run(seed=7) == manufacturing_run(seed=7)

    def test_different_seeds_differ(self):
        runs = {usable_slices(manufacturing_run(seed=s)) for s in range(20)}
        assert len(runs) > 1

    def test_default_run_near_paper_outcome(self):
        """Across seeds, the mean usable count should hover near 30/40."""
        counts = [usable_slices(manufacturing_run(seed=s)) for s in range(50)]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(USABLE_SLICES, abs=1.5)

    def test_largest_machine_cores(self):
        outcomes = manufacturing_run(seed=3)
        assert largest_machine_cores(outcomes) == usable_slices(outcomes) * 16
        assert largest_machine_cores(outcomes) <= MANUFACTURED_SLICES * 16

    def test_zero_failure_rate_perfect_yield(self):
        outcomes = manufacturing_run(failure_p=0.0)
        assert usable_slices(outcomes) == MANUFACTURED_SLICES

    def test_certain_failure_rate_zero_yield(self):
        outcomes = manufacturing_run(failure_p=1.0)
        assert usable_slices(outcomes) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            manufacturing_run(slices=-1)
        with pytest.raises(ValueError):
            manufacturing_run(failure_p=1.5)
