"""Tests for the §III.A power roll-up."""

import pytest

from repro.board import headline_figures, slice_power, system_power_w


class TestSlicePower:
    def test_core_power_matches_paper_3_1w(self):
        report = slice_power()
        assert report.core_power_w == pytest.approx(3.1, rel=0.02)

    def test_total_matches_paper_4_5w(self):
        assert slice_power().total_w == pytest.approx(4.5, rel=0.02)

    def test_per_core_system_view(self):
        """Paper quotes "equivalent to 260 mW/core" for the 4.5 W slice.

        4.5 W / 16 is actually 281 mW (a known paper inconsistency); we
        assert our roll-up sits between the two published figures.
        """
        per_core = slice_power().per_core_mw
        assert 255 <= per_core <= 290

    def test_idle_slice_draws_less(self):
        assert slice_power(utilization=0.0).total_w < slice_power().total_w

    def test_partial_population(self):
        half = slice_power(active_cores=8)
        full = slice_power(active_cores=16)
        assert half.total_w < full.total_w
        # Idle cores still burn static power: more than half of full.
        assert half.total_w > full.total_w / 2

    def test_frequency_scaling_reduces_power(self):
        assert slice_power(f_mhz=71).total_w < slice_power(f_mhz=500).total_w

    def test_within_board_rating(self):
        """A fully loaded slice stays under its 5 W rating (paper §IV-B)."""
        assert slice_power().total_w <= 5.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            slice_power(active_cores=17)
        with pytest.raises(ValueError):
            slice_power(smps_efficiency=0)


class TestSystemPower:
    def test_480_core_machine_is_about_134w(self):
        assert system_power_w(30) == pytest.approx(134.0, rel=0.02)

    def test_scales_linearly_in_slices(self):
        assert system_power_w(8) == pytest.approx(system_power_w(4) * 2, rel=1e-9)

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError):
            system_power_w(0)


class TestHeadlineFigures:
    def test_keys_present(self):
        figures = headline_figures()
        assert figures["core_max_mw"] == pytest.approx(196, abs=1)
        assert figures["slice_total_w"] == pytest.approx(4.5, rel=0.02)
        assert figures["system_480_cores_w"] == pytest.approx(134, rel=0.02)
