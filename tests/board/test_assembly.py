"""Tests for machine assembly."""

import pytest

from repro.board import build_machine, build_stack
from repro.sim import Simulator, us


class TestSingleSlice:
    def test_sixteen_cores(self):
        machine = build_machine(Simulator())
        assert len(machine.cores) == 16

    def test_eight_chips(self):
        machine = build_machine(Simulator())
        assert len(machine.slices[0].chips) == 8

    def test_one_measurement_board_per_slice(self):
        machine = build_machine(Simulator(), slices_x=2)
        assert len(machine.slices) == 2
        assert all(board.measurement is not None for board in machine.slices)
        assert machine.slices[0].measurement is not machine.slices[1].measurement

    def test_cores_attached_to_network_nodes(self):
        machine = build_machine(Simulator())
        node_ids = {core.node_id for core in machine.cores}
        assert node_ids == set(machine.topology.node_ids())

    def test_core_at_node_lookup(self):
        machine = build_machine(Simulator())
        assert machine.core_at_node(5).node_id == 5
        with pytest.raises(KeyError):
            machine.core_at_node(999)

    def test_slice_board_lookup(self):
        machine = build_machine(Simulator(), slices_x=2, slices_y=2)
        assert machine.slice_board(1, 1).sx == 1
        with pytest.raises(KeyError):
            machine.slice_board(5, 5)


class TestStack:
    def test_fig1_stack_is_128_cores(self):
        """Fig. 1: an eight board, 128 core stack."""
        machine = build_stack(Simulator(), boards=8)
        assert len(machine.cores) == 128
        assert machine.topology.slices_y == 8

    def test_accounting_spans_machine(self):
        sim = Simulator()
        machine = build_stack(sim, boards=2)
        sim.run_for(us(10))
        assert len(machine.accounting.trackers) == 32
        assert machine.accounting.total_energy_j() > 0

    def test_measurement_board_reads_idle_power(self):
        sim = Simulator()
        machine = build_machine(sim)
        sim.run_for(us(50))
        reading = machine.slices[0].measurement.sample_channel(0)
        assert reading > 0
