"""Smoke tests: every example must run to completion and produce its
advertised output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "dot product on core 0: 120" in out
        assert "[0, 1, 4, 9]" in out
        assert "Energy report" in out

    def test_placement_ladder(self, capsys):
        out = run_example("placement_ladder", capsys)
        for placement in ("same-core", "same-package", "same-slice", "cross-slice"):
            assert placement in out

    def test_energy_aware_pipeline(self, capsys):
        out = run_example("energy_aware_pipeline", capsys)
        assert "watchpoint fired" in out
        assert "stepping cores 0-3 down to 250 MHz" in out
        assert "cross-core flow arrows" in out
        assert "byte-identical: True" in out

    def test_self_measuring_governor(self, capsys):
        out = run_example("self_measuring_governor", capsys)
        assert "over budget" in out
        assert "adjustments" in out

    def test_dvfs_exploration(self, capsys):
        out = run_example("dvfs_exploration", capsys)
        assert "P = (46.0 + 0.300 f) mW" in out

    def test_ethernet_boot_and_stream(self, capsys):
        out = run_example("ethernet_boot_and_stream", capsys)
        assert "host received 12 result words" in out

    def test_network_characterization(self, capsys):
        out = run_example("network_characterization", capsys)
        assert "bit-complement" in out
        assert "E/C =   512" in out

    def test_event_driven_server(self, capsys):
        out = run_example("event_driven_server", capsys)
        assert "server handled 8 requests" in out
        assert "sum 10 (expect 10)" in out

    def test_resumable_campaign(self, capsys):
        out = run_example("resumable_campaign", capsys)
        assert "byte-identical to uninterrupted run: True" in out
        assert "rollback #1" in out
        assert "24/24 words delivered, intact" in out

    def test_farm_dse_sweep(self, capsys):
        out = run_example("farm_dse_sweep", capsys)
        assert "simulated 8 jobs, 0 cache hits" in out
        assert "pareto" in out
        assert "K" in out  # knee of the energy-vs-time front
        assert "8 cache hits (100% hit rate)" in out
        assert "cached results identical to simulated ones: True" in out

    def test_dse_pareto(self, capsys):
        out = run_example("dse_pareto", capsys)
        assert "6 design points" in out
        assert "pareto front: 6/6 points non-dominated" in out
        assert "* front   K knee   . dominated" in out
        assert "pareto front: 3/6 points non-dominated" in out
        assert "dominated by" in out
        assert "(100% hit rate)" in out
        assert "report byte-identical: True" in out
        assert "front byte-identical: True" in out

    def test_fault_tolerant_pipeline(self, capsys):
        out = run_example("fault_tolerant_pipeline", capsys)
        assert "fault campaign (seed 42)" in out
        assert "24/24 words delivered, intact" in out
        assert "map job:  done, results correct" in out
