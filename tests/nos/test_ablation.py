"""The policy-zoo ablation harness: matrix shape, scoring, byte identity."""

import json

from repro.nos.ablation import (
    SCHEMA,
    ablation_matrix,
    render,
    report_json,
    run_ablation,
    run_cell,
)

SMALL = dict(
    policies=("least_loaded", "kfault"),
    campaigns=({"seed": 1, "kills": 1, "kill_from_us": 5.0,
                "kill_every_us": 5.0},),
    ks=(1,),
)


class TestMatrix:
    def test_campaign_axis_bundles_into_params(self):
        matrix = ablation_matrix(**SMALL)
        jobs = matrix.jobs()
        assert len(jobs) == 2
        for spec in jobs:
            assert spec.workload == "policy_rt"
            assert "campaign" not in spec.params
            assert spec.params["seed"] == 1
            assert spec.params["kills"] == 1
            assert spec.params["k"] == 1

    def test_base_params_reach_every_job(self):
        matrix = ablation_matrix(base={"tasks": 8}, **SMALL)
        assert all(spec.params["tasks"] == 8 for spec in matrix.jobs())

    def test_matrix_order_is_deterministic(self):
        first = [spec.job_id for spec in ablation_matrix().jobs()]
        second = [spec.job_id for spec in ablation_matrix().jobs()]
        assert first == second
        assert len(first) == 7 * 3 * 3


class TestScoring:
    def test_cell_scores_all_three_axes(self):
        spec = ablation_matrix(**SMALL).jobs()[0]
        cell = run_cell(spec)
        assert cell["policy"] in ("least_loaded", "kfault")
        assert isinstance(cell["survived"], bool)
        assert cell["miss_rate"] is not None
        assert cell["energy_j"] > 0
        assert cell["deadline"]["hit"] + cell["deadline"]["miss"] > 0
        assert cell["job_id"] == spec.job_id

    def test_budget_exhaustion_scores_as_failure(self):
        matrix = ablation_matrix(
            policies=("least_loaded",),
            campaigns=({"seed": 1, "kills": 2, "kill_from_us": 5.0,
                        "kill_every_us": 5.0},),
            ks=(1,),
        )
        cell = run_cell(matrix.jobs()[0])
        assert cell["survived"] is False
        assert "fault budget exhausted" in cell["failure"]


class TestReport:
    def test_report_is_byte_identical_across_runs(self):
        first = run_ablation(**SMALL)
        second = run_ablation(**SMALL)
        assert first["digest"] == second["digest"]
        assert report_json(first) == report_json(second)

    def test_report_shape_and_summary(self):
        report = run_ablation(**SMALL)
        assert report["schema"] == SCHEMA
        assert len(report["cells"]) == 2
        assert sorted(report["summary"]) == ["kfault", "least_loaded"]
        kfault = report["summary"]["kfault"]
        assert kfault["cells"] == 1 and kfault["survived"] == 1
        parsed = json.loads(report_json(report))
        assert parsed["digest"] == report["digest"]
        rendered = render(report)
        assert "kfault" in rendered and "least_loaded" in rendered


class TestCLI:
    def test_policies_command_writes_canonical_report(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "zoo.json"
        code = main([
            "policies", "--policies", "kfault", "--ks", "1",
            "--campaigns", "1", "--tasks", "8", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == SCHEMA
        assert [cell["policy"] for cell in report["cells"]] == ["kfault"]
        assert "kfault" in capsys.readouterr().out
