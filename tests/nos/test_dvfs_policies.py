"""DVFS policies: ladder arithmetic, rescaling, watchpoint throttling."""

from repro import Compute, NanoOS, SwallowSystem
from repro.checkpoint.workloads import build_workload
from repro.energy.dvfs import LADDER_MHZ, ladder_clamp, min_voltage
from repro.nos.policies import (
    CycleConservingDVFS,
    LookAheadDVFS,
    ThresholdDVFS,
)
from repro.nos.policies.base import DVFSPolicy

import pytest


def compute_task(instructions: int = 5_000):
    def factory(core):
        def body():
            yield Compute(instructions)
        return body()
    return factory


class TestLadder:
    def test_clamp_picks_smallest_sufficient_rung(self):
        assert ladder_clamp(0.0) == 71.0
        assert ladder_clamp(71.0) == 71.0
        assert ladder_clamp(72.0) == 125.0
        assert ladder_clamp(300.0) == 375.0
        assert ladder_clamp(9_999.0) == 500.0

    def test_ladder_must_ascend(self):
        from repro.nos.policies import PolicyError
        with pytest.raises(PolicyError):
            DVFSPolicy(ladder_mhz=(500.0, 71.0))

    def test_rungs_pair_with_safe_voltages(self):
        for rung in LADDER_MHZ:
            assert 0.6 <= min_voltage(rung) <= 0.95


class TestCycleConserving:
    def test_idle_machine_parks_at_the_bottom(self):
        system = SwallowSystem(metrics=False)
        dvfs = CycleConservingDVFS()
        NanoOS(system, dvfs=dvfs)
        assert dvfs.current_mhz == 71.0
        assert system.cores[0].frequency.megahertz == pytest.approx(71.0)
        assert system.cores[0].voltage == pytest.approx(min_voltage(71.0))

    def test_demand_steps_the_whole_machine_up(self):
        system = SwallowSystem(metrics=False)
        dvfs = CycleConservingDVFS()
        nos = NanoOS(system, dvfs=dvfs)
        # 100k cycles over a 500 us deadline = 200 MHz demand -> 250 rung.
        nos.submit(compute_task(25_000), deadline_us=500.0,
                   wcet_cycles=100_000)
        assert dvfs.current_mhz == 250.0
        for core in system.cores:
            assert core.frequency.megahertz == pytest.approx(250.0)

    def test_finish_rescales_back_down(self):
        system = SwallowSystem(metrics=False)
        dvfs = CycleConservingDVFS()
        nos = NanoOS(system, dvfs=dvfs)
        nos.submit(compute_task(25_000), deadline_us=250.0,
                   wcet_cycles=100_000)
        high = dvfs.current_mhz
        system.run()
        assert high > dvfs.current_mhz == 71.0
        assert dvfs.steps >= 2
        times = [step["time_ps"] for step in dvfs.step_log]
        assert times == sorted(times)

    def test_scaling_trades_power_for_makespan_without_missing(self):
        """The power/deadline trade the ablation scores: CC-EDF runs the
        same seeded task set slower and longer, cutting average power
        while every deadline still holds."""
        params = {"policy": "ccedf", "k": 0, "seed": 1, "kills": 0}
        scaled = build_workload("policy_rt", params)
        scaled.system.run()
        full = build_workload("policy_rt", {**params, "policy": "edf"})
        full.system.run()
        assert scaled.nos.deadline_counts()["miss"] == 0
        assert full.nos.deadline_counts()["miss"] == 0
        assert scaled.nos.dvfs.steps > 0
        assert scaled.system.sim.now > full.system.sim.now

        def average_mw(context):
            joules = context.system.energy_report().total_energy_j
            return joules / (context.system.sim.now / 1e12) * 1e3

        assert average_mw(scaled) < average_mw(full)


class TestLookAhead:
    def test_attach_starts_at_the_bottom(self):
        system = SwallowSystem(metrics=False)
        dvfs = LookAheadDVFS()
        NanoOS(system, dvfs=dvfs)
        assert dvfs.current_mhz == 71.0

    def test_dense_prefix_forces_a_high_rung(self):
        system = SwallowSystem(metrics=False)
        dvfs = LookAheadDVFS()
        nos = NanoOS(system, dvfs=dvfs)
        # 200k cycles due in 450 us: ~445 MHz density -> top rung.
        nos.submit(compute_task(50_000), deadline_us=450.0,
                   wcet_cycles=200_000)
        assert dvfs.current_mhz == 500.0
        system.run()
        assert dvfs.current_mhz == 71.0

    def test_snapshot_state_shape(self):
        system = SwallowSystem(metrics=False)
        dvfs = LookAheadDVFS()
        nos = NanoOS(system, dvfs=dvfs)
        nos.submit(compute_task(5_000), deadline_us=500.0,
                   wcet_cycles=20_000)
        system.run()
        state = dvfs.snapshot_state()
        assert state["name"] == "laedf"
        assert state["current_mhz"] == 71.0
        assert state["steps"] == len(state["step_log"]) == dvfs.steps


class TestThreshold:
    def test_watchpoint_throttles_under_the_budget(self):
        context = build_workload("policy_rt", {
            "policy": "threshold", "k": 0, "seed": 1, "kills": 0,
        })
        context.system.run()
        dvfs = context.nos.dvfs
        assert dvfs.watchpoint.firings
        assert dvfs.steps > 0
        assert dvfs.current_mhz < 500.0
        state = dvfs.snapshot_state()
        assert state["name"] == "threshold"
        assert state["firings"] == len(dvfs.watchpoint.firings)

    def test_dvfs_steps_metric_published(self):
        system = SwallowSystem()
        dvfs = CycleConservingDVFS()
        nos = NanoOS(system, dvfs=dvfs)
        nos.submit(compute_task(25_000), deadline_us=250.0,
                   wcet_cycles=100_000)
        nos.register_metrics(system.metrics)
        system.run()
        snapshot = system.metrics_snapshot()
        assert snapshot.value("nos.dvfs_steps", policy="ccedf") == dvfs.steps
