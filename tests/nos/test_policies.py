"""Scheduler policies: placement keys, deadline accounting, metrics."""

from repro import Compute, NanoOS, SwallowSystem
from repro.nos.policies import (
    EDFPolicy,
    LeastLoadedPolicy,
    PolicyError,
    RMPolicy,
    SchedulerPolicy,
    build_policy,
)
from repro.nos.policies.base import NO_DEADLINE_PS

import pytest


def compute_task(instructions: int = 5_000):
    def factory(core):
        def body():
            yield Compute(instructions)
        return body()
    return factory


class TestZoo:
    def test_build_policy_covers_the_zoo(self):
        for name in (
            "least_loaded", "edf", "rm", "ccedf", "laedf", "kfault",
            "threshold",
        ):
            scheduler, dvfs = build_policy(name, k=1)
            assert isinstance(scheduler, SchedulerPolicy)
            wants_dvfs = name in ("ccedf", "laedf", "threshold")
            assert (dvfs is not None) == wants_dvfs

    def test_build_policy_rejects_unknown(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            build_policy("round_robin")

    def test_base_choose_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SchedulerPolicy().choose(None, [])


class TestLeastLoaded:
    def test_matches_legacy_placement(self):
        """Least-loaded with node-id tie-break — the pre-seam behavior."""
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, policy=LeastLoadedPolicy())
        nodes = [nos.submit(compute_task()).core.node_id for _ in range(16)]
        assert nodes == list(range(16))
        assert nos.submit(compute_task()).core.node_id == 0


class TestEDF:
    def test_urgent_cores_are_picked_last(self):
        """EDF steers new work away from cores hosting tight deadlines."""
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, policy=EDFPolicy())
        urgent = nos.submit(compute_task(), deadline_us=10.0)
        assert urgent.core.node_id == 0
        for _ in range(15):
            nos.submit(compute_task())
        # Every core now holds one task; node 0's is the most urgent, so
        # under equal load EDF places the 17th task anywhere *but* there
        # (least-loaded would wrap back to node 0).
        assert nos.submit(compute_task()).core.node_id == 1

    def test_no_deadline_means_least_loaded(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, policy=EDFPolicy())
        nodes = [nos.submit(compute_task()).core.node_id for _ in range(4)]
        assert nodes == [0, 1, 2, 3]


class TestRM:
    def test_short_period_cores_are_picked_last(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, policy=RMPolicy())
        hot = nos.submit(compute_task(), period_us=50.0)
        assert hot.core.node_id == 0
        for _ in range(15):
            nos.submit(compute_task(), period_us=500.0)
        assert nos.submit(compute_task()).core.node_id == 1


class TestDeadlineAccounting:
    def test_hit_miss_and_pending(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, spans=True)
        # 5k instructions = 20k cycles = 40 us at 500 MHz.
        hit = nos.submit(compute_task(5_000), deadline_us=1_000.0)
        miss = nos.submit(compute_task(5_000), deadline_us=10.0)
        free = nos.submit(compute_task(5_000))
        assert nos.deadline_status(hit) == "pending"
        system.run()
        assert nos.deadline_status(hit) == "hit"
        assert nos.deadline_status(miss) == "miss"
        assert nos.deadline_status(free) is None
        assert nos.deadline_counts() == {
            "hit": 1, "miss": 1, "shed": 0, "pending": 0,
        }
        assert hit.finish_time_ps is not None
        assert hit.deadline_ps == NO_DEADLINE_PS or hit.deadline_ps > 0

    def test_running_past_deadline_already_misses(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        late = nos.submit(compute_task(50_000), deadline_us=10.0)
        system.run_for_us(50.0)
        assert not late.done
        assert nos.deadline_status(late) == "miss"

    def test_period_backs_the_deadline(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        handle = nos.submit(compute_task(5_000), period_us=1_000.0)
        system.run()
        assert nos.deadline_status(handle) == "hit"

    def test_spans_annotated_with_policy_and_verdict(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, spans=True, policy=EDFPolicy())
        handle = nos.submit(compute_task(5_000), deadline_us=1_000.0)
        system.run()
        assert handle.span.annotations["policy"] == "edf"
        assert handle.span.annotations["deadline"] == "hit"
        assert handle.span.to_dict()["annotations"]["deadline"] == "hit"

    def test_deadline_metrics_registered(self):
        system = SwallowSystem()
        nos = NanoOS(system)
        nos.submit(compute_task(5_000), deadline_us=1_000.0)
        nos.submit(compute_task(5_000), deadline_us=10.0)
        nos.register_metrics(system.metrics)
        system.run()
        snapshot = system.metrics_snapshot()
        assert snapshot.value("nos.deadline_hit", policy="least_loaded") == 1
        assert snapshot.value("nos.deadline_miss", policy="least_loaded") == 1
        assert snapshot.value("nos.deadline_shed", policy="least_loaded") == 0
        assert snapshot.value("nos.replacements", policy="least_loaded") == 0


class TestSnapshotState:
    def test_policy_and_deadline_fields_ride_the_snapshot(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, policy=EDFPolicy())
        nos.submit(compute_task(5_000), deadline_us=100.0, criticality=2)
        system.run()
        state = nos.snapshot_state()
        assert state["policy"]["name"] == "edf"
        assert state["dvfs"] is None
        assert state["shed"] == []
        task = state["tasks"][0]
        assert task["criticality"] == 2
        assert task["deadline_ps"] is not None
        assert task["finish_time_ps"] is not None
        assert task["shed"] is False
