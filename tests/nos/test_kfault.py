"""The k-fault guarantee: backup slots, replacement, graceful shedding."""

from repro import Compute, NanoOS, SwallowSystem
from repro.checkpoint.snapshot import canonical_json
from repro.checkpoint.workloads import build_workload
from repro.nos.policies import KFaultPolicy

import pytest


def compute_task(instructions: int = 5_000):
    def factory(core):
        def body():
            yield Compute(instructions)
        return body()
    return factory


def run_campaign(policy: str, k: int, kills: int, seed: int = 1) -> dict:
    """One seeded policy_rt cell; returns the post-run NanoOS snapshot."""
    context = build_workload("policy_rt", {
        "policy": policy,
        "k": k,
        "seed": seed,
        "kills": kills,
        "kill_from_us": 5.0,
        "kill_every_us": 5.0,
    })
    context.system.run()
    return context.nos.snapshot_state()


class TestBackupSlots:
    def test_backups_are_disjoint_from_the_primary(self):
        system = SwallowSystem(metrics=False)
        policy = KFaultPolicy(k=2)
        nos = NanoOS(system, policy=policy)
        for _ in range(6):
            handle = nos.submit(compute_task(), deadline_us=500.0)
            backups = policy.backups[handle.task_id]
            assert len(backups) == 2
            assert handle.core.node_id not in backups
            assert len(set(backups)) == 2

    def test_replacement_lands_on_a_reserved_backup(self):
        system = SwallowSystem(metrics=False)
        policy = KFaultPolicy(k=1)
        nos = NanoOS(system, policy=policy, fault_budget=None)
        handle = nos.submit(compute_task(50_000), deadline_us=2_000.0)
        reserved = list(policy.backups[handle.task_id])
        system.run_for_us(1.0)
        nos.handle_core_failure(handle.core)
        assert handle.core.node_id == reserved[0]
        assert policy.backups[handle.task_id] == []
        system.run()
        assert nos.deadline_status(handle) == "hit"

    def test_degrade_order_is_criticality_then_task_id(self):
        system = SwallowSystem(metrics=False)
        policy = KFaultPolicy(k=0)
        nos = NanoOS(system, policy=policy)
        core = system.core(3)
        handles = [
            nos.submit(compute_task(), pin=core, criticality=crit,
                       deadline_us=500.0)
            for crit in (2, 0, 1, 0)
        ]
        order = policy.degrade(nos, core, list(handles))
        assert [h.criticality for h in order] == [0, 0, 1, 2]
        low_a, low_b = order[0], order[1]
        assert low_a.task_id < low_b.task_id


class TestGuarantee:
    @pytest.mark.parametrize("k,kills", [(1, 1), (2, 1), (2, 2)])
    def test_kills_within_k_miss_nothing(self, k, kills):
        state = run_campaign("kfault", k=k, kills=kills)
        assert state["shed"] == []
        assert len(state["failed_cores"]) == kills
        # Every task finished, none past its deadline.
        for task in state["tasks"]:
            assert task["done"] and not task["shed"]
            assert task["finish_time_ps"] <= task["deadline_ps"]

    def test_beyond_k_sheds_instead_of_raising(self):
        """k+1 kills must degrade deterministically, not raise."""
        state = run_campaign("kfault", k=1, kills=2, seed=4)
        assert state["shed"], "beyond-k campaign shed nothing"
        # Survivors still make their deadlines.
        for task in state["tasks"]:
            if not task["shed"]:
                assert task["done"]

    def test_shed_list_is_byte_identical_across_runs(self):
        first = run_campaign("kfault", k=1, kills=2, seed=4)
        second = run_campaign("kfault", k=1, kills=2, seed=4)
        assert first["shed"] == second["shed"]
        assert canonical_json(first) == canonical_json(second)

    def test_plain_budget_raises_where_kfault_degrades(self):
        from repro.xs1.errors import ResourceError
        with pytest.raises(ResourceError, match="fault budget exhausted"):
            context = build_workload("policy_rt", {
                "policy": "least_loaded",
                "k": 1,
                "seed": 1,
                "kills": 2,
                "kill_from_us": 5.0,
                "kill_every_us": 5.0,
            })
            context.system.run()

    def test_kfault_state_rides_the_snapshot(self):
        state = run_campaign("kfault", k=2, kills=1)
        policy_state = state["policy"]
        assert policy_state["name"] == "kfault"
        assert policy_state["k"] == 2
        assert isinstance(policy_state["backups"], dict)
