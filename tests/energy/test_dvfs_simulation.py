"""Tests for the full-DVFS extension: per-core voltage in the ledger."""

import pytest

from repro.energy import EnergyAccounting, idle_power_mw, min_voltage
from repro.sim import Frequency, Simulator, ms
from repro.xs1 import LoopbackFabric, XCore


def idle_core(sim):
    return XCore(sim, node_id=0, fabric=LoopbackFabric(sim))


class TestVoltageProperty:
    def test_default_voltage_is_1v(self):
        assert idle_core(Simulator()).voltage == 1.0

    def test_set_voltage(self):
        core = idle_core(Simulator())
        core.set_voltage(0.8)
        assert core.voltage == 0.8

    def test_invalid_voltage_rejected(self):
        core = idle_core(Simulator())
        with pytest.raises(ValueError):
            core.set_voltage(0)
        with pytest.raises(ValueError):
            core.set_dvfs_operating_point(Frequency.mhz(100), -0.5)

    def test_operating_point_sets_both(self):
        core = idle_core(Simulator())
        core.set_dvfs_operating_point(Frequency.mhz(71), 0.6)
        assert core.frequency.megahertz == 71
        assert core.voltage == 0.6


class TestDvfsEnergy:
    def test_power_scales_with_v_squared(self):
        sim = Simulator()
        core = idle_core(sim)
        core.set_voltage(0.5)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(ms(1))
        expected = idle_power_mw(500) * 0.25 * 1e-6
        assert ledger.core_energy_j(0) == pytest.approx(expected, rel=0.01)

    def test_voltage_change_closes_window(self):
        sim = Simulator()
        core = idle_core(sim)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(ms(1))
        core.set_voltage(0.6)
        sim.run_for(ms(1))
        expected = idle_power_mw(500) * (1.0 + 0.36) * 1e-6
        assert ledger.core_energy_j(0) == pytest.approx(expected, rel=0.01)

    def test_full_dvfs_beats_frequency_scaling_alone(self):
        """The Fig. 4 claim, reproduced in simulation."""
        def energy(voltage):
            sim = Simulator()
            core = idle_core(sim)
            core.set_dvfs_operating_point(Frequency.mhz(71), voltage)
            ledger = EnergyAccounting(sim, [core], include_support=False)
            sim.run_for(ms(1))
            return ledger.core_energy_j(0)

        freq_only = energy(1.0)
        full_dvfs = energy(min_voltage(71))
        assert full_dvfs == pytest.approx(freq_only * 0.36, rel=0.01)

    def test_timing_unaffected_by_voltage(self):
        """Voltage changes power, never timing (frequency does that)."""
        from repro.xs1 import assemble

        def runtime(voltage):
            sim = Simulator()
            core = idle_core(sim)
            core.set_voltage(voltage)
            core.spawn(assemble("""
                ldc r0, 100
            loop:
                subi r0, r0, 1
                bt r0, loop
                freet
            """))
            sim.run()
            return sim.now

        assert runtime(1.0) == runtime(0.6)
