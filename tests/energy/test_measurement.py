"""Tests for the simulated shunt/amplifier/ADC measurement chain."""

import pytest

from repro.energy import (
    Adc,
    EnergyAccounting,
    MeasurementBoard,
    SamplingRateError,
    active_power_mw,
    build_slice_rails,
    idle_power_mw,
)
from repro.sim import Simulator, ms, us
from repro.xs1 import LoopbackFabric, XCore, assemble


def make_slice(sim):
    fabric = LoopbackFabric(sim)
    cores = [XCore(sim, node_id=i, fabric=fabric) for i in range(16)]
    ledger = EnergyAccounting(sim, cores)
    board = MeasurementBoard(sim, ledger, build_slice_rails(cores))
    return cores, ledger, board


class TestAdc:
    def test_quantization_steps(self):
        adc = Adc(resolution_bits=12, full_scale_mw=2000.0)
        assert adc.lsb_mw == pytest.approx(2000 / 4095)
        assert adc.quantize(0.0) == 0.0
        assert adc.quantize(2000.0) == 2000.0

    def test_quantization_error_bounded(self):
        adc = Adc()
        for value in (1.0, 123.4, 777.7, 1999.0):
            assert abs(adc.quantize(value) - value) <= adc.lsb_mw / 2 + 1e-9

    def test_clamps_over_range(self):
        adc = Adc(full_scale_mw=100.0)
        assert adc.quantize(500.0) == 100.0


class TestRailLayout:
    def test_five_rails(self):
        sim = Simulator()
        cores, _, board = make_slice(sim)
        assert len(board.rails) == 5
        assert sum(1 for rail in board.rails if rail.is_io) == 1

    def test_core_rails_hold_four_cores_each(self):
        sim = Simulator()
        cores, _, board = make_slice(sim)
        for rail in board.rails[:4]:
            assert len(rail.cores) == 4

    def test_wrong_core_count_rejected(self):
        with pytest.raises(ValueError):
            build_slice_rails([])


class TestSampling:
    def test_idle_rail_reading(self):
        sim = Simulator()
        cores, _, board = make_slice(sim)
        sim.run_for(us(100))
        reading = board.sample_channel(0)
        assert reading == pytest.approx(4 * idle_power_mw(500), rel=0.02)

    def test_loaded_rail_reads_higher(self):
        sim = Simulator()
        cores, _, board = make_slice(sim)
        program = assemble("ldc r0, 200000\nloop: subi r0, r0, 1\nbt r0, loop\nfreet")
        for core in cores[:4]:          # rail 0's cores
            for _ in range(4):
                core.spawn(program)
        sim.run_for(ms(1))
        loaded = board.sample_channel(0)
        idle = board.sample_channel(1)
        assert loaded > idle
        assert loaded == pytest.approx(4 * active_power_mw(500), rel=0.02)

    def test_sample_all_returns_every_rail(self):
        sim = Simulator()
        _, _, board = make_slice(sim)
        sim.run_for(us(10))
        values = board.sample_all()
        assert len(values) == 5

    def test_rate_limits_enforced(self):
        sim = Simulator()
        _, _, board = make_slice(sim)
        with pytest.raises(SamplingRateError):
            board.record_trace(0.001, rate_hz=3_000_000, channel=0)
        with pytest.raises(SamplingRateError):
            board.record_trace(0.001, rate_hz=1_500_000, channel=None)
        with pytest.raises(SamplingRateError):
            board.record_trace(0.001, rate_hz=0, channel=0)

    def test_trace_recording(self):
        sim = Simulator()
        _, _, board = make_slice(sim)
        trace = board.record_trace(0.0001, rate_hz=1_000_000, channel=0)
        sim.run_for(ms(1))
        assert len(trace) == 100
        times, values = trace.as_arrays()
        assert values.shape == (100, 1)
        assert (values > 0).all()

    def test_trace_energy_close_to_ledger(self):
        sim = Simulator()
        cores, ledger, board = make_slice(sim)
        trace = board.record_trace(0.001, rate_hz=500_000, channel=None)
        sim.run_for(ms(1))
        trace_energy = trace.energy_j()
        ledger_energy = ledger.total_energy_j()
        assert trace_energy == pytest.approx(ledger_energy, rel=0.05)

    def test_empty_trace_energy_zero(self):
        sim = Simulator()
        _, _, board = make_slice(sim)
        trace = board.record_trace(0.0, rate_hz=1000, channel=0)
        sim.run_for(us(1))
        assert trace.energy_j() == 0.0


class TestSelfMeasurement:
    def test_program_reads_its_own_power(self):
        """The paper's headline loop: a program samples the board and
        adapts — here it simply records what it saw."""
        from repro.xs1 import BehavioralThread, Compute, Sleep

        sim = Simulator()
        cores, _, board = make_slice(sim)
        seen = []

        def self_aware():
            yield Compute(10_000)
            seen.append(board.sample_channel(0))
            yield Sleep(200_000)
            seen.append(board.sample_channel(0))

        BehavioralThread(cores[0], self_aware())
        sim.run()
        assert len(seen) == 2
        # Busy sample should exceed the mostly-idle later sample.
        assert seen[0] > seen[1]
