"""Property-based tests of the energy ledger.

The central invariant: energy is a pure integral of the power model over
the run — the *schedule of observations* must not change the total.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import EnergyAccounting, active_power_mw, idle_power_mw
from repro.sim import Frequency, Simulator, us
from repro.xs1 import LoopbackFabric, XCore, assemble

observation_schedules = st.lists(
    st.integers(min_value=1, max_value=200), min_size=0, max_size=10
)


def run_with_observations(pauses_us, threads=0):
    """Total ledger energy over 1 ms with update() calls sprinkled in."""
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    if threads:
        program = assemble("""
            ldc r0, 200000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        for _ in range(threads):
            core.spawn(program)
    ledger = EnergyAccounting(sim, [core], include_support=False)
    elapsed = 0
    for pause in pauses_us:
        if elapsed + pause > 1000:
            break
        sim.run_for(us(pause))
        ledger.update()            # observation must not perturb the total
        elapsed += pause
    sim.run_for(us(1000 - elapsed))
    return ledger.core_energy_j(0)


class TestObservationInvariance:
    @settings(max_examples=20, deadline=None)
    @given(observation_schedules)
    def test_idle_energy_independent_of_observations(self, pauses):
        baseline = run_with_observations([])
        observed = run_with_observations(pauses)
        assert observed == pytest.approx(baseline, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(observation_schedules)
    def test_loaded_energy_independent_of_observations(self, pauses):
        baseline = run_with_observations([], threads=4)
        observed = run_with_observations(pauses, threads=4)
        assert observed == pytest.approx(baseline, rel=1e-3)


class TestBounds:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=4),
           st.sampled_from([71, 125, 250, 500]))
    def test_energy_between_idle_and_active_bounds(self, threads, mhz):
        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        core.set_frequency(Frequency.mhz(mhz))
        if threads:
            program = assemble("""
                ldc r0, 1000000
            loop:
                subi r0, r0, 1
                bt r0, loop
                freet
            """)
            for _ in range(threads):
                core.spawn(program)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(us(500))
        energy = ledger.core_energy_j(0)
        low = idle_power_mw(mhz) * 1e-3 * 500e-6
        high = active_power_mw(mhz) * 1e-3 * 500e-6
        assert low * 0.999 <= energy <= high * 1.001

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.3, max_value=1.0))
    def test_voltage_scaling_is_quadratic(self, voltage):
        def energy(v):
            sim = Simulator()
            core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
            core.set_voltage(v)
            ledger = EnergyAccounting(sim, [core], include_support=False)
            sim.run_for(us(100))
            return ledger.core_energy_j(0)

        assert energy(voltage) == pytest.approx(energy(1.0) * voltage**2, rel=1e-6)
