"""Tests for the Kerrison-style instruction energy model."""

from collections import Counter

import pytest

from repro.energy import InstructionEnergyModel
from repro.xs1 import EnergyClass


class TestDefaults:
    def test_range_matches_paper(self):
        """Paper §II: 1.0-2.25 nJ per instruction."""
        low, high = InstructionEnergyModel().range_nj
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(2.25)

    def test_per_bit_range_matches_paper(self):
        """Paper §II: 31-70 pJ per bit operated upon."""
        low, high = InstructionEnergyModel().range_per_bit_pj
        assert low == pytest.approx(31.25, rel=0.01)
        assert high == pytest.approx(70.3, rel=0.01)

    def test_class_ordering(self):
        model = InstructionEnergyModel()
        assert model.energy_of(EnergyClass.ALU) < model.energy_of(EnergyClass.MUL)
        assert model.energy_of(EnergyClass.MUL) < model.energy_of(EnergyClass.DIV)
        assert model.energy_of(EnergyClass.NOP) <= model.energy_of(EnergyClass.ALU)

    def test_every_class_covered(self):
        model = InstructionEnergyModel()
        for cls in EnergyClass:
            assert model.energy_of(cls) > 0


class TestAccounting:
    def test_total(self):
        model = InstructionEnergyModel()
        histogram = Counter({EnergyClass.ALU: 10, EnergyClass.MUL: 5})
        expected = 10 * model.energy_of(EnergyClass.ALU) + 5 * model.energy_of(
            EnergyClass.MUL
        )
        assert model.total_nj(histogram) == pytest.approx(expected)

    def test_mean_of_empty_histogram(self):
        assert InstructionEnergyModel().mean_nj(Counter()) == 0.0

    def test_mean_between_bounds(self):
        model = InstructionEnergyModel()
        histogram = Counter({cls: 1 for cls in EnergyClass})
        low, high = model.range_nj
        assert low <= model.mean_nj(histogram) <= high


class TestValidation:
    def test_missing_class_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            InstructionEnergyModel(energy_nj={EnergyClass.ALU: 1.0})

    def test_nonpositive_energy_rejected(self):
        table = dict(InstructionEnergyModel().energy_nj)
        table[EnergyClass.NOP] = 0.0
        with pytest.raises(ValueError, match="non-positive"):
            InstructionEnergyModel(energy_nj=table)

    def test_custom_table_used(self):
        table = {cls: 1.0 for cls in EnergyClass}
        model = InstructionEnergyModel(energy_nj=table)
        assert model.range_nj == (1.0, 1.0)


class TestIntegrationWithCore:
    def test_energy_of_real_run(self, ):
        from repro.sim import Simulator
        from repro.xs1 import LoopbackFabric, XCore, assemble

        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        core.spawn(assemble("""
            ldc r0, 100
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
        sim.run()
        model = InstructionEnergyModel()
        total = model.total_nj(core.stats.instructions)
        count = core.stats.total_instructions
        assert count == 202
        low, high = model.range_nj
        assert low * count <= total <= high * count
