"""Tests for the simulation-time energy ledger."""

import pytest

from repro.energy import EnergyAccounting, active_power_mw, idle_power_mw
from repro.sim import Frequency, Simulator, ms, us
from repro.xs1 import LoopbackFabric, XCore, assemble

SPIN = """
    ldc r0, {n}
loop:
    subi r0, r0, 1
    bt r0, loop
    freet
"""


def make_core(sim, n=1):
    fabric = LoopbackFabric(sim)
    return [XCore(sim, node_id=i, fabric=fabric) for i in range(n)]


class TestCoreEnergy:
    def test_idle_core_draws_idle_power(self):
        sim = Simulator()
        (core,) = make_core(sim)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(ms(1))
        energy = ledger.core_energy_j(0)
        expected = idle_power_mw(500) * 1e-3 * 1e-3
        assert energy == pytest.approx(expected, rel=0.01)

    def test_loaded_core_draws_active_power(self):
        sim = Simulator()
        (core,) = make_core(sim)
        # Four threads saturate the pipeline (utilization 1).
        program = assemble(SPIN.format(n=150_000))
        for _ in range(4):
            core.spawn(program)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(ms(1))
        energy = ledger.core_energy_j(0)
        expected = active_power_mw(500) * 1e-3 * 1e-3
        assert energy == pytest.approx(expected, rel=0.02)

    def test_single_thread_is_quarter_utilization(self):
        sim = Simulator()
        (core,) = make_core(sim)
        core.spawn(assemble(SPIN.format(n=150_000)))
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(ms(1))
        idle = idle_power_mw(500)
        active = active_power_mw(500)
        expected = (idle + (active - idle) * 0.25) * 1e-6
        assert ledger.core_energy_j(0) == pytest.approx(expected, rel=0.02)

    def test_energy_monotone_in_time(self):
        sim = Simulator()
        (core,) = make_core(sim)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(us(100))
        first = ledger.core_energy_j(0)
        sim.run_for(us(100))
        assert ledger.core_energy_j(0) > first

    def test_frequency_change_closes_window(self):
        """Idle at 500 MHz then 71 MHz must use each rate for its span."""
        sim = Simulator()
        (core,) = make_core(sim)
        ledger = EnergyAccounting(sim, [core], include_support=False)
        sim.run_for(ms(1))
        core.set_frequency(Frequency.mhz(71))
        sim.run_for(ms(1))
        expected = (idle_power_mw(500) + idle_power_mw(71)) * 1e-6
        assert ledger.core_energy_j(0) == pytest.approx(expected, rel=0.01)


class TestSystemTotals:
    def test_support_power_added_per_node(self):
        sim = Simulator()
        cores = make_core(sim, n=4)
        ledger = EnergyAccounting(sim, cores, include_support=True)
        sim.run_for(ms(1))
        breakdown = ledger.breakdown_j()
        assert breakdown["support"] == pytest.approx(56 * 4 * 1e-6, rel=0.01)

    def test_mean_power_of_idle_system(self):
        sim = Simulator()
        cores = make_core(sim, n=2)
        ledger = EnergyAccounting(sim, cores, include_support=False)
        sim.run_for(ms(2))
        assert ledger.mean_power_mw() == pytest.approx(2 * idle_power_mw(500), rel=0.01)

    def test_link_energy_counted(self):
        from repro.network.routing import Layer
        from repro.network.topology import SwallowTopology
        from repro.xs1 import BehavioralThread, RecvWord, SendWord

        sim = Simulator()
        topo = SwallowTopology(sim)
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        core_a = XCore(sim, a, topo.fabric)
        core_b = XCore(sim, b, topo.fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        ledger = EnergyAccounting(sim, [core_a, core_b], fabric=topo.fabric)

        def sender():
            for i in range(10):
                yield SendWord(tx, i)

        def receiver():
            for _ in range(10):
                yield RecvWord(rx)

        BehavioralThread(core_a, sender())
        BehavioralThread(core_b, receiver())
        sim.run()
        ledger.update()
        assert ledger.link_energy_j > 0
        assert ledger.breakdown_j()["links"] == pytest.approx(ledger.link_energy_j)

    def test_add_core_later(self):
        sim = Simulator()
        cores = make_core(sim, n=2)
        ledger = EnergyAccounting(sim, [cores[0]], include_support=False)
        ledger.add_core(cores[1])
        sim.run_for(us(10))
        assert ledger.core_energy_j(1) > 0
