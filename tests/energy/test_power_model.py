"""Tests for Eq. 1, the idle model, and the Fig. 2 breakdown."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy import (
    NodeBreakdown,
    active_power_mw,
    core_power_mw,
    idle_power_mw,
    node_power_breakdown,
    scaled_breakdown,
)

frequencies = st.floats(min_value=71.0, max_value=500.0, allow_nan=False)


class TestEq1:
    def test_500mhz_loaded_is_193mw(self):
        assert active_power_mw(500) == pytest.approx(196, abs=5)  # 46+150
        # The paper quotes 193 mW; Eq. 1 itself evaluates to 196 mW.
        assert active_power_mw(500) == pytest.approx(193, rel=0.03)

    def test_71mhz_loaded_is_65mw(self):
        # Paper: "ranges ... to 65 mW at 71 MHz"; Eq. 1 gives 67.3.
        assert active_power_mw(71) == pytest.approx(65, rel=0.05)

    def test_static_component(self):
        assert active_power_mw(100) - active_power_mw(0.001) == pytest.approx(
            30, rel=0.01
        )

    @given(frequencies)
    def test_linear_in_frequency(self, f):
        base = active_power_mw(f)
        assert active_power_mw(f + 10) - base == pytest.approx(3.0, rel=1e-6)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            active_power_mw(0)


class TestIdleModel:
    def test_anchor_points(self):
        assert idle_power_mw(71) == pytest.approx(50.0)
        assert idle_power_mw(500) == pytest.approx(113.0)

    @given(frequencies)
    def test_idle_below_active(self, f):
        assert idle_power_mw(f) < active_power_mw(f)


class TestUtilizationInterpolation:
    def test_bounds(self):
        assert core_power_mw(500, 0.0) == pytest.approx(idle_power_mw(500))
        assert core_power_mw(500, 1.0) == pytest.approx(active_power_mw(500))

    @given(frequencies, st.floats(min_value=0, max_value=1, allow_nan=False))
    def test_monotone_in_utilization(self, f, u):
        assert core_power_mw(f, u) <= core_power_mw(f, min(1.0, u + 0.1)) + 1e-9

    def test_out_of_range_utilization(self):
        with pytest.raises(ValueError):
            core_power_mw(500, 1.5)


class TestFig2Breakdown:
    def test_total_is_260mw(self):
        assert node_power_breakdown().total_mw == pytest.approx(260.0)

    def test_paper_percentages(self):
        shares = node_power_breakdown().shares()
        assert shares["computation_and_memory"] == pytest.approx(0.30, abs=0.01)
        assert shares["static"] == pytest.approx(0.26, abs=0.01)
        assert shares["network_interface"] == pytest.approx(0.22, abs=0.01)
        assert shares["dcdc_and_io"] == pytest.approx(0.18, abs=0.01)

    def test_shares_sum_to_one(self):
        assert sum(node_power_breakdown().shares().values()) == pytest.approx(1.0)

    def test_scaled_breakdown_reduces_core_terms_only(self):
        full = node_power_breakdown()
        scaled = scaled_breakdown(100, 1.0)
        assert scaled.computation_and_memory < full.computation_and_memory
        assert scaled.static < full.static
        assert scaled.dcdc_and_io == full.dcdc_and_io
        assert scaled.other == full.other

    def test_custom_breakdown_total(self):
        custom = NodeBreakdown(computation_and_memory=100.0)
        assert custom.total_mw == pytest.approx(100 + 68 + 58 + 46 + 10)
