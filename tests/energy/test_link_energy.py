"""Tests for Table I link energies."""

import pytest

from repro.energy import (
    PAPER_TABLE_I_PJ_PER_BIT,
    link_energy_joules,
    offboard_onboard_ratio,
    table_i,
    traffic_energy_joules,
)
from repro.network.params import LINK_OFFBOARD_FFC, LINK_ON_CHIP, TABLE_I_LINKS


class TestTableI:
    def test_four_rows_in_paper_order(self):
        rows = table_i()
        assert [r.link_type for r in rows] == [
            "on-chip", "on-board-vertical", "on-board-horizontal", "off-board-ffc",
        ]

    @pytest.mark.parametrize("row_index,expected", enumerate(
        [5.6, 212.8, 201.6, 10880.0]
    ))
    def test_energy_per_bit_matches_paper(self, row_index, expected):
        row = table_i()[row_index]
        assert row.energy_per_bit_pj == pytest.approx(expected, rel=1e-3)

    def test_data_rates_match_paper(self):
        rows = table_i()
        assert rows[0].data_rate_mbit == pytest.approx(250.0)
        assert rows[1].data_rate_mbit == pytest.approx(62.5)

    def test_max_powers_match_paper(self):
        assert [r.max_power_mw for r in table_i()] == [1.4, 13.3, 12.6, 680.0]

    def test_paper_reference_dict_consistent(self):
        for row in table_i():
            assert row.energy_per_bit_pj == pytest.approx(
                PAPER_TABLE_I_PJ_PER_BIT[row.link_type], rel=1e-3
            )


class TestEnergyArithmetic:
    def test_one_megabit_on_chip(self):
        joules = link_energy_joules(1e6, LINK_ON_CHIP)
        assert joules == pytest.approx(5.6e-6, rel=1e-3)

    def test_offboard_factor_of_50(self):
        """Paper: going off-board raises energy/bit by a factor of ~50."""
        assert offboard_onboard_ratio() == pytest.approx(51.1, abs=0.5)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            link_energy_joules(-1, LINK_ON_CHIP)

    def test_traffic_energy_sums_classes(self):
        total = traffic_energy_joules({
            "on-chip": 1e6,
            "off-board-ffc": 1e3,
        })
        expected = 1e6 * 5.6e-12 + 1e3 * LINK_OFFBOARD_FFC.energy_per_bit_pj * 1e-12
        assert total == pytest.approx(expected, rel=1e-6)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown link class"):
            traffic_energy_joules({"wormhole-9000": 1.0})

    def test_table_i_links_constant_order(self):
        assert TABLE_I_LINKS[0] is LINK_ON_CHIP
