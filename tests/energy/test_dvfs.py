"""Tests for the Fig. 4 DVFS projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy import (
    active_power_mw,
    dvfs_power_mw,
    dvfs_saving_fraction,
    figure4_series,
    min_voltage,
    power_at_voltage_mw,
)

frequencies = st.floats(min_value=71.0, max_value=500.0, allow_nan=False)


class TestMinVoltage:
    def test_anchor_points(self):
        assert min_voltage(71) == pytest.approx(0.60)
        assert min_voltage(500) == pytest.approx(0.95)

    def test_clamps_below_71mhz(self):
        assert min_voltage(10) == pytest.approx(0.60)

    def test_rejects_overclock(self):
        with pytest.raises(ValueError):
            min_voltage(600)

    @given(frequencies)
    def test_monotone(self, f):
        assert min_voltage(f) <= min_voltage(min(500.0, f + 25)) + 1e-12


class TestScaledPower:
    def test_quadratic_voltage_scaling(self):
        full = power_at_voltage_mw(500, 1.0)
        half = power_at_voltage_mw(500, 0.5)
        assert half == pytest.approx(full / 4)

    def test_500mhz_saving_is_v_squared(self):
        # At 500 MHz, Vmin = 0.95 -> ~9.75% saving.
        assert dvfs_saving_fraction(500) == pytest.approx(1 - 0.95**2, rel=1e-6)

    def test_71mhz_saving_is_large(self):
        # At 71 MHz, Vmin = 0.6 -> 64% saving.
        assert dvfs_saving_fraction(71) == pytest.approx(1 - 0.36, rel=1e-6)

    @given(frequencies)
    def test_dvfs_never_exceeds_1v_power(self, f):
        assert dvfs_power_mw(f) <= active_power_mw(f)

    def test_rejects_bad_voltage(self):
        with pytest.raises(ValueError):
            power_at_voltage_mw(500, 0)


class TestFigure4Series:
    def test_row_count_and_keys(self):
        rows = figure4_series(points=10)
        assert len(rows) == 10
        assert set(rows[0]) == {"f_mhz", "p_1v_mw", "p_dvfs_mw"}

    def test_covers_paper_range(self):
        """Fig. 4's y-axis runs ~20-200 mW over 71-500 MHz."""
        rows = figure4_series()
        assert rows[0]["f_mhz"] == pytest.approx(71.0)
        assert rows[-1]["f_mhz"] == pytest.approx(500.0)
        assert rows[-1]["p_1v_mw"] == pytest.approx(196, abs=1)
        assert 20 <= rows[0]["p_dvfs_mw"] <= 30   # ~24 mW at 71 MHz
        assert 170 <= rows[-1]["p_dvfs_mw"] <= 185

    def test_dvfs_curve_below_1v_curve_everywhere(self):
        for row in figure4_series():
            assert row["p_dvfs_mw"] < row["p_1v_mw"]

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            figure4_series(points=1)
