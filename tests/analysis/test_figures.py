"""Tests for figure/series export."""

import csv

import pytest

from repro.analysis.figures import (
    ALL_FIGURES,
    ec_ladder,
    eq2_throughput,
    export_csv,
    fig2_breakdown,
    fig3_scaling,
    fig4_dvfs,
    table1_links,
    table2_processors,
    table3_systems,
)


class TestSeriesShapes:
    def test_every_builder_returns_header_and_rows(self):
        for name, builder in ALL_FIGURES.items():
            header, rows = builder()
            assert header and rows, name
            assert all(len(row) == len(header) for row in rows), name

    def test_fig2_shares_sum_to_one(self):
        _, rows = fig2_breakdown()
        assert sum(row[2] for row in rows) == pytest.approx(1.0, abs=0.001)

    def test_fig3_covers_frequency_range(self):
        _, rows = fig3_scaling(points=5)
        assert rows[0][0] == 71.0
        assert rows[-1][0] == 500.0
        assert all(loaded > idle for _, loaded, idle in rows)

    def test_fig3_measured_matches_model(self):
        _, analytic = fig3_scaling(points=3)
        _, measured = fig3_scaling(points=3, measured=True)
        for (f1, l1, i1), (f2, l2, i2) in zip(analytic, measured):
            assert f1 == f2
            assert l2 == pytest.approx(l1, rel=0.03)
            assert i2 == pytest.approx(i1, rel=0.03)

    def test_fig4_dvfs_below_1v(self):
        _, rows = fig4_dvfs(points=6)
        assert all(dvfs < p1v for _, p1v, dvfs in rows)

    def test_table1_four_rows(self):
        _, rows = table1_links()
        assert len(rows) == 4
        assert rows[3][3] == pytest.approx(10880, rel=0.01)

    def test_table2_verdict_column(self):
        _, rows = table2_processors()
        winners = [row[0] for row in rows if row[-1] == 1]
        assert winners == ["XMOS XS1-L"]

    def test_table3_recomputed_column(self):
        header, rows = table3_systems()
        swallow = next(r for r in rows if r[0] == "Swallow")
        assert swallow[header.index("recomputed_uw_per_mhz")] == 300.0

    def test_ec_ladder_values(self):
        _, rows = ec_ladder()
        assert [row[3] for row in rows] == [1.0, 16.0, 64.0, 256.0, 512.0]

    def test_eq2_rows(self):
        _, rows = eq2_throughput()
        assert rows[0] == [1, 125.0, 125.0]
        assert rows[-1] == [8, 62.5, 500.0]


class TestCsvExport:
    def test_exports_all_by_default(self, tmp_path):
        written = export_csv(tmp_path)
        assert len(written) == len(ALL_FIGURES)
        for path in written:
            with open(path) as handle:
                reader = list(csv.reader(handle))
            assert len(reader) >= 2   # header + data

    def test_subset_export(self, tmp_path):
        written = export_csv(tmp_path, ["ec_ladder"])
        assert len(written) == 1
        assert written[0].endswith("ec_ladder.csv")

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown figure"):
            export_csv(tmp_path, ["fig99"])

    def test_cli_figures(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["figures", "--out", str(tmp_path), "table1_links"]) == 0
        out = capsys.readouterr().out
        assert "table1_links.csv" in out
