"""Tests for the Table II / Table III survey engines."""

import pytest

from repro.analysis import (
    TABLE_II,
    TABLE_III,
    Determinism,
    qualifying_processors,
    swallow_power_rank,
    table_iii_by_power,
)


class TestTableII:
    def test_eight_candidates(self):
        assert len(TABLE_II) == 8

    def test_only_xs1_meets_all_requirements(self):
        """The paper's verdict: "Only the XS1-L meets all requirements"."""
        qualifiers = qualifying_processors()
        assert [p.name for p in qualifiers] == ["XMOS XS1-L"]

    def test_msp430_fails_on_interconnect(self):
        msp = next(p for p in TABLE_II if p.name == "MSP430")
        assert msp.time_deterministic is Determinism.YES
        assert not msp.meets_all_requirements()

    def test_epiphany_fails_on_determinism(self):
        epiphany = next(p for p in TABLE_II if p.name == "Adapteva Epiphany")
        assert epiphany.multicore_interconnect is not None
        assert not epiphany.meets_all_requirements()

    def test_cortex_m_conditional_determinism_rejected(self):
        cortex_m = next(p for p in TABLE_II if p.name == "ARM Cortex M")
        assert cortex_m.time_deterministic is Determinism.WITHOUT_CACHE
        assert not cortex_m.meets_all_requirements()


class TestTableIII:
    def test_five_systems(self):
        assert len(TABLE_III) == 5

    def test_swallow_uw_per_mhz_is_dynamic_slope(self):
        swallow = next(s for s in TABLE_III if s.name == "Swallow")
        low, high = swallow.computed_uw_per_mhz()
        assert low == pytest.approx(300.0)
        assert high == pytest.approx(300.0)
        assert swallow.published_uw_per_mhz == (300.0, 300.0)

    def test_spinnaker_uw_per_mhz_recomputes(self):
        spinnaker = next(s for s in TABLE_III if s.name == "SpiNNaker")
        low, _ = spinnaker.computed_uw_per_mhz()
        assert low == pytest.approx(435.0)

    def test_epiphany_uw_per_mhz_recomputes(self):
        epiphany = next(s for s in TABLE_III if s.name == "Epiphany-IV")
        low, _ = epiphany.computed_uw_per_mhz()
        assert low == pytest.approx(38.8, rel=0.01)

    def test_centip3de_range_recomputes(self):
        centipede = next(s for s in TABLE_III if s.name == "Centip3De")
        low, high = centipede.computed_uw_per_mhz()
        # 203 mW @ 80 MHz -> 2537; 1851 mW @ 20 MHz -> 92550.  The paper's
        # 2540-2300 column pairs each power with its own configuration's
        # frequency; our conservative range (cross-pairing extremes) must
        # contain the published values.
        assert low == pytest.approx(2537.5, rel=0.01)
        assert low <= 2540 + 5
        assert high >= 2540

    def test_swallow_rank_is_middle(self):
        """Paper: "Swallow's power per core is in the middle of the
        surveyed range"."""
        assert swallow_power_rank() == 3

    def test_power_ordering(self):
        ordered = [s.name for s in table_iii_by_power()]
        assert ordered[0] == "Epiphany-IV"
        assert ordered[-1] in ("Tile64", "Centip3De")

    def test_spinnaker_is_biggest_machine(self):
        biggest = max(TABLE_III, key=lambda s: s.total_cores[1])
        assert biggest.name == "SpiNNaker"
