"""Tests for Eq. 2 analytics and the measured counterpart."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ips_per_core,
    ips_per_thread,
    measured_core_ips,
    single_thread_mips,
    system_gips,
)


class TestEq2Analytic:
    def test_single_thread_is_125_mips(self):
        """§V.D: one thread issues 125 MIPS at 500 MHz."""
        assert single_thread_mips() == pytest.approx(125.0)

    def test_four_threads_saturate(self):
        assert ips_per_core(500e6, 4) == pytest.approx(500e6)
        assert ips_per_thread(500e6, 4) == pytest.approx(125e6)

    def test_more_threads_share_rate(self):
        assert ips_per_thread(500e6, 8) == pytest.approx(62.5e6)
        assert ips_per_core(500e6, 8) == pytest.approx(500e6)

    def test_zero_threads(self):
        assert ips_per_thread(500e6, 0) == 0.0
        assert ips_per_core(500e6, 0) == 0.0

    @given(st.integers(min_value=1, max_value=8))
    def test_core_equals_thread_times_count(self, n):
        per_thread = ips_per_thread(500e6, n)
        per_core = ips_per_core(500e6, n)
        assert per_core == pytest.approx(per_thread * n)

    def test_headline_240_gips(self):
        """§I: "the system provides up to 240 GIPS" at 480 cores."""
        assert system_gips(480) == pytest.approx(240.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ips_per_thread(0, 1)
        with pytest.raises(ValueError):
            ips_per_core(500e6, -1)
        with pytest.raises(ValueError):
            system_gips(-1)


class TestMeasured:
    @pytest.mark.parametrize("threads,expected_mips", [(1, 125), (4, 500), (6, 500)])
    def test_simulated_core_matches_eq2(self, threads, expected_mips):
        from repro.sim import Simulator
        from repro.xs1 import LoopbackFabric, XCore, assemble

        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        program = assemble("""
            ldc r0, 2000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        for _ in range(threads):
            core.spawn(program)
        sim.run()
        measured = measured_core_ips(core, sim.now) / 1e6
        assert measured == pytest.approx(expected_mips, rel=0.02)

    def test_measured_requires_elapsed_time(self):
        from repro.sim import Simulator
        from repro.xs1 import LoopbackFabric, XCore

        sim = Simulator()
        core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
        with pytest.raises(ValueError):
            measured_core_ips(core, 0)
