"""Tests for bisection-bandwidth analysis."""

import pytest

from repro.analysis import (
    horizontal_bisection_bps,
    min_cut_bps,
    vertical_bisection_bps,
)
from repro.network.topology import SwallowTopology
from repro.sim import Simulator


def build(sx=1, sy=1):
    return SwallowTopology(Simulator(), slices_x=sx, slices_y=sy)


class TestSliceBisection:
    def test_paper_250mbps_vertical_bisection(self):
        """§V.D: the slice's vertical bisection carries C = 250 Mbit/s
        (four columns x 62.5 Mbit/s operating rate)."""
        assert vertical_bisection_bps(build()) == pytest.approx(250e6)

    def test_max_rate_bisection_doubles(self):
        topo = build()
        operating = vertical_bisection_bps(topo, use_operating_rate=True)
        maximum = vertical_bisection_bps(topo, use_operating_rate=False)
        assert maximum == pytest.approx(2 * operating)

    def test_horizontal_bisection(self):
        # Two rows x one horizontal on-board link each = 125 Mbit/s.
        assert horizontal_bisection_bps(build()) == pytest.approx(125e6)

    def test_multi_slice_bisection_scales_with_columns(self):
        assert vertical_bisection_bps(build(sx=2, sy=2)) == pytest.approx(
            8 * 62.5e6
        )


class TestMinCut:
    def test_min_cut_bounded_by_bisection(self):
        topo = build()
        north = topo.node_at(0, 0, topo.coord_of(0).layer)
        south = topo.node_at(0, 1, topo.coord_of(0).layer)
        cut = min_cut_bps(topo, north, south)
        assert cut > 0

    def test_in_package_cut_is_four_links(self):
        topo = build()
        package = topo.packages[(0, 0)]
        cut = min_cut_bps(topo, package.vertical_node, package.horizontal_node)
        # The pair is also connected via the rest of the lattice, so the
        # cut is at least the four on-chip links at 250 Mbit/s each.
        assert cut >= 4 * 250e6
