"""Tests for the §V.D E/C scenarios."""

import pytest

from repro.analysis import (
    RELATED_WORK_EC_RANGE,
    ec_ratio,
    execution_rate_bps,
    measured_ec,
    paper_scenarios,
    thread_execution_rate_bps,
)


class TestExecutionRates:
    def test_per_thread_4gbps(self):
        """§V.D: 125 MIPS x 32 bits = 4 Gbit/s per thread."""
        assert thread_execution_rate_bps(threads=1) == pytest.approx(4e9)

    def test_core_16gbps_with_four_threads(self):
        assert execution_rate_bps(threads=4) == pytest.approx(16e9)

    def test_more_threads_do_not_increase_e(self):
        assert execution_rate_bps(threads=8) == pytest.approx(16e9)


class TestPaperScenarios:
    def test_all_five_scenarios_present(self):
        names = [s.name for s in paper_scenarios()]
        assert len(names) == 5

    @pytest.mark.parametrize("index,expected", [
        (0, 1.0), (1, 16.0), (2, 64.0), (3, 256.0), (4, 512.0),
    ])
    def test_ratios_match_paper(self, index, expected):
        scenario = paper_scenarios()[index]
        assert scenario.ratio == pytest.approx(expected, rel=1e-6)
        assert scenario.paper_value == expected

    def test_ratios_monotonically_worse_with_distance(self):
        ratios = [s.ratio for s in paper_scenarios()]
        assert ratios == sorted(ratios)

    def test_related_work_range_bounds(self):
        low, high = RELATED_WORK_EC_RANGE
        assert low == 0.42 and high == 55.0


class TestRatioArithmetic:
    def test_basic(self):
        assert ec_ratio(16e9, 1e9) == pytest.approx(16.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ec_ratio(1.0, 0.0)
        with pytest.raises(ValueError):
            ec_ratio(-1.0, 1.0)

    def test_measured_ec(self):
        # 1000 instructions x 32 bits over 1000 bits moved -> 32.
        assert measured_ec(1000, 32_000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            measured_ec(10, 0)
