"""Pareto extraction: brute-force verified fronts, provenance, knees."""

import pytest

from repro.dse.pareto import (
    SCHEMA,
    ascii_scatter,
    dominates,
    front_csv,
    front_json,
    pareto_acceptance_check,
    pareto_from_farm_report,
    pareto_front,
)
from repro.dse.spec import Objective


def make_report(points, objectives=None):
    """A minimal dse-report-shaped document from (job_id, metrics)."""
    cells = [
        {
            "job_id": job_id,
            "digest": job_id * 2,
            "params": {"p": index},
            "survived": metrics is not None,
            "metrics": metrics,
            "state_digest": None,
        }
        for index, (job_id, metrics) in enumerate(points)
    ]
    spec = {"sweep": {}, "objectives": objectives or [
        {"key": "speed", "goal": "max"}, {"key": "watts", "goal": "min"},
    ]}
    return {"cells": cells, "sweep_id": "t" * 12, "spec": spec}


class TestDominance:
    OBJECTIVES = [Objective("speed", "max"), Objective("watts", "min")]

    def test_strict_dominance(self):
        assert dominates([2.0, 1.0], [1.0, 2.0], self.OBJECTIVES)
        assert not dominates([1.0, 2.0], [2.0, 1.0], self.OBJECTIVES)

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0], self.OBJECTIVES)

    def test_trade_off_does_not_dominate(self):
        # Faster but hungrier: neither dominates.
        assert not dominates([2.0, 2.0], [1.0, 1.0], self.OBJECTIVES)
        assert not dominates([1.0, 1.0], [2.0, 2.0], self.OBJECTIVES)


class TestFront:
    def test_extraction_against_brute_force(self):
        """Every front must equal the brute-force non-dominated set."""
        # A deterministic point cloud with a real trade-off curve:
        # watts grows quadratically with speed, plus off-curve points
        # perturbed by a hash-derived offset (no RNG).
        points = []
        for i in range(40):
            speed = 0.5 + i * 0.1
            offset = ((i * 7919) % 7) * 0.05
            points.append((
                f"job{i:04d}",
                {"speed": speed, "watts": speed * speed * 0.3 + offset},
            ))
        report = make_report(points)
        front = pareto_front(report)
        objectives = [Objective("speed", "max"), Objective("watts", "min")]
        vectors = {
            job_id: [m["speed"], m["watts"]] for job_id, m in points
        }
        expected = {
            job_id for job_id in vectors
            if not any(
                dominates(vectors[other], vectors[job_id], objectives)
                for other in vectors if other != job_id
            )
        }
        assert {p["job_id"] for p in front["front"]} == expected
        pareto_acceptance_check(front)
        # A real trade-off: several points survive, several are pruned.
        assert 1 < len(front["front"]) < len(points)

    def test_provenance_records_real_margins(self):
        report = make_report([
            ("aa", {"speed": 2.0, "watts": 1.0}),
            ("bb", {"speed": 1.0, "watts": 2.0}),
        ])
        front = pareto_front(report)
        assert [p["job_id"] for p in front["front"]] == ["aa"]
        dominated = front["dominated"][0]
        assert dominated["job_id"] == "bb"
        margins = dominated["dominated_by"][0]["margins"]
        assert margins == {"speed": 1.0, "watts": -1.0}

    def test_unscored_points_are_set_aside(self):
        report = make_report([
            ("aa", {"speed": 2.0, "watts": 1.0}),
            ("bb", {"speed": 1.0}),  # missing watts
            ("cc", None),            # failed job
        ])
        front = pareto_front(report)
        assert front["unscored"] == ["bb", "cc"]
        assert [p["job_id"] for p in front["front"]] == ["aa"]

    def test_knee_is_the_balanced_point(self):
        report = make_report([
            ("fast", {"speed": 10.0, "watts": 10.0}),
            ("slow", {"speed": 1.0, "watts": 1.0}),
            ("knee", {"speed": 8.0, "watts": 3.0}),
        ])
        front = pareto_front(report)
        assert front["knee"] == "knee"
        assert [p for p in front["front"] if p["knee"]][0]["job_id"] == "knee"

    def test_front_is_byte_stable(self):
        report = make_report([
            ("aa", {"speed": 2.0, "watts": 1.0}),
            ("bb", {"speed": 1.0, "watts": 0.5}),
        ])
        assert front_json(pareto_front(report)) == front_json(
            pareto_front(report)
        )
        assert pareto_front(report)["schema"] == SCHEMA

    def test_objective_override(self):
        report = make_report([
            ("aa", {"speed": 2.0, "watts": 1.0}),
            ("bb", {"speed": 1.0, "watts": 0.5}),
        ])
        # Single-objective view: only the fastest survives.
        front = pareto_front(report, objectives=[("speed", "max")])
        assert [p["job_id"] for p in front["front"]] == ["aa"]

    def test_acceptance_check_rejects_corrupt_fronts(self):
        report = make_report([
            ("aa", {"speed": 2.0, "watts": 1.0}),
            ("bb", {"speed": 1.0, "watts": 2.0}),
        ])
        front = pareto_front(report)
        # Forge a dominated point onto the front.
        front["front"].append({
            "job_id": "bb",
            "params": {}, "knee": False,
            "metrics": {"speed": 1.0, "watts": 2.0},
        })
        front["dominated"] = []
        with pytest.raises(AssertionError, match="dominated"):
            pareto_acceptance_check(front)

    def test_empty_front_fails_acceptance(self):
        front = pareto_front(make_report([("aa", None)]))
        with pytest.raises(AssertionError, match="empty"):
            pareto_acceptance_check(front)


class TestExports:
    def report(self):
        return make_report([
            ("aa", {"speed": 2.0, "watts": 1.0}),
            ("bb", {"speed": 1.0, "watts": 0.5}),
            ("cc", {"speed": 0.5, "watts": 0.9}),
        ])

    def test_csv_layout(self):
        front = pareto_front(self.report())
        csv = front_csv(front)
        header, *rows = csv.strip().split("\n")
        assert header == "job_id,p,speed,watts,knee"
        assert len(rows) == len(front["front"])
        assert csv == front_csv(pareto_front(self.report()))  # byte-stable

    def test_ascii_scatter_marks_classes(self):
        front = pareto_front(self.report())
        plot = ascii_scatter(front, width=32, height=8)
        assert "*" in plot or "K" in plot
        assert "." in plot  # cc is dominated by bb
        assert plot == ascii_scatter(front, width=32, height=8)


class TestFarmPassthrough:
    def test_pareto_from_farm_report(self):
        payload = {"jobs": [
            {
                "job_id": "aa", "digest": "a" * 64, "state": "done",
                "params": {"seed": 1},
                "elapsed_s": 1e-6, "total_instructions": 2000,
                "total_energy_j": 1e-6, "mean_power_w": 1.0,
                "deadline_metrics": {}, "delivered_ok": True,
                "state_digest": "x",
            },
            {
                "job_id": "bb", "digest": "b" * 64, "state": "failed",
                "params": {"seed": 2},
            },
        ]}
        front = pareto_from_farm_report(payload)
        assert [p["job_id"] for p in front["front"]] == ["aa"]
        assert front["unscored"] == ["bb"]
