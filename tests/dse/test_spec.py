"""SweepSpec: objectives, matrix expansion, content identity."""

import json

import pytest

from repro.dse import Objective, SweepSpec, default_objectives
from repro.farm import FarmError


class TestObjective:
    def test_orientation(self):
        assert Objective("gips", "max").better(2.0, 1.0)
        assert not Objective("gips", "max").better(1.0, 2.0)
        assert Objective("watts", "min").better(1.0, 2.0)

    def test_validation(self):
        with pytest.raises(FarmError, match="goal"):
            Objective("gips", "up")
        with pytest.raises(FarmError, match="metric key"):
            Objective("")

    def test_from_dict_accepts_pairs_and_dicts(self):
        assert Objective.from_dict(("gips", "max")) == Objective("gips", "max")
        assert Objective.from_dict({"key": "w"}) == Objective("w", "min")


class TestSweepSpec:
    def spec(self):
        return SweepSpec(
            workload="demo",
            base={"messages": 3},
            sweep={"topology": ["lattice", "mesh"], "seed": [1, 2]},
        )

    def test_defaults_to_the_paper_trio(self):
        spec = self.spec()
        assert spec.objectives == default_objectives()
        assert [obj.key for obj in spec.objectives] == [
            "gips", "mean_power_w", "energy_per_instr_pj",
        ]

    def test_expands_through_the_farm_matrix(self):
        spec = self.spec()
        jobs = spec.jobs()
        assert spec.num_points == 4
        assert [j.workload for j in jobs] == ["demo"] * 4
        # Same expansion as the equivalent MatrixSpec.
        assert [j.digest for j in jobs] == [
            j.digest for j in spec.to_matrix().jobs()
        ]

    def test_digest_covers_objectives(self):
        spec = self.spec()
        reweighted = SweepSpec(
            workload="demo",
            base={"messages": 3},
            sweep={"topology": ["lattice", "mesh"], "seed": [1, 2]},
            objectives=(("gips", "max"), ("total_energy_j", "min")),
        )
        assert spec.digest != reweighted.digest
        # But job identity is objective-independent: same simulations.
        assert [j.digest for j in spec.jobs()] == [
            j.digest for j in reweighted.jobs()
        ]

    def test_roundtrip_and_file_io(self, tmp_path):
        spec = self.spec()
        again = SweepSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest == spec.digest
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert SweepSpec.from_file(path).digest == spec.digest
        path.write_text("{nope")
        with pytest.raises(FarmError, match="unparseable"):
            SweepSpec.from_file(path)

    def test_rejects_duplicate_objectives(self):
        with pytest.raises(FarmError, match="duplicate objective"):
            SweepSpec(
                workload="demo",
                objectives=(("gips", "max"), ("gips", "min")),
            )

    def test_rejects_bad_axes_via_matrix_validation(self):
        with pytest.raises(FarmError, match="non-empty value list"):
            SweepSpec(workload="demo", sweep={"seed": []})
