"""End-to-end tests for ``python -m repro dse`` (and the farm
``--pareto-out`` passthrough)."""

import json

import pytest

from repro.__main__ import main

SWEEP = {
    "workload": "demo",
    "base": {"messages": 3},
    "sweep": {"topology": ["lattice", "mesh"], "seed": [1]},
}


@pytest.fixture
def sweep_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(SWEEP))
    return path


class TestDseCli:
    def test_submit_run_report_pareto(self, tmp_path, sweep_file, capsys):
        sweep_dir = tmp_path / "sweep"
        assert main(["dse", "submit", "--dir", str(sweep_dir),
                     "--sweep", str(sweep_file)]) == 0
        out = capsys.readouterr().out
        assert "2 point(s)" in out
        assert "gips(max)" in out

        report_path = tmp_path / "report.json"
        assert main(["dse", "run", "--dir", str(sweep_dir),
                     "--report-out", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "2 points (2 survived)" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "dse-report/1"

        # report subcommand refolds the same bytes from the directory.
        report2_path = tmp_path / "report2.json"
        assert main(["dse", "report", "--dir", str(sweep_dir),
                     "--out", str(report2_path)]) == 0
        capsys.readouterr()
        assert report_path.read_bytes() == report2_path.read_bytes()

        front_path = tmp_path / "front.json"
        csv_path = tmp_path / "front.csv"
        assert main(["dse", "pareto", "--dir", str(sweep_dir),
                     "--out", str(front_path), "--csv-out", str(csv_path),
                     "--scatter"]) == 0
        out = capsys.readouterr().out
        assert "pareto front" in out
        assert "* front   K knee   . dominated" in out
        front = json.loads(front_path.read_text())
        assert front["schema"] == "pareto-front/1"
        assert front["front"]
        assert csv_path.read_text().startswith("job_id,")

    def test_run_accepts_sweep_and_resumes_from_saved_spec(
        self, tmp_path, sweep_file, capsys
    ):
        sweep_dir = tmp_path / "sweep"
        assert main(["dse", "run", "--dir", str(sweep_dir),
                     "--sweep", str(sweep_file)]) == 0
        capsys.readouterr()
        # Re-run without --sweep: loads sweep.json from the directory;
        # every job is already done so the farm does nothing.
        assert main(["dse", "run", "--dir", str(sweep_dir)]) == 0
        assert "2 points (2 survived)" in capsys.readouterr().out

    def test_report_without_submit_fails_cleanly(self, tmp_path):
        # A directory with no sweep.json is a FarmError, not a traceback.
        from repro.farm import FarmError

        with pytest.raises(FarmError, match="submit a sweep first"):
            main(["dse", "report", "--dir", str(tmp_path / "nope")])

    def test_objective_override_and_validation(self, tmp_path, sweep_file,
                                               capsys):
        sweep_dir = tmp_path / "sweep"
        assert main(["dse", "run", "--dir", str(sweep_dir),
                     "--sweep", str(sweep_file)]) == 0
        capsys.readouterr()
        assert main(["dse", "pareto", "--dir", str(sweep_dir),
                     "--objective", "gips:max", "--json"]) == 0
        front = json.loads(capsys.readouterr().out)
        assert front["objectives"] == [{"key": "gips", "goal": "max"}]
        with pytest.raises(SystemExit, match="bad --objective"):
            main(["dse", "pareto", "--dir", str(sweep_dir),
                  "--objective", "gips:sideways"])


class TestFarmParetoPassthrough:
    def test_farm_report_pareto_out(self, tmp_path, sweep_file, capsys):
        sweep_dir = tmp_path / "sweep"
        assert main(["dse", "run", "--dir", str(sweep_dir),
                     "--sweep", str(sweep_file)]) == 0
        capsys.readouterr()
        front_path = tmp_path / "front.json"
        assert main(["farm", "report",
                     "--dir", str(sweep_dir / "queue"),
                     "--cache-dir", str(sweep_dir / "cache"),
                     "--pareto-out", str(front_path),
                     "--objective", "gips:max",
                     "--objective", "mean_power_w:min"]) == 0
        assert "wrote pareto front" in capsys.readouterr().out
        front = json.loads(front_path.read_text())
        assert front["schema"] == "pareto-front/1"
        assert front["front"]
