"""DSE engine tests."""
