"""The acceptance criteria: byte-identity across cold / warm / killed
runs, >=90% cache hits on the second pass, metric extraction."""

import pytest

from repro.dse import (
    SweepSpec,
    extract_metrics,
    fold_results,
    front_json,
    pareto_front,
    report_json,
    run_inline,
    run_sweep,
)
from repro.dse.report import SCHEMA, deadline_counts
from repro.farm import ResultCache

SPEC = {
    "workload": "demo",
    "base": {"messages": 3},
    "sweep": {"topology": ["lattice", "torus"], "seed": [1, 2]},
}


def spec():
    return SweepSpec.from_dict(SPEC)


class TestMetricExtraction:
    def test_derived_figures(self):
        report = {
            "energy": {
                "elapsed_s": 2e-6,
                "total_instructions": 4000,
                "total_energy_j": 8e-9,
                "mean_power_w": 4e-3,
                "link_energy_j": 1e-9,
            },
            "metrics": {
                "nos.deadline_hit{policy=edf}": 8,
                "nos.deadline_miss{policy=edf}": 2,
                "nos.deadline_shed{policy=edf}": 0,
            },
            "delivered_ok": True,
        }
        metrics = extract_metrics(report)
        assert metrics["gips"] == pytest.approx(4000 / 2e-6 / 1e9)
        assert metrics["energy_per_instr_pj"] == pytest.approx(
            8e-9 / 4000 * 1e12
        )
        assert metrics["deadline_miss_rate"] == pytest.approx(0.2)
        assert metrics["delivered_ok"] is True

    def test_missing_figures_stay_none(self):
        metrics = extract_metrics({"energy": {}})
        assert metrics["gips"] is None
        assert metrics["energy_per_instr_pj"] is None
        assert metrics["deadline_miss_rate"] is None

    def test_deadline_counts_sum_across_policies(self):
        counts = deadline_counts({
            "nos.deadline_miss{policy=edf}": 1,
            "nos.deadline_miss{policy=rm}": 2,
            "nos.deadline_hit{policy=edf}": 3,
            "unrelated{x=1}": 99,
        })
        assert counts == {"hit": 3, "miss": 3, "shed": 0}


class TestInlineFold:
    def test_report_shape_and_byte_identity(self):
        report = run_inline(spec())
        assert report["schema"] == SCHEMA
        assert report["points"] == 4
        assert report["summary"]["survived"] == 4
        assert [c["job_id"] for c in report["cells"]] == [
            j.job_id for j in spec().jobs()
        ]
        assert report_json(report) == report_json(run_inline(spec()))

    def test_missing_documents_fold_as_failed_cells(self):
        jobs = spec().jobs()
        documents = {job.digest: None for job in jobs}
        report = fold_results(spec(), documents)
        assert report["summary"]["failed"] == 4
        assert all(cell["metrics"] is None for cell in report["cells"])
        # Still canonical and digest-stable.
        assert report_json(report) == report_json(
            fold_results(spec(), documents)
        )


class TestFarmByteIdentity:
    """Same seed + same spec => byte-identical report and front, even
    killed mid-run and resumed (exit-75), with cache hits on pass 2."""

    def test_cold_warm_and_preempted_runs_agree(self, tmp_path):
        jobs = spec().jobs()
        # Cold farm run with a mid-run kill of the first job: it exits
        # 75 and must resume byte-identically on another worker.
        report_killed, farm_killed = run_sweep(
            spec(), tmp_path / "killed", num_workers=2,
            preempt={jobs[0].job_id: 40},
        )
        assert farm_killed.to_dict()["preemptions"] == 1
        # Undisturbed cold run in a fresh directory.
        report_cold, _ = run_sweep(spec(), tmp_path / "cold", num_workers=2)
        # Second pass over a fresh queue sharing the cold run's cache:
        # every point must come from cache (>= 90% is the CI floor).
        report_warm, farm_warm = run_sweep(
            spec(), tmp_path / "warm", num_workers=2,
            cache_dir=tmp_path / "cold" / "cache",
        )
        assert farm_warm.to_dict()["cache"]["hit_rate"] >= 0.9
        assert (
            report_json(report_killed)
            == report_json(report_cold)
            == report_json(report_warm)
        )
        fronts = [
            front_json(pareto_front(report))
            for report in (report_killed, report_cold, report_warm)
        ]
        assert fronts[0] == fronts[1] == fronts[2]

    def test_inline_matches_farm(self, tmp_path):
        report_farm, _ = run_sweep(spec(), tmp_path / "farm", num_workers=2)
        cache = ResultCache(tmp_path / "farm" / "cache")
        report_inline_cached = run_inline(spec(), cache=cache)
        report_inline_fresh = run_inline(spec())
        assert (
            report_json(report_farm)
            == report_json(report_inline_cached)
            == report_json(report_inline_fresh)
        )
