"""Tests for reliable channels over lossy links."""

import pytest

from repro import ReliableChannel, SwallowSystem
from repro.apps.reliable import RetryExhaustedError, frame_checksum
from repro.faults import FaultCampaign, FlakyLink, LinkKill
from repro.network.routing import Layer


def stream(system, channel, words, payload=lambda i: i * 3 + 1):
    """Spawn a reliable producer/consumer pair; returns the RX list."""
    received = []

    def producer():
        for i in range(words):
            yield from channel.send(payload(i))

    def consumer():
        for _ in range(words):
            received.append((yield from channel.recv()))
        yield from channel.drain()

    tx_core = channel.tx.core
    rx_core = channel.rx.core
    system.spawn_task(tx_core, producer(), name="rel.tx")
    system.spawn_task(rx_core, consumer(), name="rel.rx")
    return received


def adjacent_pair(system):
    """Two cores joined by a direct vertical board link."""
    topo = system.topology
    node_a = topo.node_at(0, 0, Layer.VERTICAL)
    node_b = topo.node_at(0, 1, Layer.VERTICAL)
    cores = {core.node_id: core for core in system.cores}
    return cores[node_a], cores[node_b]


class TestHealthyChannel:
    def test_delivers_without_retries(self):
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        received = stream(system, channel, words=8)
        system.run()
        assert received == [i * 3 + 1 for i in range(8)]
        assert channel.stats.retries == 0
        assert channel.stats.frames_sent == 8
        assert channel.stats.acked == 8
        assert channel.stats.retry_bits == 0

    def test_retry_energy_zero_without_retries(self):
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        stream(system, channel, words=4)
        system.run()
        assert channel.retry_energy_j(system.accounting) == 0.0


class TestLossyChannel:
    def test_full_delivery_under_ten_percent_loss(self):
        """The acceptance bar: 100% of payloads arrive intact and in
        order across a 10% token-loss flaky link, with retries > 0."""
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        received = stream(system, channel, words=12)
        campaign = FaultCampaign(
            system,
            [FlakyLink(at_us=0.0, node_a=core_a.node_id,
                       node_b=core_b.node_id, drop_rate=0.10)],
            seed=7,
        )
        campaign.arm()
        system.run()
        assert received == [i * 3 + 1 for i in range(12)]
        assert channel.stats.delivered == 12
        assert channel.stats.retries > 0
        assert channel.stats.retry_bits > 0
        assert system.all_halted        # both endpoints terminated cleanly

    def test_retry_energy_attributed(self):
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        stream(system, channel, words=10)
        campaign = FaultCampaign(
            system,
            [FlakyLink(at_us=0.0, node_a=core_a.node_id,
                       node_b=core_b.node_id, drop_rate=0.10)],
            seed=3,
        )
        campaign.arm()
        system.run()
        retry_j = channel.retry_energy_j(system.accounting)
        assert 0.0 < retry_j < system.accounting.link_energy_j

    def test_corruption_detected_by_checksum(self):
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        received = stream(system, channel, words=10)
        campaign = FaultCampaign(
            system,
            [FlakyLink(at_us=0.0, node_a=core_a.node_id,
                       node_b=core_b.node_id, corrupt_rate=0.10)],
            seed=11,
        )
        campaign.arm()
        system.run()
        # Every word survives corruption: damaged frames fail the
        # checksum (or damage the ack) and are retransmitted.
        assert received == [i * 3 + 1 for i in range(10)]
        assert (channel.stats.checksum_failures
                + channel.stats.bad_acks) > 0


class TestSeveredRoute:
    def test_permanent_link_kill_raises_typed_error(self):
        """With the only route dead and healing off, the sender must
        surface RetryExhaustedError — never stall silently.  The send
        deadline turns a transmit buffer that will never drain into a
        counted retry."""
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b, max_retries=4)
        stream(system, channel, words=8)
        campaign = FaultCampaign(
            system,
            [LinkKill(at_us=8.0, node_a=core_a.node_id,
                      node_b=core_b.node_id)],
            seed=0,
            heal=False,
        )
        campaign.arm()
        with pytest.raises(RetryExhaustedError) as excinfo:
            system.run()
        # The typed error carries the stuck frame and the spent budget.
        assert excinfo.value.attempts == 4 + 1
        assert excinfo.value.seq >= 1       # some words got through first
        assert channel.stats.send_timeouts > 0
        assert channel.stats.delivered < 8

    def test_backoff_capped_at_documented_maximum(self):
        channel = ReliableChannel.between(
            *adjacent_pair(SwallowSystem(metrics=False)),
            ack_timeout_cycles=1_000,
            max_backoff_cycles=3_000,
        )
        assert channel.max_backoff_cycles == 3_000
        backoff = channel.ack_timeout_cycles
        seen = []
        for _ in range(6):
            seen.append(backoff)
            backoff = min(backoff * 2, channel.max_backoff_cycles)
        assert seen == [1_000, 2_000, 3_000, 3_000, 3_000, 3_000]

    def test_default_backoff_cap_is_16x_ack_timeout(self):
        channel = ReliableChannel.between(
            *adjacent_pair(SwallowSystem(metrics=False)),
            ack_timeout_cycles=2_000,
        )
        assert channel.max_backoff_cycles == 32_000


class TestProtocol:
    def test_checksum_mixes_seq_and_value(self):
        assert frame_checksum(0, 5) != frame_checksum(1, 5)
        assert frame_checksum(0, 5) != frame_checksum(0, 6)
        assert frame_checksum(3, 9) == frame_checksum(3, 9)
        assert 0 <= frame_checksum(12345, 0xDEADBEEF) <= 0xFFFF_FFFF

    def test_multihop_reliable_channel(self):
        """Reliability composes with multi-hop wormhole routes."""
        system = SwallowSystem(metrics=False)
        channel = ReliableChannel.between(system.core(0), system.core(13))
        received = stream(system, channel, words=6)
        system.run()
        assert received == [i * 3 + 1 for i in range(6)]
        assert channel.stats.retries == 0
