"""Tests for runtime healing: route recovery and task re-placement."""

import pytest

from repro import NanoOS, ReliableChannel, SwallowSystem
from repro.faults import CoreKill, FaultCampaign, HealthMonitor, LinkKill, NodeKill
from repro.network.routing import Layer
from repro.xs1.errors import ResourceError

from tests.faults.test_reliable import adjacent_pair, stream


class TestRouteHealing:
    def test_mid_run_link_kill_recomputes_routes(self):
        """Kill the stream's direct link mid-run: the monitor switches to
        table routing, the stream detours, and every word arrives."""
        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        received = stream(system, channel, words=20, payload=lambda i: i + 100)
        campaign = FaultCampaign(
            system,
            [LinkKill(at_us=3.0, node_a=core_a.node_id, node_b=core_b.node_id)],
            seed=0,
        )
        campaign.arm()
        assert system.topology.fabric.routing_tables is None
        system.run()
        assert received == [i + 100 for i in range(20)]
        assert system.topology.fabric.routing_tables is not None
        assert campaign.monitor.reroutes == 1
        assert len(campaign.monitor.link_failures) == 1

    def test_double_fault_on_same_route_reroutes_twice(self):
        """Two successive link deaths on the stream's route: the first
        kills the direct link (detour via the ring), the second kills a
        link on the detour itself.  The monitor must recompute tables
        both times, every word must still arrive in order, and at
        quiescence no switch credit may be leaked anywhere."""
        from repro.network.params import SWITCH_BUFFER_TOKENS

        system = SwallowSystem(metrics=False)
        core_a, core_b = adjacent_pair(system)
        channel = ReliableChannel.between(core_a, core_b)
        received = stream(system, channel, words=20, payload=lambda i: i + 100)
        campaign = FaultCampaign(
            system,
            [
                LinkKill(at_us=3.0, node_a=core_a.node_id,
                         node_b=core_b.node_id),
                # The first detour runs 0-1-3-2-10-11-9-8; link 10-11 is
                # on it, so this second death forces another recompute.
                LinkKill(at_us=10.0, node_a=10, node_b=11),
            ],
            seed=0,
        )
        campaign.arm()
        system.run()
        assert received == [i + 100 for i in range(20)]
        assert campaign.monitor.reroutes == 2
        assert len(campaign.monitor.link_failures) == 2
        fabric = system.topology.fabric
        dead = {(r.node_a, r.node_b) for r in fabric.link_records
                if not r.healthy}
        assert dead == {(core_a.node_id, core_b.node_id), (10, 11)}
        # Credit conservation: every link idle with a full credit window
        # (cancelled in-flight tokens were refunded, nothing double
        # counted) and every switch buffer drained.
        for link in fabric.links:
            assert not link.busy, link.name
            assert link.credits == SWITCH_BUFFER_TOKENS, link.name

    def test_monitor_counts_every_failure(self):
        system = SwallowSystem(metrics=False)
        fabric = system.topology.fabric
        monitor = HealthMonitor(fabric)
        topo = system.topology
        fabric.fail_link(topo.node_at(0, 0, Layer.VERTICAL),
                         topo.node_at(0, 1, Layer.VERTICAL))
        fabric.fail_link(topo.node_at(1, 0, Layer.VERTICAL),
                         topo.node_at(1, 1, Layer.VERTICAL))
        assert monitor.reroutes == 2
        assert fabric.routing_tables is not None

    def test_monitor_without_nos_still_kills_core(self):
        system = SwallowSystem(metrics=False)
        monitor = HealthMonitor(system.topology.fabric)
        core = system.core(4)
        assert monitor.on_core_failed(core) == []
        assert core.failed


class TestPlacementHealing:
    def test_core_kill_replaces_tasks(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        job = nos.map(lambda x: x * x, list(range(16)), cost_per_item=20_000)
        victim = nos.tasks[3].core
        campaign = FaultCampaign(
            system, [CoreKill(at_us=10.0, node_id=victim.node_id)],
            seed=0, nos=nos,
        )
        campaign.arm()
        system.run()
        assert job.done
        assert job.ordered_results() == [x * x for x in range(16)]
        assert nos.replacements == 1
        assert nos.failed_cores == [victim]
        restarted = [t for t in nos.tasks if t.restarts]
        assert len(restarted) == 1
        assert restarted[0].core is not victim

    def test_node_kill_takes_core_and_links(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        job = nos.map(lambda x: -x, list(range(16)), cost_per_item=20_000)
        victim = nos.tasks[0].core
        campaign = FaultCampaign(
            system, [NodeKill(at_us=5.0, node_id=victim.node_id)],
            seed=0, nos=nos,
        )
        campaign.arm()
        system.run()
        assert job.done and job.ordered_results() == [-x for x in range(16)]
        assert victim.failed
        fabric = system.topology.fabric
        assert all(
            not record.healthy
            for record in fabric.link_records
            if victim.node_id in (record.node_a, record.node_b)
        )

    def test_fault_budget_exceeded_raises(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system, fault_budget=1)
        nos.map(lambda x: x, list(range(16)), cost_per_item=50_000)
        campaign = FaultCampaign(
            system,
            [CoreKill(at_us=5.0, node_id=nos.tasks[0].core.node_id),
             CoreKill(at_us=10.0, node_id=nos.tasks[1].core.node_id)],
            seed=0, nos=nos,
        )
        campaign.arm()
        with pytest.raises(ResourceError, match="fault budget"):
            system.run()
        assert nos.replacements == 1     # the first failure healed fine

    def test_pick_core_skips_failed_cores(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        dead = system.core(0)
        nos.handle_core_failure(dead)

        def task(core):
            def body():
                from repro import Compute
                yield Compute(10)
            return body()

        handle = nos.submit(task)
        assert handle.core is not dead
        with pytest.raises(ResourceError, match="failed"):
            nos.submit(task, pin=dead)

    def test_handle_core_failure_idempotent(self):
        system = SwallowSystem(metrics=False)
        nos = NanoOS(system)
        core = system.core(2)
        nos.handle_core_failure(core)
        assert nos.handle_core_failure(core) == []
        assert nos.failed_cores == [core]
