"""Tests for campaign scheduling, determinism, reporting, and the CLI."""

import json

import pytest

from repro import NanoOS, ReliableChannel, SwallowSystem
from repro.__main__ import main
from repro.faults import (
    BitFlip,
    CoreKill,
    FaultCampaign,
    FlakyLink,
    LinkKill,
    NodeKill,
)
from repro.network.routing import Layer

from tests.faults.test_reliable import adjacent_pair, stream


def run_campaign(seed):
    """A mixed campaign over a reliable stream plus a NanoOS map job."""
    system = SwallowSystem()
    core_a, core_b = adjacent_pair(system)
    nos = NanoOS(system)
    job = nos.map(lambda x: x + 1, list(range(8)), cost_per_item=10_000)
    channel = ReliableChannel.between(core_a, core_b)
    received = stream(system, channel, words=10)
    campaign = FaultCampaign(
        system,
        [
            FlakyLink(at_us=0.0, node_a=core_a.node_id, node_b=core_b.node_id,
                      drop_rate=0.08, corrupt_rate=0.02),
            BitFlip(at_us=2.0, node_a=core_a.node_id, node_b=core_b.node_id),
            CoreKill(at_us=5.0, node_id=nos.tasks[5].core.node_id),
        ],
        seed=seed,
        nos=nos,
    )
    campaign.register_channel("stream", channel)
    campaign.register_metrics(system.metrics)
    campaign.arm()
    system.run()
    assert received == [i * 3 + 1 for i in range(10)]
    assert job.done
    return campaign.report(), system.metrics_snapshot()


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        """The acceptance bar: same seed, same workload => byte-identical
        campaign report and metrics snapshot."""
        report_1, metrics_1 = run_campaign(seed=123)
        report_2, metrics_2 = run_campaign(seed=123)
        assert report_1.to_json() == report_2.to_json()
        assert metrics_1.to_json() == metrics_2.to_json()

    def test_different_seed_differs(self):
        report_1, _ = run_campaign(seed=123)
        report_2, _ = run_campaign(seed=124)
        assert report_1.to_json() != report_2.to_json()


class TestCampaignMechanics:
    def test_arm_twice_raises(self):
        system = SwallowSystem(metrics=False)
        campaign = FaultCampaign(system, [], seed=0)
        campaign.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            campaign.arm()

    def test_duplicate_channel_name_raises(self):
        system = SwallowSystem(metrics=False)
        campaign = FaultCampaign(system, [], seed=0)
        channel = ReliableChannel.between(system.core(0), system.core(1))
        campaign.register_channel("c", channel)
        with pytest.raises(ValueError, match="already registered"):
            campaign.register_channel("c", channel)

    def test_flaky_until_us_uninstalls_hook(self):
        system = SwallowSystem(metrics=False)
        topo = system.topology
        node_a = topo.node_at(0, 0, Layer.VERTICAL)
        node_b = topo.node_at(0, 1, Layer.VERTICAL)
        campaign = FaultCampaign(
            system,
            [FlakyLink(at_us=1.0, node_a=node_a, node_b=node_b,
                       drop_rate=0.5, until_us=2.0)],
            seed=0,
        )
        campaign.arm()
        record = topo.fabric.find_link(node_a, node_b)
        system.run_for_us(1.5)
        assert record.forward.fault_hook is not None
        system.run_for_us(1.0)
        assert record.forward.fault_hook is None
        assert record.backward.fault_hook is None

    def test_flaky_rates_validated(self):
        with pytest.raises(ValueError, match="lie in"):
            FlakyLink(at_us=0.0, node_a=0, node_b=1,
                      drop_rate=0.8, corrupt_rate=0.4)
        with pytest.raises(ValueError, match="after"):
            FlakyLink(at_us=2.0, node_a=0, node_b=1,
                      drop_rate=0.1, until_us=1.0)

    def test_events_record_injection_times(self):
        report, _ = run_campaign(seed=5)
        events = report.to_dict()["events"]
        assert [e["kind"] for e in events] == [
            "flaky_link", "bit_flip", "core_kill",
        ]
        assert events[1]["time_ps"] == 2_000_000
        assert events[2]["replaced"] >= 0

    def test_metrics_series_present(self):
        _, snapshot = run_campaign(seed=9)
        assert snapshot.value("faults.injected") == 3
        assert snapshot.value("faults.tokens_dropped") > 0
        assert snapshot.value("faults.failed_cores") == 1
        assert snapshot.value("faults.replacements") >= 0
        assert snapshot.value("faults.channel_delivered", channel="stream") == 10


class TestFromSpec:
    def test_round_trip(self):
        system = SwallowSystem(metrics=False)
        spec = {
            "seed": 7,
            "faults": [
                {"kind": "flaky_link", "at_us": 0.0, "node_a": 0,
                 "node_b": 8, "drop_rate": 0.1},
                {"kind": "link_kill", "at_us": 5.0, "node_a": 0, "node_b": 8},
                {"kind": "node_kill", "at_us": 9.0, "node_id": 1},
                {"kind": "core_kill", "at_us": 10.0, "node_id": 2},
                {"kind": "bit_flip", "at_us": 1.0, "node_a": 0, "node_b": 8},
            ],
        }
        campaign = FaultCampaign.from_spec(system, spec)
        assert campaign.seed == 7
        kinds = [type(f) for f in campaign.faults]
        assert kinds == [FlakyLink, LinkKill, NodeKill, CoreKill, BitFlip]

    def test_unknown_kind_rejected(self):
        system = SwallowSystem(metrics=False)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultCampaign.from_spec(
                system, {"faults": [{"kind": "gamma_ray", "at_us": 0.0}]}
            )


class TestCli:
    def test_faults_command_default_campaign(self, capsys):
        assert main(["faults", "--words", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign (seed 1)" in out
        assert "6/6 words delivered, intact" in out

    def test_faults_command_json(self, capsys):
        assert main(["faults", "--words", "4", "--seed", "2", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["delivered_ok"] is True
        assert document["report"]["seed"] == 2
        assert document["report"]["channels"]["stream"]["delivered"] == 4

    def test_faults_command_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps({
            "seed": 4,
            "faults": [{"kind": "flaky_link", "at_us": 0.0,
                        "node_a": 0, "node_b": 8, "drop_rate": 0.05}],
        }))
        assert main(["faults", "--words", "4", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "fault campaign (seed 4)" in out
        assert "4/4 words delivered, intact" in out
