"""Tests for runtime fault injection mechanics (links, switches, cores)."""

import pytest

from repro.network.link import LinkFailedError
from repro.network.routing import Layer, RoutingError
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.sim import Simulator, us
from repro.xs1 import (
    BehavioralThread,
    CheckCt,
    Compute,
    RecvWord,
    SendCt,
    SendWord,
    XCore,
)
from repro.xs1.errors import ResourceError


def build():
    sim = Simulator()
    topo = SwallowTopology(sim)
    return sim, topo


class TestDoubleFailure:
    def test_half_link_double_fail_raises(self):
        sim, topo = build()
        link = topo.fabric.links[0]
        link.fail()
        with pytest.raises(LinkFailedError, match="already failed"):
            link.fail()

    def test_fabric_double_fail_raises(self):
        """Regression: failing an already-failed pair used to fail its
        healthy twin silently; now it is a clear error."""
        sim, topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b)
        with pytest.raises(RoutingError, match="already failed"):
            topo.fabric.fail_link(a, b)

    def test_forced_double_fail_raises_too(self):
        sim, topo = build()
        a = topo.node_at(0, 0, Layer.VERTICAL)
        b = topo.node_at(0, 1, Layer.VERTICAL)
        topo.fabric.fail_link(a, b, force=True)
        with pytest.raises(RoutingError, match="already failed"):
            topo.fabric.fail_link(a, b, force=True)


class TestForcedFailure:
    def test_busy_link_requires_force(self):
        """A held link still refuses the polite (idle-only) failure."""
        sim, topo = build()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        core_a = XCore(sim, a, topo.fabric)
        core_b = XCore(sim, b, topo.fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)

        def sender():
            for i in range(64):
                yield SendWord(tx, i)
            yield SendCt(tx, CT_END)

        BehavioralThread(core_a, sender())
        # Run just far enough for the route to seize the direct link.
        sim.run_for(us(1))
        record = topo.fabric.find_link(a, b)
        assert record.forward.holder is not None
        with pytest.raises(RuntimeError, match="force=True"):
            record.forward.fail()

    def test_mid_run_kill_does_not_wedge(self):
        """Force-failing the link under an open route drops the in-flight
        traffic, flushes the severed route, and the network stays live:
        a later transfer over recomputed tables still delivers."""
        sim, topo = build()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        core_a = XCore(sim, a, topo.fabric)
        core_b = XCore(sim, b, topo.fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        got = []

        def sender():
            for i in range(64):
                yield SendWord(tx, i)
            yield SendCt(tx, CT_END)

        def receiver():
            # Consume whatever arrives; the kill truncates the stream.
            while True:
                got.append((yield RecvWord(rx)))

        BehavioralThread(core_a, sender())
        BehavioralThread(core_b, receiver())
        topo.fabric.use_table_routing()
        sim.schedule_at(us(2), lambda: topo.fabric.fail_link(a, b, force=True))
        sim.run_for(us(400))
        fabric = topo.fabric
        assert not fabric.find_link(a, b).healthy
        # The severed route was flushed, not left holding links open.
        severed = sum(s.routes_severed for s in fabric.switches.values())
        assert severed >= 1
        dropped = sum(link.tokens_dropped for link in fabric.links)
        discarded = sum(s.tokens_discarded for s in fabric.switches.values())
        assert dropped + discarded >= 1
        # The surviving lattice still routes fresh traffic between the
        # same pair (the tables detour around the dead link).
        tx2 = core_a.allocate_chanend()
        rx2 = core_b.allocate_chanend()
        tx2.set_dest(rx2.address)
        got2 = []

        def sender2():
            yield SendWord(tx2, 0xBEEF)
            yield SendCt(tx2, CT_END)

        def receiver2():
            got2.append((yield RecvWord(rx2)))
            yield CheckCt(rx2, CT_END)

        BehavioralThread(core_a, sender2())
        BehavioralThread(core_b, receiver2())
        sim.run()
        assert got2 == [0xBEEF]

    def test_fail_node_links_isolates_switch(self):
        sim, topo = build()
        node = topo.node_at(0, 0, Layer.VERTICAL)
        records = topo.fabric.fail_node_links(node)
        assert len(records) >= 2
        assert all(not record.healthy for record in records)
        with pytest.raises(RoutingError, match="no healthy links"):
            topo.fabric.fail_node_links(node)


class TestFlakyHooks:
    def test_hook_spares_headers_and_control_tokens(self):
        """With a 100% corruption hook the route still opens, routes
        correctly, and closes: only payload values are damaged."""
        sim, topo = build()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        record = topo.fabric.find_link(a, b)
        from repro.network.token import Token

        record.forward.fault_hook = lambda token: Token(token.value ^ 0xFF)
        core_a = XCore(sim, a, topo.fabric)
        core_b = XCore(sim, b, topo.fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)
        got = []

        def sender():
            yield SendWord(tx, 0x00000000)
            yield SendCt(tx, CT_END)

        def receiver():
            got.append((yield RecvWord(rx)))
            yield CheckCt(rx, CT_END)   # END crossed the link unharmed

        BehavioralThread(core_a, sender())
        BehavioralThread(core_b, receiver())
        sim.run()
        assert got == [0xFFFFFFFF]      # every payload token flipped
        assert record.forward.tokens_corrupted == 4

    def test_dropped_tokens_refund_credit(self):
        """A 100% drop hook loses all payload but never leaks credits:
        the stream keeps flowing (and the END still closes the route)."""
        sim, topo = build()
        a = topo.node_at(1, 0, Layer.VERTICAL)
        b = topo.node_at(1, 1, Layer.VERTICAL)
        record = topo.fabric.find_link(a, b)
        record.forward.fault_hook = lambda token: None
        core_a = XCore(sim, a, topo.fabric)
        core_b = XCore(sim, b, topo.fabric)
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)

        def sender():
            for i in range(16):         # far more than one buffer's worth
                yield SendWord(tx, i)
            yield SendCt(tx, CT_END)

        sender_thread = BehavioralThread(core_a, sender())
        sim.run()
        assert sender_thread.halted     # never starved of credits
        assert record.forward.tokens_dropped == 64
        from repro.network.params import SWITCH_BUFFER_TOKENS
        assert record.forward.credits == SWITCH_BUFFER_TOKENS


class TestCoreFailure:
    def test_fail_halts_threads_and_rejects_new_work(self):
        sim, topo = build()
        node = topo.node_at(0, 0, Layer.VERTICAL)
        core = XCore(sim, node, topo.fabric)

        def long_body():
            yield Compute(1_000_000)

        thread = BehavioralThread(core, long_body())
        sim.run_for(us(1))
        assert not thread.halted
        core.fail()
        assert core.failed and thread.halted

        def short_body():
            yield Compute(1)

        with pytest.raises(ResourceError, match="failed"):
            BehavioralThread(core, short_body())
        core.fail()                     # idempotent
