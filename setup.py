"""Setup shim: enables `pip install -e . --no-use-pep517` on offline hosts without the `wheel` package."""
from setuptools import setup

setup()
