"""Fig. 4: impact of voltage + frequency scaling (one core, loaded).

Reproduces the two curves — power at 1 V and power after voltage
scaling — including the paper's anchor voltages (0.6 V @ 71 MHz,
0.95 V @ 500 MHz) and P = C V^2 f scaling.
"""

import pytest

from repro.energy import dvfs_saving_fraction, figure4_series, min_voltage


def run(report_table):
    series = figure4_series(points=8)
    rows = [
        [
            round(row["f_mhz"], 1),
            round(min_voltage(row["f_mhz"]), 3),
            round(row["p_1v_mw"], 1),
            round(row["p_dvfs_mw"], 1),
            f"{1 - row['p_dvfs_mw'] / row['p_1v_mw']:.1%}",
        ]
        for row in series
    ]
    report_table(
        "fig4_dvfs",
        "Fig. 4: voltage + frequency scaling, one core under 4-thread load",
        ["MHz", "Vmin (V)", "P at 1 V (mW)", "P after DVFS (mW)", "saving"],
        rows,
        notes="Paper: Vmin 0.6 V at 71 MHz and 0.95 V at 500 MHz; "
              "P = C V^2 f.  Figure y-range ~20-200 mW.",
    )
    return series


def test_fig4_dvfs(benchmark, report_table):
    series = benchmark(run, report_table)
    # Curve endpoints inside the figure's plotted range.
    assert 20 <= series[0]["p_dvfs_mw"] <= 30
    assert series[-1]["p_1v_mw"] == pytest.approx(196, abs=1)
    # Savings grow toward low frequency (the figure's widening gap).
    assert dvfs_saving_fraction(71) > dvfs_saving_fraction(500)
    assert dvfs_saving_fraction(71) == pytest.approx(0.64, abs=0.01)
    assert dvfs_saving_fraction(500) == pytest.approx(0.0975, abs=0.005)
