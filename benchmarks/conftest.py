"""Shared benchmark infrastructure.

Every bench regenerates one table or figure of the paper and both
prints it and writes it to ``benchmarks/out/<name>.txt`` so results
survive pytest's output capture.  Rows typically carry a paper value, a
measured/computed value, and their ratio.

A session-wide profile of the simulator itself (events executed,
events/sec, wall time per bench) is written to
``benchmarks/out/bench_profile.json`` from the kernel's global
``KERNEL_STATS`` ledger.
"""

import json
import time
from pathlib import Path

import pytest

from repro.sim.engine import KERNEL_STATS

OUT_DIR = Path(__file__).parent / "out"

#: Per-test kernel profile rows collected by the hookwrapper below.
_PROFILE_ROWS: list[dict] = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Attribute kernel events and wall time to each benchmark test."""
    events_before = KERNEL_STATS.events_executed
    wall_before = time.perf_counter()
    yield
    wall_s = time.perf_counter() - wall_before
    events = KERNEL_STATS.events_executed - events_before
    _PROFILE_ROWS.append({
        "test": item.nodeid.split("::", 1)[-1] if "::" in item.nodeid else item.nodeid,
        "file": item.nodeid.split("::", 1)[0],
        "events": events,
        "wall_s": round(wall_s, 6),
        "events_per_sec": round(events / wall_s) if wall_s > 0 else 0,
    })


def pytest_sessionfinish(session):
    """Write the accumulated kernel profile for the whole bench run."""
    if not _PROFILE_ROWS:
        return
    OUT_DIR.mkdir(exist_ok=True)
    doc = {
        "events_total": sum(r["events"] for r in _PROFILE_ROWS),
        "wall_s_total": round(sum(r["wall_s"] for r in _PROFILE_ROWS), 6),
        "benches": sorted(_PROFILE_ROWS, key=lambda r: -r["events"]),
    }
    (OUT_DIR / "bench_profile.json").write_text(json.dumps(doc, indent=2) + "\n")


def format_table(title: str, headers: list[str], rows: list[list], notes: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


@pytest.fixture
def report_table():
    """Write a result table to benchmarks/out/ and stdout."""

    def write(name: str, title: str, headers: list[str], rows: list[list],
              notes: str = "") -> str:
        text = format_table(title, headers, rows, notes)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return write
