"""Shared benchmark infrastructure.

Every bench regenerates one table or figure of the paper and both
prints it and writes it to ``benchmarks/out/<name>.txt`` so results
survive pytest's output capture.  Rows typically carry a paper value, a
measured/computed value, and their ratio.
"""

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def format_table(title: str, headers: list[str], rows: list[list], notes: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


@pytest.fixture
def report_table():
    """Write a result table to benchmarks/out/ and stdout."""

    def write(name: str, title: str, headers: list[str], rows: list[list],
              notes: str = "") -> str:
        text = format_table(title, headers, rows, notes)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return write
