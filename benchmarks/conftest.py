"""Shared benchmark infrastructure.

Every bench regenerates one table or figure of the paper and both
prints it and writes it to ``benchmarks/out/<name>.txt`` so results
survive pytest's output capture.  Rows typically carry a paper value, a
measured/computed value, and their ratio.

A kernel profile of the simulator itself (events executed, events/sec,
wall time per bench) is maintained in
``benchmarks/out/bench_profile.json`` from the kernel's global
``KERNEL_STATS`` ledger.  The file is **merged across sessions**: a run
of one bench updates that bench's row and leaves every other bench's
row in place, so the profile always covers every bench ever run instead
of only the most recent subset.  Deterministically *replayed* events
(checkpoint restore/rollback reconstruction) are reported separately
and never counted in events/sec.

Each session also appends its rows to the append-only perf-history
ledger (``benchmarks/out/perf_history.jsonl`` — see
:mod:`repro.obs.perf`), building the throughput trajectory that
``python -m repro perf compare`` gates against.  Point the
``REPRO_PERF_HISTORY`` environment variable at another path to redirect
the append, or set it to an empty string to disable it.
"""

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.sim.engine import KERNEL_STATS

OUT_DIR = Path(__file__).parent / "out"

#: Per-test kernel profile rows collected by the hookwrapper below.
_PROFILE_ROWS: list[dict] = []


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Attribute kernel events and wall time to each benchmark test."""
    events_before = KERNEL_STATS.events_executed
    replayed_before = KERNEL_STATS.events_replayed
    wall_before = time.perf_counter()
    yield
    wall_s = time.perf_counter() - wall_before
    events = KERNEL_STATS.events_executed - events_before
    replayed = KERNEL_STATS.events_replayed - replayed_before
    _PROFILE_ROWS.append({
        "test": item.nodeid.split("::", 1)[-1] if "::" in item.nodeid else item.nodeid,
        "file": item.nodeid.split("::", 1)[0],
        "events": events,
        "events_replayed": replayed,
        "wall_s": round(wall_s, 6),
        "events_per_sec": round(events / wall_s) if wall_s > 0 else 0,
    })


def _bench_git_sha() -> str:
    """Best-effort short SHA for ledger rows (process edge)."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).parent,
        )
        if result.returncode == 0:
            return result.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    sha = os.environ.get("GITHUB_SHA", "")
    return sha[:12] if sha else "unknown"


def pytest_sessionfinish(session):
    """Merge this session's kernel profile and append it to the ledger."""
    if not _PROFILE_ROWS:
        return
    OUT_DIR.mkdir(exist_ok=True)
    profile_path = OUT_DIR / "bench_profile.json"
    merged: dict[tuple, dict] = {}
    if profile_path.exists():
        try:
            previous = json.loads(profile_path.read_text())
        except (OSError, ValueError):
            previous = {}
        for row in previous.get("benches", []):
            merged[(row["file"], row["test"])] = row
    for row in _PROFILE_ROWS:
        merged[(row["file"], row["test"])] = row
    rows = sorted(merged.values(), key=lambda r: -r["events"])
    doc = {
        "events_total": sum(r["events"] for r in rows),
        "wall_s_total": round(sum(r["wall_s"] for r in rows), 6),
        "benches": rows,
    }
    profile_path.write_text(json.dumps(doc, indent=2) + "\n")

    history_path = os.environ.get(
        "REPRO_PERF_HISTORY", str(OUT_DIR / "perf_history.jsonl")
    )
    if not history_path:
        return
    from repro.obs.perf import PerfHistory, records_from_profile

    PerfHistory(history_path).extend(records_from_profile(
        {"benches": _PROFILE_ROWS},
        timestamp=round(time.time(), 3),
        git_sha=_bench_git_sha(),
    ))


def format_table(title: str, headers: list[str], rows: list[list], notes: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


@pytest.fixture
def report_table():
    """Write a result table to benchmarks/out/ and stdout."""

    def write(name: str, title: str, headers: list[str], rows: list[list],
              notes: str = "") -> str:
        text = format_table(title, headers, rows, notes)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return write
