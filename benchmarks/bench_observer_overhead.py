"""Observer overhead: what does watching the simulator cost?

The performance observatory is only trustworthy if observing the kernel
does not meaningfully slow the kernel down — otherwise every recorded
events/sec number would measure the probes, not the simulator.  This
bench runs the same seeded multi-core workload in two configurations:
*plain* (metrics registry off, no tracer, no profiler) and *observed*
(metrics registry on, machine-wide tracer attached, wall-time profiler
installed), and reports the throughput delta.

Runs execute interleaved (plain, observed, plain, ...) and the reported
overhead is the **ratio of each configuration's best run**: wall-clock
noise on shared or virtualised hosts is one-sided (a descheduled vCPU
only ever makes a run look slower) and routinely dwarfs the true delta,
so means and even medians systematically overstate whichever
configuration runs longer.  The fastest run of each side is the least
noise-contaminated estimate — the same reasoning behind ``timeit``'s
convention of taking the minimum.

The observed configuration must stay within the 10 % overhead budget;
the measured delta is printed and written to
``benchmarks/out/observer_overhead.txt`` so the number rides along with
every bench run (and lands in the perf-history ledger via conftest).
"""

import time

from repro import Compute, RecvWord, SendWord, assemble
from repro.core.platform import SwallowSystem

#: Spin-loop iterations per worker core (sets the bench's event volume).
#: Kept short enough that one run fits between virtualised-host
#: scheduler hiccups — a clean (noise-free) run must be *possible* for
#: best-of-N to find it.
LOOPS = 2000
#: Words streamed across the fabric while the workers spin.
WORDS = 24
#: Interleaved rounds to run; each configuration's best run is scored,
#: so a scheduler hiccup in one run cannot fake an overhead regression.
ROUNDS = 10
#: If the measured overhead is still over budget after ROUNDS, keep
#: adding rounds up to this cap.  Extra samples only ever move each
#: side's best toward its noise-free floor, so a config that is truly
#: over budget still fails — this de-noises, it cannot mask.
MAX_ROUNDS = 30
#: The budget the observed configuration must stay within.
OVERHEAD_BUDGET = 0.10
#: Wall-time sampling stride for the profiled run.  Event counts stay
#: exact at any stride; this only spaces out the perf_counter pairs.
WALL_SAMPLE_EVERY = 64


def _load(system: SwallowSystem) -> list[int]:
    """A fixed multi-core workload: four spinning cores + one stream."""
    for node in (0, 2, 4, 6):
        system.spawn(system.core(node), assemble(f"""
            ldc r0, {LOOPS}
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
    channel = system.channel(system.core(1), system.core(10))
    received: list[int] = []

    def producer():
        for i in range(WORDS):
            yield Compute(80)
            yield SendWord(channel.a, i * 5 + 3)

    def consumer():
        for _ in range(WORDS):
            received.append((yield RecvWord(channel.b)))

    system.spawn_task(system.core(1), producer())
    system.spawn_task(system.core(10), consumer())
    return received


def _run_once(observed: bool) -> tuple[int, float]:
    """One run; returns (events executed, wall seconds)."""
    if observed:
        system = SwallowSystem()
        system.trace(capacity=65536)
        _load(system)
        wall_start = time.perf_counter()
        with system.profile(wall_sample_every=WALL_SAMPLE_EVERY):
            system.run()
        wall_s = time.perf_counter() - wall_start
    else:
        system = SwallowSystem(metrics=False)
        _load(system)
        wall_start = time.perf_counter()
        system.run()
        wall_s = time.perf_counter() - wall_start
    return system.sim.events_processed, wall_s


def _measure() -> tuple[int, int, float, float, float]:
    """Interleaved throughput measurement.

    Returns (plain events, observed events, best plain events/sec, best
    observed events/sec, best-vs-best overhead).
    """
    best: dict[bool, float] = {}
    events: dict[bool, int] = {}
    rounds = 0
    while rounds < MAX_ROUNDS:
        rounds += 1
        for observed in (False, True):
            ev, wall_s = _run_once(observed)
            events[observed] = ev
            if observed not in best or wall_s < best[observed]:
                best[observed] = wall_s
        if rounds >= ROUNDS and best[True] / best[False] - 1.0 < OVERHEAD_BUDGET:
            break
    return (events[False], events[True],
            events[False] / best[False], events[True] / best[True],
            best[True] / best[False] - 1.0)


def test_observer_overhead(report_table):
    events_plain, events_observed, plain_eps, observed_eps, overhead = (
        _measure()
    )
    assert events_plain == events_observed, (
        "observation changed the event trajectory — probes must be "
        "pure observers"
    )
    report_table(
        "observer_overhead",
        "Observer overhead: probes + tracer + profiler on vs off",
        ["configuration", "events", "best events/sec", "overhead"],
        [
            ["plain (metrics off)", events_plain, round(plain_eps), "-"],
            ["observed (metrics+tracer+profiler)", events_observed,
             round(observed_eps), f"{overhead:.1%}"],
        ],
        notes=(
            f"best of {ROUNDS}-{MAX_ROUNDS} interleaved rounds per "
            f"configuration (extended adaptively while over budget); "
            f"budget {OVERHEAD_BUDGET:.0%}. Kernel events/sec numbers "
            "elsewhere in the profile are trustworthy only while this "
            "overhead stays small."
        ),
    )
    print(f"observer overhead: {overhead:.2%} "
          f"(best {plain_eps:,.0f} -> {observed_eps:,.0f} ev/s)")
    assert overhead < OVERHEAD_BUDGET, (
        f"observer overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
