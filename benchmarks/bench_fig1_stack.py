"""Fig. 1: an eight board, 128 core stack of Swallow slices.

Builds the stack, runs a light all-boards workload, and reports
structure + power, including the manufacturing-yield account of why the
real machine topped out at 480 of 640 cores (§IV-B).
"""

import pytest

from repro.board import (
    build_stack,
    manufacturing_run,
    slice_power,
    usable_slices,
)
from repro.sim import Simulator, us
from repro.xs1 import assemble


def run(report_table):
    sim = Simulator()
    machine = build_stack(sim, boards=8)
    program = assemble("""
        ldc r0, 2000
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for board in machine.slices:
        board.cores[0].spawn(program)
    sim.run_for(us(100))
    energy = machine.accounting.total_energy_j()
    yields = manufacturing_run(seed=2015)
    rows = [
        ["boards in stack", 8, len(machine.slices)],
        ["cores in stack", 128, len(machine.cores)],
        ["slices span (x, y)", "(1, 8)", f"({machine.topology.slices_x}, {machine.topology.slices_y})"],
        ["stack max power (W)", round(8 * 4.5, 1), round(8 * slice_power().total_w, 1)],
        ["manufactured boards (SecIV-B)", 40, len(yields)],
        ["usable boards (seeded run)", 30, usable_slices(yields)],
        ["largest machine (cores)", 480, usable_slices(yields) * 16],
    ]
    report_table(
        "fig1_stack",
        "Fig. 1: the 8-board / 128-core stack, plus the yield story",
        ["property", "paper", "built"],
        rows,
        notes=f"100 us idle+light-load energy of the stack: {energy * 1e3:.2f} mJ.",
    )
    return machine, yields


def test_fig1_stack(benchmark, report_table):
    machine, yields = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert len(machine.cores) == 128
    assert len(machine.slices) == 8
    assert usable_slices(yields) * 16 == pytest.approx(480, abs=32)
