"""Eq. 2: IPS_t = f/max(4, Nt), IPS_c = f*min(4, Nt)/4.

Runs a real core with 1..8 spinning threads and compares *measured*
per-thread and aggregate instruction rates against the formula.
"""

import pytest

from repro.analysis import ips_per_core, ips_per_thread
from repro.sim import Simulator
from repro.xs1 import LoopbackFabric, XCore, assemble


def measure(n_threads: int) -> tuple[float, float]:
    """(per-thread MIPS, core MIPS) measured from simulation."""
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    program = assemble("""
        ldc r0, 800
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    threads = [core.spawn(program) for _ in range(n_threads)]
    sim.run()
    elapsed_s = sim.now / 1e12
    per_thread = threads[0].instructions_executed / elapsed_s
    total = core.stats.total_instructions / elapsed_s
    return per_thread / 1e6, total / 1e6


def run(report_table):
    rows = []
    for n in range(1, 9):
        thread_mips, core_mips = measure(n)
        rows.append([
            n,
            round(ips_per_thread(500e6, n) / 1e6, 1),
            round(thread_mips, 1),
            round(ips_per_core(500e6, n) / 1e6, 1),
            round(core_mips, 1),
        ])
    report_table(
        "eq2_throughput",
        "Eq. 2: per-thread and per-core MIPS vs active threads (500 MHz)",
        ["threads", "Eq.2 thread MIPS", "measured", "Eq.2 core MIPS", "measured "],
        rows,
        notes="Measured rates come from counting retired instructions on the "
              "simulated 4-stage pipeline, not from the formula.",
    )
    return rows


def test_eq2_throughput(benchmark, report_table):
    rows = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    for n, eq_thread, measured_thread, eq_core, measured_core in rows:
        assert measured_thread == pytest.approx(eq_thread, rel=0.02), f"Nt={n}"
        assert measured_core == pytest.approx(eq_core, rel=0.02), f"Nt={n}"
