"""Ablation: routing around failed links (§IV-B yield / §V.A flexibility).

"Yield issues, mostly with edge connectors" capped the real machine, and
"New routing algorithms can simply be programmed in software to cope
with these [configurations]".  We fail an on-board vertical link, switch
to software (table) routing, and measure the latency cost of the detour
plus end-to-end delivery on the degraded lattice.
"""

import pytest

from repro.network.routing import Layer
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.network.traffic import TrafficRun, bit_complement_pairs
from repro.sim import Simulator, to_ns
from repro.xs1 import BehavioralThread, CheckCt, RecvWord, SendCt, SendWord, XCore


def transfer_latency_ns(fail: bool, table_routing: bool) -> float:
    sim = Simulator()
    topo = SwallowTopology(sim)
    a = topo.node_at(1, 0, Layer.VERTICAL)
    b = topo.node_at(1, 1, Layer.VERTICAL)
    if fail:
        topo.fabric.fail_link(a, b)
    if table_routing:
        topo.fabric.use_table_routing()
    core_a = XCore(sim, a, topo.fabric)
    core_b = XCore(sim, b, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)
    done = []

    def sender():
        yield SendWord(tx, 1)
        yield SendCt(tx, CT_END)

    def receiver():
        yield RecvWord(rx)
        yield CheckCt(rx, CT_END)
        done.append(sim.now)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    assert done, "transfer incomplete"
    return to_ns(done[0])


def degraded_traffic_complete() -> bool:
    sim = Simulator()
    topo = SwallowTopology(sim)
    topo.fabric.fail_link(
        topo.node_at(1, 0, Layer.VERTICAL), topo.node_at(1, 1, Layer.VERTICAL)
    )
    topo.fabric.use_table_routing()
    run = TrafficRun(topo, bit_complement_pairs(topo), packets=2).start()
    sim.run()
    return run.stats.complete


def runtime_failure_recovery():
    """Mid-run variant: the link dies *under* live traffic.

    A reliable channel streams words across the pair; at 3 us the
    campaign force-kills their direct link.  The health monitor switches
    to table routing and the protocol retransmits whatever the kill ate,
    so every word still lands.  Returns (delivered, retries, reroutes,
    retry_energy_j).
    """
    from repro import ReliableChannel, SwallowSystem
    from repro.faults import FaultCampaign, LinkKill

    system = SwallowSystem(metrics=False)
    topo = system.topology
    a = topo.node_at(1, 0, Layer.VERTICAL)
    b = topo.node_at(1, 1, Layer.VERTICAL)
    cores = {core.node_id: core for core in system.cores}
    channel = ReliableChannel.between(cores[a], cores[b])
    words = 24
    received = []

    def producer():
        for i in range(words):
            yield from channel.send(i)

    def consumer():
        for _ in range(words):
            received.append((yield from channel.recv()))
        yield from channel.drain()

    system.spawn_task(cores[a], producer(), name="bench.tx")
    system.spawn_task(cores[b], consumer(), name="bench.rx")
    campaign = FaultCampaign(
        system, [LinkKill(at_us=3.0, node_a=a, node_b=b)], seed=0
    )
    campaign.arm()
    system.run()
    assert received == list(range(words)), "runtime failure lost data"
    return (
        len(received),
        channel.stats.retries,
        campaign.monitor.reroutes,
        channel.retry_energy_j(system.accounting),
    )


def run(report_table):
    healthy = transfer_latency_ns(fail=False, table_routing=False)
    healthy_table = transfer_latency_ns(fail=False, table_routing=True)
    degraded = transfer_latency_ns(fail=True, table_routing=True)
    complete = degraded_traffic_complete()
    delivered, retries, reroutes, retry_j = runtime_failure_recovery()
    rows = [
        ["healthy, dimension-order", round(healthy, 1), "direct N-S hop"],
        ["healthy, table routing", round(healthy_table, 1), "same path"],
        ["failed link, table routing", round(degraded, 1), "detour via neighbour column"],
        ["bit-complement on degraded lattice", "-", "complete" if complete else "WEDGED"],
        ["mid-run link kill, reliable channel", "-",
         f"{delivered} words, {retries} retries, {reroutes} reroute(s)"],
    ]
    report_table(
        "ablation_fault_tolerance",
        "Ablation: software re-routing around a failed board link",
        ["configuration", "word latency ns", "path"],
        rows,
        notes="The failed link is the only direct vertical hop of its "
              "column; the software tables detour through an adjacent "
              "column at a latency cost, and full traffic still delivers. "
              "The mid-run row kills the link while a reliable channel is "
              f"streaming; retransmissions cost {retry_j * 1e9:.2f} nJ.",
    )
    return healthy, healthy_table, degraded, complete, retries, reroutes


def test_ablation_fault_tolerance(benchmark, report_table):
    healthy, healthy_table, degraded, complete, retries, reroutes = (
        benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    )
    assert healthy_table == pytest.approx(healthy, rel=0.3)
    assert degraded > healthy          # the detour costs latency
    assert degraded < healthy * 6      # but stays the same order
    assert complete
    assert retries > 0                 # the kill ate live traffic
    assert reroutes == 1               # healed by one table switch-over
