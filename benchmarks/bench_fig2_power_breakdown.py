"""Fig. 2: power distribution for each Swallow processor node.

Reproduces the 260 mW decomposition and its percentages from the node
power model.
"""

import pytest

from repro.energy import node_power_breakdown

PAPER_SHARES = {
    "computation_and_memory": (78, 0.30),
    "static": (68, 0.26),
    "network_interface": (58, 0.22),
    "dcdc_and_io": (46, 0.18),
    "other": (10, 0.04),
}


def run(report_table):
    breakdown = node_power_breakdown()
    shares = breakdown.shares()
    rows = []
    for component, (paper_mw, paper_share) in PAPER_SHARES.items():
        model_mw = getattr(breakdown, component)
        rows.append([
            component.replace("_", " "),
            paper_mw,
            round(model_mw, 1),
            f"{paper_share:.0%}",
            f"{shares[component]:.1%}",
        ])
    rows.append(["TOTAL", 260, round(breakdown.total_mw, 1), "100%", "100%"])
    report_table(
        "fig2_power_breakdown",
        "Fig. 2: power distribution per Swallow node (260 mW total)",
        ["component", "paper mW", "model mW", "paper share", "model share"],
        rows,
    )
    return breakdown, shares


def test_fig2_power_breakdown(benchmark, report_table):
    breakdown, shares = benchmark(run, report_table)
    assert breakdown.total_mw == pytest.approx(260.0)
    assert shares["computation_and_memory"] == pytest.approx(0.30, abs=0.005)
    assert shares["static"] == pytest.approx(0.26, abs=0.005)
    assert shares["network_interface"] == pytest.approx(0.22, abs=0.005)
    assert shares["dcdc_and_io"] == pytest.approx(0.18, abs=0.005)
