"""Table II: comparison of candidate Swallow processors.

Re-runs the requirement engine over the candidate dataset; the paper's
verdict — "Only the XS1-L meets all requirements" — must re-emerge.
"""

from repro.analysis import TABLE_II, qualifying_processors


def run(report_table):
    rows = []
    for p in TABLE_II:
        rows.append([
            p.name,
            f"{p.cores}x{p.data_width_bits}-bit",
            "yes" if p.superscalar else "no",
            {True: "yes", False: "no", None: "optional"}[p.has_cache],
            p.multicore_interconnect or "none",
            p.time_deterministic.value,
            "YES" if p.meets_all_requirements() else "no",
        ])
    report_table(
        "table2_processors",
        "Table II: candidate processors vs Swallow's requirements",
        ["processor", "cores x width", "superscalar", "cache",
         "interconnect", "time-det.", "meets all"],
        rows,
        notes="Requirements: a scalable multi-core interconnect and "
              "unconditional time-deterministic execution.",
    )
    return qualifying_processors()


def test_table2_processors(benchmark, report_table):
    qualifiers = benchmark(run, report_table)
    assert [p.name for p in qualifiers] == ["XMOS XS1-L"]
