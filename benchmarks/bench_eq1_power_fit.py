"""Eq. 1: Pc = (46 + 0.30 f) mW — recovered by linear fit.

Measures per-core loaded power from simulation across the frequency
range and fits a line; the fit must recover the paper's static power
(46 mW) and dynamic slope (0.30 mW/MHz).
"""

import numpy as np
import pytest

from repro.energy import EnergyAccounting
from repro.sim import Frequency, Simulator, us
from repro.xs1 import LoopbackFabric, XCore, assemble


def measure_core_power_mw(f_mhz: int) -> float:
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    core.set_frequency(Frequency.mhz(f_mhz))
    program = assemble("""
        ldc r0, 500000
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for _ in range(4):
        core.spawn(program)
    ledger = EnergyAccounting(sim, [core], include_support=False)
    sim.run_for(us(150))
    return ledger.total_energy_j() / 150e-6 * 1e3


def run(report_table):
    frequencies = np.array([71, 125, 200, 275, 350, 425, 500], dtype=float)
    powers = np.array([measure_core_power_mw(int(f)) for f in frequencies])
    slope, intercept = np.polyfit(frequencies, powers, 1)
    residual = powers - (intercept + slope * frequencies)
    rows = [
        ["static power (mW)", 46.0, round(intercept, 2), round(intercept / 46.0, 3)],
        ["dynamic slope (mW/MHz)", 0.30, round(slope, 4), round(slope / 0.30, 3)],
        ["max |residual| (mW)", "-", round(float(np.abs(residual).max()), 3), "-"],
    ]
    report_table(
        "eq1_power_fit",
        "Eq. 1: linear fit of measured per-core loaded power vs frequency",
        ["quantity", "paper", "fitted", "ratio"],
        rows,
        notes="Pc = (46 + 0.30 f) mW; fit over seven simulated operating points.",
    )
    return slope, intercept, residual


def test_eq1_power_fit(benchmark, report_table):
    slope, intercept, residual = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert intercept == pytest.approx(46.0, rel=0.05)
    assert slope == pytest.approx(0.30, rel=0.05)
    assert np.abs(residual).max() < 2.0  # the paper calls it linear
