"""Bench: campaign farm throughput, cold versus cached.

The farm's pitch is that repeated design-space sweeps cost one
simulation per *changed* configuration.  We run the same DSE matrix
(topology x frequency x seeds) twice through a two-worker pool: a cold
pass that simulates every job, and a warm pass — fresh campaign
directory, shared result cache — that must complete every job as a
content-addressed cache hit.  The gate is the acceptance criterion
from the farm's introduction: the cached pass is at least **5x**
faster wall-to-wall.  Results also land as JSON in
``benchmarks/out/farm_throughput.json``.
"""

import json
import tempfile
from pathlib import Path

from repro.farm import JobQueue, MatrixSpec, ResultCache, WorkerPool

OUT_DIR = Path(__file__).parent / "out"

MATRIX = MatrixSpec(
    workload="faults_stream",
    base={"words": 6, "drop_rate": 0.05},
    sweep={
        "slices_x": [1, 2],
        "freq_mhz": [500, 250],
        "seed": [0, 1, 2],
    },
)

WORKERS = 2


def run_pass(root: Path, name: str, cache: ResultCache) -> dict:
    queue = JobQueue(root / name)
    queue.submit_all(MATRIX.jobs())
    pool = WorkerPool(queue, cache, num_workers=WORKERS,
                      checkpoint_every=500)
    report = pool.run().to_dict()
    return {
        "pass": name,
        "jobs": report["total_jobs"],
        "done": report["counts"]["done"],
        "cache_hits": report["cache"]["hits"],
        "wall_s": round(pool.wall_s, 6),
        "jobs_per_sec": round(report["total_jobs"] / pool.wall_s, 2),
    }


def run(report_table):
    with tempfile.TemporaryDirectory(prefix="bench_farm_") as text:
        root = Path(text)
        cache = ResultCache(root / "cache")
        cold = run_pass(root, "cold", cache)
        warm = run_pass(root, "warm", cache)
    speedup = cold["wall_s"] / warm["wall_s"] if warm["wall_s"] > 0 else 0.0
    report_table(
        "farm_throughput",
        f"Campaign farm throughput ({MATRIX.num_jobs} jobs, "
        f"{WORKERS} workers)",
        ["pass", "jobs", "cache hits", "wall s", "jobs/s"],
        [[p["pass"], p["jobs"], p["cache_hits"], p["wall_s"],
          p["jobs_per_sec"]] for p in (cold, warm)],
        notes=f"Warm pass: fresh campaign, shared result cache — every "
              f"job is a content-addressed hit, byte-identical to "
              f"re-simulating.  Speedup {speedup:.1f}x (gate: >= 5x).",
    )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "farm_throughput.json").write_text(
        json.dumps({
            "matrix": MATRIX.to_dict(),
            "workers": WORKERS,
            "passes": [cold, warm],
            "cached_speedup": round(speedup, 2),
        }, indent=2, sort_keys=True) + "\n"
    )
    return cold, warm, speedup


def test_farm_throughput(benchmark, report_table):
    cold, warm, speedup = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert cold["done"] == MATRIX.num_jobs and cold["cache_hits"] == 0
    assert warm["done"] == MATRIX.num_jobs
    assert warm["cache_hits"] == MATRIX.num_jobs  # every job a hit
    # The acceptance gate: a cached sweep is at least 5x faster.
    assert speedup >= 5.0, f"cached speedup only {speedup:.1f}x"
