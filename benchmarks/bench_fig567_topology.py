"""Figs. 5, 6, 7: slice structure, node links, and the unwoven lattice.

Structural verification: chips and cores per slice (Fig. 5), per-node
link complement (Fig. 6), the two-layer unwoven lattice with at most two
layer transitions per route (Fig. 7), and the §V.D bisection figure.
"""

import pytest

from repro.analysis import vertical_bisection_bps
from repro.network.routing import Layer, layer_transitions
from repro.network.topology import (
    SLICE_EDGE_PORTS,
    SLICE_OFFBOARD_LINKS,
    SwallowTopology,
)
from repro.sim import Simulator


def run(report_table):
    topo = SwallowTopology(Simulator())
    graph = topo.graph()
    by_class = {}
    for _, _, data in graph.edges(data=True):
        by_class[data["spec"].name] = by_class.get(data["spec"].name, 0) + 1
    package = topo.packages[(0, 0)]
    internal_links = len(
        graph.get_edge_data(package.vertical_node, package.horizontal_node)
    )
    max_transitions = max(
        layer_transitions(topo.coord_of(a), topo.coord_of(b))
        for a in topo.node_ids()
        for b in topo.node_ids()
    )
    v_nodes = sum(
        1 for n in topo.node_ids() if topo.coord_of(n).layer is Layer.VERTICAL
    )
    rows = [
        ["cores per slice (Fig. 5)", 16, topo.num_nodes],
        ["chips per slice (Fig. 5)", 8, len(topo.packages)],
        ["edge ports per slice", 12, SLICE_EDGE_PORTS],
        ["off-board network links (paper: ten)", 10, SLICE_OFFBOARD_LINKS],
        ["internal links per package (Fig. 6)", 4, internal_links],
        ["vertical-layer nodes (Fig. 7)", 8, v_nodes],
        ["max layer transitions per route (SecV.A)", 2, max_transitions],
        ["slice vertical bisection (Mbit/s, SecV.D)", 250,
         vertical_bisection_bps(topo) / 1e6],
        ["on-chip link pairs", 32, by_class["on-chip"]],
        ["on-board vertical links", 4, by_class["on-board-vertical"]],
        ["on-board horizontal links", 6, by_class["on-board-horizontal"]],
    ]
    report_table(
        "fig567_topology",
        "Figs. 5/6/7: unwoven-lattice structural verification",
        ["property", "paper", "built"],
    rows,
    )
    return rows


def test_fig567_topology(benchmark, report_table):
    rows = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    for name, paper, built in rows:
        assert built == pytest.approx(paper), name
