"""Figs. 5, 6, 7: slice structure, node links, and the unwoven lattice.

Structural verification: chips and cores per slice (Fig. 5), per-node
link complement (Fig. 6), the two-layer unwoven lattice with at most two
layer transitions per route (Fig. 7), and the §V.D bisection figure.

The figures come from :func:`repro.dse.structure.structure_summary` —
the same code path the DSE engine uses to summarise every topology
variant it sweeps — so the paper check and the design-space exploration
can never disagree about what the builder wires.
"""

import pytest

from repro.dse.structure import build_topology, structure_summary
from repro.network.topology import SLICE_EDGE_PORTS, SLICE_OFFBOARD_LINKS


def run(report_table):
    summary = structure_summary(build_topology({}))
    by_class = summary["links_by_class"]
    rows = [
        ["cores per slice (Fig. 5)", 16, summary["cores"]],
        ["chips per slice (Fig. 5)", 8, summary["packages"]],
        ["edge ports per slice", 12, SLICE_EDGE_PORTS],
        ["off-board network links (paper: ten)", 10, SLICE_OFFBOARD_LINKS],
        ["internal links per package (Fig. 6)", 4,
         summary["internal_links_per_package"]],
        ["vertical-layer nodes (Fig. 7)", 8, summary["vertical_nodes"]],
        ["max layer transitions per route (SecV.A)", 2,
         summary["max_layer_transitions"]],
        ["slice vertical bisection (Mbit/s, SecV.D)", 250,
         summary["vertical_bisection_bps"] / 1e6],
        ["on-chip link pairs", 32, by_class["on-chip"]],
        ["on-board vertical links", 4, by_class["on-board-vertical"]],
        ["on-board horizontal links", 6, by_class["on-board-horizontal"]],
    ]
    report_table(
        "fig567_topology",
        "Figs. 5/6/7: unwoven-lattice structural verification",
        ["property", "paper", "built"],
        rows,
    )
    return rows


def test_fig567_topology(benchmark, report_table):
    rows = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    for name, paper, built in rows:
        assert built == pytest.approx(paper), name
