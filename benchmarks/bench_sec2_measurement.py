"""§II: the energy-measurement subsystem.

Checks the five-rail layout, the 2 MS/s single-channel / 1 MS/s
all-channel ADC limits, trace-vs-ledger energy agreement, and the
self-measurement loop (a program reading its own rail power while it
changes its load).
"""

import pytest

from repro import SwallowSystem, assemble
from repro.energy import MAX_ALL_RATE_HZ, MAX_SINGLE_RATE_HZ, SamplingRateError


def run(report_table):
    system = SwallowSystem()
    board = system.measurement_board()
    # Load rail 0's cores for the first half of the window.
    program = assemble("""
        ldc r0, 125000
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for core in board.rails[0].cores:
        for _ in range(4):
            core.spawn(program)
    trace = board.record_trace(duration_s=0.004, rate_hz=250_000, channel=0)
    system.run_for_us(4000)
    times, values = trace.as_arrays()
    busy_mean = float(values[: len(values) // 4].mean())
    idle_mean = float(values[-len(values) // 4 :].mean())
    ledger_energy = system.accounting.total_energy_j()
    rows = [
        ["power rails per slice", 5, len(board.rails)],
        ["single-channel max rate (MS/s)", 2.0, MAX_SINGLE_RATE_HZ / 1e6],
        ["all-channel max rate (MS/s)", 1.0, MAX_ALL_RATE_HZ / 1e6],
        ["samples captured", "-", len(trace)],
        ["rail 0 busy-phase power (mW)", "~780 (4 x 193)", round(busy_mean, 1)],
        ["rail 0 idle-phase power (mW)", "~452 (4 x 113)", round(idle_mean, 1)],
    ]
    report_table(
        "sec2_measurement",
        "SecII: ADC measurement chain (self-measured load transition)",
        ["quantity", "paper / expected", "measured"],
        rows,
        notes=f"Whole-machine ledger over the window: {ledger_energy * 1e3:.3f} mJ. "
              "The busy->idle transition is visible in the sampled trace, the "
              "loop the paper uses for software that adapts to its own power.",
    )
    return busy_mean, idle_mean, board


def test_sec2_measurement(benchmark, report_table):
    busy_mean, idle_mean, board = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert busy_mean == pytest.approx(4 * 193, rel=0.05)
    assert idle_mean == pytest.approx(4 * 113, rel=0.05)
    assert busy_mean > idle_mean
    with pytest.raises(SamplingRateError):
        board.record_trace(0.001, rate_hz=2_500_000, channel=0)
    with pytest.raises(SamplingRateError):
        board.record_trace(0.001, rate_hz=1_200_000, channel=None)
