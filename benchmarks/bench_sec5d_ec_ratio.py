"""§V.D: computation-to-communication (E/C) ratios.

Recomputes the five scenarios (1, 16, 64, 256, 512) from system
constants and verifies the contended case by measurement: four threads
flooding one external link achieve 1/256th of their compute bandwidth.
"""

import pytest

from repro.analysis import RELATED_WORK_EC_RANGE, paper_scenarios
from repro.network.routing import Layer
from repro.network.topology import SwallowTopology
from repro.sim import Simulator
from repro.xs1 import BehavioralThread, RecvWord, SendWord, XCore


def measured_contended_c_bps(words_per_thread: int = 40) -> float:
    """Goodput of four threads contending one external link."""
    sim = Simulator()
    topo = SwallowTopology(sim, use_operating_rate=True)
    a = topo.node_at(0, 0, Layer.VERTICAL)
    b = topo.node_at(0, 1, Layer.VERTICAL)
    core_a = XCore(sim, a, topo.fabric)
    core_b = XCore(sim, b, topo.fabric)
    start = sim.now
    received_bits = [0]

    for _ in range(4):
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)

        def sender(tx=tx):
            for w in range(words_per_thread):
                yield SendWord(tx, w)

        def receiver(rx=rx):
            for _ in range(words_per_thread):
                yield RecvWord(rx)
                received_bits[0] += 32

        BehavioralThread(core_a, sender())
        BehavioralThread(core_b, receiver())
    sim.run()
    elapsed_s = (sim.now - start) / 1e12
    return received_bits[0] / elapsed_s


def run(report_table):
    rows = []
    for scenario in paper_scenarios():
        rows.append([
            scenario.name,
            f"{scenario.e_bps / 1e9:g} Gbit/s",
            f"{scenario.c_bps / 1e6:g} Mbit/s",
            scenario.paper_value,
            round(scenario.ratio, 1),
        ])
    measured_c = measured_contended_c_bps()
    measured_ratio = 16e9 / measured_c
    rows.append([
        "four-thread contention (MEASURED)",
        "16 Gbit/s",
        f"{measured_c / 1e6:.1f} Mbit/s",
        256.0,
        round(measured_ratio, 1),
    ])
    report_table(
        "sec5d_ec_ratio",
        "SecV.D: execution/communication ratios",
        ["scenario", "E", "C", "paper E/C", "computed E/C"],
        rows,
        notes=f"Related-work system-wide E/C range: {RELATED_WORK_EC_RANGE}. "
              "The measured row floods one 62.5 Mbit/s external link from "
              "four threads and uses the achieved goodput as C.",
    )
    return measured_ratio


def test_sec5d_ec_ratio(benchmark, report_table):
    measured_ratio = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    for scenario in paper_scenarios():
        assert scenario.ratio == pytest.approx(scenario.paper_value, rel=1e-6)
    # Measured contention: worse than the ideal 256 (headers + END framing
    # overhead), within ~1.5x.
    assert 256 <= measured_ratio <= 400
