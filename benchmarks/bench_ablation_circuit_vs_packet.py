"""Ablation: channel-switched circuits vs packet operation (§V.B).

A held-open circuit gives full link throughput but starves competitors;
packet mode pays the ~13% framing overhead (3-byte header + END per
packet) and shares the link.  We measure both effects on one external
link.
"""

import pytest

from repro.network.routing import Layer
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.sim import Simulator, to_us
from repro.xs1 import (
    BehavioralThread,
    CheckCt,
    RecvWord,
    SendCt,
    SendWord,
    XCore,
)


def build_pair():
    sim = Simulator()
    topo = SwallowTopology(sim)
    a = topo.node_at(0, 0, Layer.VERTICAL)
    b = topo.node_at(0, 1, Layer.VERTICAL)
    return sim, topo, XCore(sim, a, topo.fabric), XCore(sim, b, topo.fabric)


def circuit_throughput(words: int = 120) -> tuple[float, int]:
    """(Mbit/s of one circuit, competitor words delivered)."""
    sim, topo, core_a, core_b = build_pair()
    tx1, rx1 = core_a.allocate_chanend(), core_b.allocate_chanend()
    tx1.set_dest(rx1.address)
    tx2, rx2 = core_a.allocate_chanend(), core_b.allocate_chanend()
    tx2.set_dest(rx2.address)
    finish = []
    competitor_got = []

    def circuit_sender():
        for w in range(words):
            yield SendWord(tx1, w)

    def circuit_receiver():
        for _ in range(words):
            yield RecvWord(rx1)
        finish.append(sim.now)

    def competitor_sender():
        yield SendWord(tx2, 1)
        yield SendCt(tx2, CT_END)

    def competitor_receiver():
        competitor_got.append((yield RecvWord(rx2)))

    BehavioralThread(core_a, circuit_sender())
    BehavioralThread(core_b, circuit_receiver())
    BehavioralThread(core_a, competitor_sender())
    BehavioralThread(core_b, competitor_receiver())
    sim.run()
    elapsed_s = finish[0] / 1e12
    return words * 32 / elapsed_s / 1e6, len(competitor_got)


def packet_throughput(words: int = 120, payload_words: int = 4) -> tuple[float, int]:
    """(Mbit/s in packet mode, competitor words delivered)."""
    sim, topo, core_a, core_b = build_pair()
    tx1, rx1 = core_a.allocate_chanend(), core_b.allocate_chanend()
    tx1.set_dest(rx1.address)
    tx2, rx2 = core_a.allocate_chanend(), core_b.allocate_chanend()
    tx2.set_dest(rx2.address)
    finish = []
    competitor_got = []
    packets = words // payload_words

    def packet_sender():
        for p in range(packets):
            for w in range(payload_words):
                yield SendWord(tx1, w)
            yield SendCt(tx1, CT_END)

    def packet_receiver():
        for _ in range(packets):
            for _ in range(payload_words):
                yield RecvWord(rx1)
            yield CheckCt(rx1, CT_END)
        finish.append(sim.now)

    def competitor_sender():
        yield SendWord(tx2, 1)
        yield SendCt(tx2, CT_END)

    def competitor_receiver():
        competitor_got.append((yield RecvWord(rx2)))
        yield CheckCt(rx2, CT_END)

    BehavioralThread(core_a, packet_sender())
    BehavioralThread(core_b, packet_receiver())
    BehavioralThread(core_a, competitor_sender())
    BehavioralThread(core_b, competitor_receiver())
    sim.run()
    elapsed_s = finish[0] / 1e12
    return words * 32 / elapsed_s / 1e6, len(competitor_got)


def run(report_table):
    circuit_mbps, circuit_compete = circuit_throughput()
    packet_mbps, packet_compete = packet_throughput()
    rows = [
        ["circuit (route held open)", round(circuit_mbps, 1),
         "starved" if circuit_compete == 0 else "delivered"],
        ["packets (4-word payload)", round(packet_mbps, 1),
         "starved" if packet_compete == 0 else "delivered"],
    ]
    report_table(
        "ablation_circuit_vs_packet",
        "Ablation: circuit vs packet mode on one external link",
        ["mode", "goodput Mbit/s", "competing channel"],
        notes="Circuits maximise goodput but monopolise the link; packets "
              "pay header+END framing (the paper's ~87% figure) and let "
              "competitors through.",
        rows=rows,
    )
    return circuit_mbps, packet_mbps, circuit_compete, packet_compete


def test_ablation_circuit_vs_packet(benchmark, report_table):
    circuit_mbps, packet_mbps, circuit_compete, packet_compete = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert circuit_compete == 0       # the circuit starves the competitor
    assert packet_compete == 1        # packet mode shares
    assert packet_mbps < circuit_mbps  # framing costs throughput
    # 4-word packets: 16/(16+4) = 80% of circuit goodput, roughly.
    assert packet_mbps / circuit_mbps == pytest.approx(0.8, abs=0.1)
