"""The policy-zoo ablation: schedulers x fault campaigns x backup depth.

Runs the full :mod:`repro.nos.ablation` sweep — every zoo bundle
against seeded fault campaigns of rising severity at k ∈ {0, 1, 2} —
and writes the canonical report to ``benchmarks/out/policy_zoo.json``.

Asserted properties:

* **k-fault guarantee** — every ``kfault`` cell survives; cells with
  ``kills ≤ k`` finish with zero deadline misses and zero sheds, cells
  beyond k degrade by shedding instead of raising.
* **the guarantee costs something** — at least one plain-budget policy
  fails a severe campaign the kfault policy survives.
* **byte stability** — a repeated sub-matrix produces an identical
  canonical report (CI re-checks this on the full smoke matrix).
"""

import json
import pathlib

from repro.nos.ablation import (
    DEFAULT_CAMPAIGNS,
    render,
    report_json,
    run_ablation,
)

OUT = pathlib.Path(__file__).parent / "out"


def run(report_table):
    report = run_ablation()
    OUT.mkdir(exist_ok=True)
    (OUT / "policy_zoo.json").write_text(report_json(report))

    # Byte stability: a repeated sub-matrix must reproduce exactly.
    subset = dict(
        policies=("least_loaded", "kfault"),
        campaigns=DEFAULT_CAMPAIGNS[:2],
        ks=(1,),
    )
    identical = report_json(run_ablation(**subset)) == report_json(
        run_ablation(**subset)
    )

    rows = [
        [
            name,
            f"{row['survived']}/{row['cells']}",
            row["deadline_misses"],
            row["sheds"],
            row["replacements"],
            f"{row['energy_j'] * 1e6:.1f}",
        ]
        for name, row in report["summary"].items()
    ]
    report_table(
        "policy_zoo",
        "Policy zoo: deadline misses vs energy vs fault survival",
        ["policy", "survived", "misses", "sheds", "replacements",
         "energy uJ"],
        rows,
        notes="Cells sweep 3 seeded fault campaigns (1..3 core kills "
              "from 5 us) x k in 0..2; kfault reserves k backup slots "
              "per task and sheds lowest-criticality-first beyond k. "
              f"Report digest {report['digest'][:12]}, "
              f"{len(report['cells'])} cells.",
    )
    return report, identical


def test_policy_zoo(benchmark, report_table):
    report, identical = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert identical, "repeated ablation diverged byte-wise"

    cells = report["cells"]
    kfault = [cell for cell in cells if cell["policy"] == "kfault"]
    assert kfault, "zoo lost its kfault bundle"
    # The k-fault guarantee: always survive; no misses within budget.
    assert all(cell["survived"] for cell in kfault)
    for cell in kfault:
        if cell["kills"] <= cell["k"]:
            assert cell["deadline"]["miss"] == 0, cell
            assert cell["shed_tasks"] == [], cell
    # Degradation beyond k sheds deterministically somewhere.
    assert any(
        cell["shed_tasks"] for cell in kfault if cell["kills"] > cell["k"]
    )
    # The guarantee buys survival a plain fault budget cannot.
    plain = [cell for cell in cells if cell["policy"] == "least_loaded"]
    assert any(not cell["survived"] for cell in plain)
    # Every cell scores the three ablation axes.
    for cell in cells:
        assert "miss_rate" in cell and "energy_j" in cell
        assert isinstance(cell["survived"], bool)
    # The written report parses back to the same digest.
    on_disk = json.loads((OUT / "policy_zoo.json").read_text())
    assert on_disk["digest"] == report["digest"]
