"""Ablation: communication locality (§V.D's recommendations).

Runs the same 4-stage pipeline with stages placed (a) on one core's
hardware threads, (b) across a package, (c) across a slice, and
(d) across slices, measuring makespan and machine energy.  The paper's
guidance — prefer core-local, then chip-local, then off-chip — should
appear as monotonically increasing cost.
"""

import pytest

from repro.apps import Placement, build_pipeline, communication_scope, place
from repro.board import build_machine
from repro.sim import Simulator, to_us

ITEMS = 20
COMPUTE = 50


def run_placement(strategy: Placement) -> tuple[float, float, str]:
    """(makespan us, machine energy mJ, scope) for one placement."""
    sim = Simulator()
    machine = build_machine(sim, slices_x=2 if strategy is Placement.CROSS_SLICE else 1)
    cores = place(machine, 4, strategy)
    scope = communication_scope(cores, machine)
    result = build_pipeline(cores, items=ITEMS, compute_per_stage=COMPUTE)
    sim.run()
    assert result.complete, f"{strategy}: pipeline stalled"
    machine.accounting.update()
    energy = machine.accounting.breakdown_j()
    return (
        to_us(result.makespan_ps),
        (energy["cores"] + energy["links"]) * 1e3,
        scope,
    )


def run(report_table):
    rows = []
    results = {}
    for strategy in Placement:
        makespan, energy_mj, scope = run_placement(strategy)
        results[strategy] = (makespan, energy_mj)
        rows.append([strategy.value, scope, round(makespan, 2), round(energy_mj, 4)])
    report_table(
        "ablation_locality",
        "Ablation: pipeline placement locality (4 stages, 20 items)",
        ["placement", "widest communication", "makespan us", "energy mJ"],
        rows,
        notes="SecV.D: 'Prefer core-local communication where possible; "
              "chip-local ... should be the next preference.'  Cross-slice "
              "energy includes the 10.9 nJ/bit FFC links.",
    )
    return results


def test_ablation_locality(benchmark, report_table):
    results = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    same_package = results[Placement.SAME_PACKAGE][0]
    same_slice = results[Placement.SAME_SLICE][0]
    cross_slice = results[Placement.CROSS_SLICE][0]
    # Widening scope never speeds the pipeline up...
    assert same_package <= same_slice * 1.05
    assert same_slice <= cross_slice * 1.05
    # ...and off-board placement is strictly worse than in-package.
    assert cross_slice > same_package
