"""Extension bench: proportional scaling of performance and energy.

One of the paper's stated aims (§I): "Deliver proportional scaling in
performance and energy."  We saturate machines of 1, 2 and 4 slices,
measure achieved GIPS and mean power from the ledger, and check both
scale linearly in core count (then extrapolate to the 30-slice
machine's 240 GIPS / 134 W corner).
"""

import pytest

from repro.board import build_machine, system_power_w
from repro.sim import Simulator, us
from repro.xs1 import assemble


def measure(slices_x: int) -> tuple[int, float, float]:
    """(cores, measured GIPS, measured power W) for a saturated machine."""
    sim = Simulator()
    machine = build_machine(sim, slices_x=slices_x)
    program = assemble("""
        ldc r0, 100000
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for core in machine.cores:
        for _ in range(4):
            core.spawn(program)
    window_us = 100
    sim.run_for(us(window_us))
    instructions = sum(core.stats.total_instructions for core in machine.cores)
    gips = instructions / (window_us * 1e-6) / 1e9
    power_w = machine.accounting.total_energy_j() / (window_us * 1e-6)
    return len(machine.cores), gips, power_w


def run(report_table):
    rows = []
    points = []
    for slices in (1, 2, 4):
        cores, gips, power = measure(slices)
        points.append((cores, gips, power))
        rows.append([
            slices, cores, round(gips, 2), round(gips / cores * 1000, 1),
            round(power, 2), round(power / cores * 1000, 1),
        ])
    rows.append([
        30, 480, 240.0, 500.0,
        round(system_power_w(30), 1),
        round(system_power_w(30) / 480 * 1000, 1),
    ])
    report_table(
        "extension_scaling",
        "Extension: proportional scaling (measured 1-4 slices, modelled 30)",
        ["slices", "cores", "GIPS", "MIPS/core", "power W", "mW/core"],
        rows,
        notes="Per-core throughput and power must be flat across machine "
              "sizes — the paper's proportional-scaling aim.  The 30-slice "
              "row is the power-tree model (the ledger excludes SMPS loss).",
    )
    return points


def test_extension_scaling(benchmark, report_table):
    points = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    per_core_gips = [gips / cores for cores, gips, _ in points]
    per_core_power = [power / cores for cores, _, power in points]
    # Flat per-core rates across sizes = linear scaling.
    assert max(per_core_gips) / min(per_core_gips) < 1.02
    assert max(per_core_power) / min(per_core_power) < 1.02
    # Each core delivers its Eq. 2 peak of 0.5 GIPS.
    assert per_core_gips[0] == pytest.approx(0.5, rel=0.02)
