"""§V.B: packet overhead.

"The overhead of packet data reduces throughput to approximately 87% of
the link speed, but is dependent upon the packet size."  Each packet
carries a 3-token header plus a closing END token; we sweep payload
sizes and measure the achieved goodput on a single external link from
actual simulation traffic.
"""

import pytest

from repro.network.routing import Layer
from repro.network.token import CT_END
from repro.network.topology import SwallowTopology
from repro.sim import Simulator
from repro.xs1 import BehavioralThread, CheckCt, RecvWord, SendCt, SendWord, XCore


def analytic_efficiency(payload_bytes: int) -> float:
    """payload / (payload + 3-byte header + END token)."""
    return payload_bytes / (payload_bytes + 4)


def measured_efficiency(payload_words: int, packets: int = 12) -> float:
    """Goodput fraction measured from link token counters."""
    sim = Simulator()
    topo = SwallowTopology(sim)
    a = topo.node_at(0, 0, Layer.VERTICAL)
    b = topo.node_at(0, 1, Layer.VERTICAL)
    core_a = XCore(sim, a, topo.fabric)
    core_b = XCore(sim, b, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)

    def sender():
        for _ in range(packets):
            for w in range(payload_words):
                yield SendWord(tx, w)
            yield SendCt(tx, CT_END)

    def receiver():
        for _ in range(packets):
            for _ in range(payload_words):
                yield RecvWord(rx)
            yield CheckCt(rx, CT_END)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    stats = topo.fabric.link_stats_by_class()
    vertical_bits = stats["on-board-vertical"]["bits"]
    payload_bits = packets * payload_words * 32
    assert vertical_bits > 0
    return payload_bits / vertical_bits


def run(report_table):
    rows = []
    results = {}
    for payload_words in (1, 2, 4, 7, 8, 16, 32):
        payload_bytes = payload_words * 4
        analytic = analytic_efficiency(payload_bytes)
        measured = measured_efficiency(payload_words)
        results[payload_words] = measured
        rows.append([
            payload_bytes,
            f"{analytic:.1%}",
            f"{measured:.1%}",
        ])
    report_table(
        "sec5b_packet_overhead",
        "SecV.B: packet goodput vs payload size (single external link)",
        ["payload bytes", "analytic", "measured"],
        rows,
        notes="Header (3 tokens) + END (1 token) per packet.  The paper's "
              "~87% corresponds to ~28-byte payloads.",
    )
    return results


def test_sec5b_packet_overhead(benchmark, report_table):
    results = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    # ~87% at 28-byte (7-word) payloads, as the paper's figure implies.
    assert results[7] == pytest.approx(0.875, abs=0.01)
    # Efficiency grows with packet size.
    values = [results[k] for k in sorted(results)]
    assert values == sorted(values)
    # Analytic and measured agree (the simulator's framing is exactly
    # header + payload + END).
    for words, measured in results.items():
        assert measured == pytest.approx(analytic_efficiency(words * 4), abs=1e-6)
