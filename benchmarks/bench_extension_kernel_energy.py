"""Extension bench: instruction-mix-dependent energy (§II).

The paper's §II: instruction energy is "dependent upon the operations
they perform" (1.0–2.25 nJ/instruction).  We run the assembly kernel
suite on one core and price each kernel two ways — the Kerrison
per-class model, and the Eq. 1 time-domain ledger — showing how the
instruction mix moves the energy per instruction.
"""

import pytest

from repro.apps.kernels import default_suite, run_kernel
from repro.energy import EnergyAccounting, InstructionEnergyModel
from repro.sim import Simulator
from repro.xs1 import LoopbackFabric, XCore


def profile_kernel(kernel):
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    ledger = EnergyAccounting(sim, [core], include_support=False)
    a = list(range(1, 33))
    b = list(range(33, 65))
    _, thread = run_kernel(core, kernel, a, b)
    ledger.update()
    model = InstructionEnergyModel()
    instructions = core.stats.total_instructions
    return {
        "name": kernel.name,
        "instructions": instructions,
        "cycles": core.cycle,
        "mips": instructions / (sim.now / 1e12) / 1e6 if sim.now else 0.0,
        "model_nj": model.mean_nj(core.stats.instructions),
        "ledger_nj": ledger.core_energy_j(0) * 1e9 / instructions,
    }


def run(report_table):
    rows = []
    profiles = {}
    for kernel in default_suite():
        profile = profile_kernel(kernel)
        profiles[profile["name"]] = profile
        rows.append([
            profile["name"],
            profile["instructions"],
            profile["cycles"],
            round(profile["mips"], 1),
            round(profile["model_nj"], 3),
            round(profile["ledger_nj"], 3),
        ])
    report_table(
        "extension_kernel_energy",
        "Extension: kernel suite — instruction mix drives energy (SecII)",
        ["kernel", "instructions", "cycles", "MIPS",
         "Kerrison nJ/instr", "ledger nJ/instr"],
        rows,
        notes="Kerrison column: per-class model (1.0-2.25 nJ range); "
              "ledger column: Eq. 1 power x time / instructions at one "
              "thread (static amortised over the f/4 issue rate).",
    )
    return profiles


def test_extension_kernel_energy(benchmark, report_table):
    profiles = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    model_low, model_high = InstructionEnergyModel().range_nj
    for profile in profiles.values():
        # Single-thread issue rate: 125 MIPS at 500 MHz.
        assert profile["mips"] == pytest.approx(125, rel=0.05)
        assert model_low <= profile["model_nj"] <= model_high
        # Ledger pricing lands in the same 1-2.25 nJ band the paper quotes.
        assert 0.8 <= profile["ledger_nj"] <= 2.5
    # Load/store-heavy memcpy outprices the ALU-only fibonacci.
    assert profiles["memcpy"]["model_nj"] > profiles["fibonacci"]["model_nj"]
