"""Netscope overhead: what does the fabric observatory cost?

The fabric observatory hooks the hottest paths in the simulator — every
link token launch and every switch-port state change — so its probes
must be demonstrably cheap *and* demonstrably pure: attaching a
:class:`~repro.obs.netscope.NetScope` may not change the event
trajectory by a single event, and its wall-clock cost must stay inside
the same 10 % budget as the rest of the observability stack.

Methodology matches ``bench_observer_overhead``: interleaved runs
(plain, netscoped, plain, ...), scored as the ratio of each
configuration's best run — one-sided scheduler noise cannot fake a
regression, and extra rounds only sharpen each side's noise-free floor.
Both configurations run with the metrics registry off, so the measured
delta isolates the netscope probes themselves.
"""

import time

from repro import Compute, RecvWord, SendWord, assemble
from repro.core.platform import SwallowSystem

#: Spin-loop iterations per worker core (sets the bench's event volume).
LOOPS = 2000
#: Words streamed across the fabric while the workers spin.
WORDS = 24
#: Interleaved rounds; each configuration's best run is scored.
ROUNDS = 10
#: Adaptive extension cap while the measured overhead is over budget.
MAX_ROUNDS = 30
#: The budget the netscoped configuration must stay within.
OVERHEAD_BUDGET = 0.10


def _load(system: SwallowSystem) -> list[int]:
    """A fixed multi-core workload: four spinning cores + one stream."""
    for node in (0, 2, 4, 6):
        system.spawn(system.core(node), assemble(f"""
            ldc r0, {LOOPS}
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """))
    channel = system.channel(system.core(1), system.core(10))
    received: list[int] = []

    def producer():
        for i in range(WORDS):
            yield Compute(80)
            yield SendWord(channel.a, i * 5 + 3)

    def consumer():
        for _ in range(WORDS):
            received.append((yield RecvWord(channel.b)))

    system.spawn_task(system.core(1), producer())
    system.spawn_task(system.core(10), consumer())
    return received


def _run_once(netscoped: bool) -> tuple[int, float, int]:
    """One run; returns (events, wall seconds, tokens seen by probes)."""
    system = SwallowSystem(metrics=False)
    tokens = 0
    if netscoped:
        scope = system.netscope()
    _load(system)
    wall_start = time.perf_counter()
    system.run()
    wall_s = time.perf_counter() - wall_start
    if netscoped:
        tokens = sum(
            cell[0]
            for probe in scope.link_probes.values()
            for cell in probe.windows.values()
        )
    return system.sim.events_processed, wall_s, tokens


def _measure() -> tuple[int, int, int, float, float, float]:
    """Interleaved throughput measurement (see module docstring)."""
    best: dict[bool, float] = {}
    events: dict[bool, int] = {}
    tokens = 0
    rounds = 0
    while rounds < MAX_ROUNDS:
        rounds += 1
        for netscoped in (False, True):
            ev, wall_s, seen = _run_once(netscoped)
            events[netscoped] = ev
            if netscoped:
                tokens = seen
            if netscoped not in best or wall_s < best[netscoped]:
                best[netscoped] = wall_s
        if rounds >= ROUNDS and best[True] / best[False] - 1.0 < OVERHEAD_BUDGET:
            break
    return (events[False], events[True], tokens,
            events[False] / best[False], events[True] / best[True],
            best[True] / best[False] - 1.0)


def test_netscope_overhead(report_table):
    events_plain, events_scoped, tokens, plain_eps, scoped_eps, overhead = (
        _measure()
    )
    assert events_plain == events_scoped, (
        "netscope changed the event trajectory — probes must be pure "
        "observers"
    )
    assert tokens > 0, "netscope probes saw no traffic; bench is broken"
    report_table(
        "netscope_overhead",
        "Fabric observatory overhead: netscope probes on vs off",
        ["configuration", "events", "best events/sec", "overhead"],
        [
            ["plain (no probes)", events_plain, round(plain_eps), "-"],
            ["netscoped (link+port probes)", events_scoped,
             round(scoped_eps), f"{overhead:.1%}"],
        ],
        notes=(
            f"best of {ROUNDS}-{MAX_ROUNDS} interleaved rounds per "
            f"configuration (extended adaptively while over budget); "
            f"budget {OVERHEAD_BUDGET:.0%}; probes counted {tokens} "
            "token launches. Metrics registry off on both sides, so "
            "the delta isolates the netscope probes."
        ),
    )
    print(f"netscope overhead: {overhead:.2%} "
          f"(best {plain_eps:,.0f} -> {scoped_eps:,.0f} ev/s)")
    assert overhead < OVERHEAD_BUDGET, (
        f"netscope overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
