"""DSE engine: a topology x frequency sweep, folded and Pareto-pruned.

Runs a small inline sweep (the fast path the farm workers share result
documents with), extracts the non-dominated front over the paper's
GIPS / W / E-per-C trio, and verifies the engine's determinism: two
folds of the same sweep must produce byte-identical ``dse-report/1``
and ``pareto-front/1`` documents.
"""

from repro.dse import (
    SweepSpec,
    front_json,
    pareto_acceptance_check,
    pareto_front,
    report_json,
    run_inline,
)

#: The bench's sweep: every topology variant at two DVFS points.
SWEEP = {
    "workload": "demo",
    "base": {"messages": 3},
    "sweep": {
        "topology": ["lattice", "mesh", "torus"],
        "freq_mhz": [500, 250],
        "seed": [1],
    },
}


def run(report_table):
    spec = SweepSpec.from_dict(SWEEP)
    report = run_inline(spec)
    front = pareto_front(report)
    pareto_acceptance_check(front)
    identical = (
        report_json(report) == report_json(run_inline(spec))
        and front_json(front) == front_json(pareto_front(report))
    )
    survived = report["summary"]["survived"]
    rows = [
        ["design points", spec.num_points, len(report["cells"])],
        ["points survived", spec.num_points, survived],
        ["front size", "1..n", len(front["front"])],
        ["knee point", "1", 1 if front["knee"] else 0],
        ["objectives", 3, len(front["objectives"])],
        ["report byte-identical x2", True, identical],
        ["report digest", "-", report["digest"][:12]],
        ["front digest", "-", front["digest"][:12]],
    ]
    report_table(
        "dse",
        "DSE: topology x frequency sweep, Pareto front over GIPS/W/E-per-C",
        ["property", "expected", "measured"],
        rows,
    )
    return report, front, identical


def test_dse_sweep(benchmark, report_table):
    report, front, identical = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert identical, "dse report or front not byte-stable"
    assert len(front["front"]) >= 1
    assert report["summary"]["failed"] == 0
