"""Ablation: routing policy on the unwoven lattice.

Compares the paper's policy (vertical-first with the H->V exception,
<= 2 layer transitions) against a naive strict vertical-first order and
the mirrored horizontal-first policy, over every node pair of a 2x2-slice
machine: hop counts, layer transitions, and a measured latency sample.
"""

import itertools

import pytest

from repro.network.routing import (
    Direction,
    Layer,
    horizontal_first_direction,
    next_direction,
    route_hops,
    strict_vertical_first,
)
from repro.network.topology import SwallowTopology
from repro.sim import Simulator, to_ns
from repro.xs1 import BehavioralThread, RecvWord, SendWord, XCore

POLICIES = [
    ("paper (vertical-first, <=2 crossings)", next_direction),
    ("strict vertical-first", strict_vertical_first),
    ("horizontal-first mirror", horizontal_first_direction),
]


def static_stats(policy) -> tuple[float, float, int]:
    topo = SwallowTopology(Simulator(), slices_x=2, slices_y=2)
    coords = [topo.coord_of(n) for n in topo.node_ids()]
    hops_total = transitions_total = pairs = 0
    max_transitions = 0
    for a, b in itertools.permutations(coords, 2):
        hops = route_hops(a, b, policy=policy)
        transitions = sum(1 for h in hops if h is Direction.INTERNAL)
        hops_total += len(hops)
        transitions_total += transitions
        max_transitions = max(max_transitions, transitions)
        pairs += 1
    return hops_total / pairs, transitions_total / pairs, max_transitions


def sample_latency_ns(policy) -> float:
    sim = Simulator()
    topo = SwallowTopology(sim, policy=policy)
    src = topo.node_at(0, 0, Layer.HORIZONTAL)
    dst = topo.node_at(3, 1, Layer.VERTICAL)
    core_a = XCore(sim, src, topo.fabric)
    core_b = XCore(sim, dst, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)
    done = []

    def sender():
        yield SendWord(tx, 1)

    def receiver():
        yield RecvWord(rx)
        done.append(sim.now)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    return to_ns(done[0])


def run(report_table):
    rows = []
    results = {}
    for name, policy in POLICIES:
        mean_hops, mean_transitions, max_transitions = static_stats(policy)
        latency = sample_latency_ns(policy)
        results[name] = (mean_hops, max_transitions, latency)
        rows.append([
            name,
            round(mean_hops, 2),
            round(mean_transitions, 2),
            max_transitions,
            round(latency, 1),
        ])
    report_table(
        "ablation_routing",
        "Ablation: routing policies on the unwoven lattice (2x2 slices)",
        ["policy", "mean hops", "mean transitions", "max transitions",
         "corner-route latency ns"],
        rows,
        notes="The paper claims at most two layer transitions; the strict "
              "order pays a third on H-layer -> V-layer routes.",
    )
    return results


def test_ablation_routing(benchmark, report_table):
    results = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    paper = results["paper (vertical-first, <=2 crossings)"]
    strict = results["strict vertical-first"]
    assert paper[1] == 2          # the paper's bound
    assert strict[1] == 3         # the naive order breaks it
    assert paper[0] <= strict[0]  # and pays no extra hops for it
