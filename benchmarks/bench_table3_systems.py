"""Table III: scale, technology and power of recent many-core systems.

Recomputes the derived μW/MHz column (power/frequency for every system;
Eq. 1's dynamic slope for Swallow, as the paper does) and checks it
against the published values, plus the qualitative claims around the
table.
"""

import pytest

from repro.analysis import TABLE_III, swallow_power_rank


def run(report_table):
    rows = []
    for system in TABLE_III:
        low, high = system.computed_uw_per_mhz()
        published = system.published_uw_per_mhz
        computed = f"{low:.0f}" if low == high else f"{low:.0f}-{high:.0f}"
        pub = (
            f"{published[0]:g}" if published[0] == published[1]
            else f"{published[1]:g}-{published[0]:g}"
        )
        rows.append([
            system.name,
            system.isa,
            system.cores_per_chip,
            f"{system.total_cores[0]}"
            + (f"-{system.total_cores[1]}" if system.total_cores[1] != system.total_cores[0] else ""),
            f"{system.tech_node_nm} nm",
            f"{system.power_per_core_mw[0]:g}"
            + (f"-{system.power_per_core_mw[1]:g}" if system.power_per_core_mw[1] != system.power_per_core_mw[0] else ""),
            f"{system.frequency_mhz[0]:g}"
            + (f"-{system.frequency_mhz[1]:g}" if system.frequency_mhz[1] != system.frequency_mhz[0] else ""),
            pub,
            computed,
        ])
    report_table(
        "table3_systems",
        "Table III: many-core systems survey (published vs recomputed uW/MHz)",
        ["system", "ISA", "cores/chip", "total cores", "node",
         "mW/core", "MHz", "paper uW/MHz", "recomputed"],
        rows,
        notes="Swallow's uW/MHz is Eq. 1's dynamic slope (0.30 mW/MHz), "
              "matching the paper's 300.",
    )
    return rows


def test_table3_systems(benchmark, report_table):
    benchmark(run, report_table)
    by_name = {s.name: s for s in TABLE_III}
    # Swallow's derived column equals the published 300.
    assert by_name["Swallow"].computed_uw_per_mhz()[0] == pytest.approx(300.0)
    # Direct power/frequency systems recompute to their published values.
    assert by_name["SpiNNaker"].computed_uw_per_mhz()[0] == pytest.approx(435.0)
    assert by_name["Epiphany-IV"].computed_uw_per_mhz()[0] == pytest.approx(38.8, rel=0.01)
    assert by_name["Tile64"].computed_uw_per_mhz()[0] == pytest.approx(300.0)
    # Paper: Swallow's power/core sits mid-range.
    assert swallow_power_rank() == 3
