"""§III.A: system power roll-up.

193 mW/core max -> 3.1 W core power per slice -> ~4.5 W/slice with
conversion losses and support -> 134 W for the 480-core machine.
"""

import pytest

from repro.board import headline_figures, slice_power, system_power_w


def run(report_table):
    figures = headline_figures()
    rows = [
        ["max core power (mW)", 193, round(figures["core_max_mw"], 1)],
        ["slice core power (W)", 3.1, round(figures["slice_core_power_w"], 2)],
        ["slice total power (W)", 4.5, round(figures["slice_total_w"], 2)],
        ["per-core system view (mW)", 260, round(figures["per_core_system_mw"], 1)],
        ["480-core machine (W)", 134, round(figures["system_480_cores_w"], 1)],
    ]
    report_table(
        "sec3a_system_power",
        "SecIII.A: power roll-up from core to 480-core machine",
        ["quantity", "paper", "model"],
        rows,
        notes="Model: slice = 16 cores / SMPS efficiency + support logic; "
              "the paper's own 260 mW/core x 16 = 4.16 W vs '~4.5 W' is a "
              "known internal inconsistency (see DESIGN.md).",
    )
    return figures


def test_sec3a_system_power(benchmark, report_table):
    figures = benchmark(run, report_table)
    assert figures["core_max_mw"] == pytest.approx(193, rel=0.03)
    assert figures["slice_core_power_w"] == pytest.approx(3.1, rel=0.02)
    assert figures["slice_total_w"] == pytest.approx(4.5, rel=0.02)
    assert figures["system_480_cores_w"] == pytest.approx(134, rel=0.02)
    # Partial-load proportionality: half-loaded slice sits between idle
    # and full (the paper's energy-proportionality claim at system level).
    idle = slice_power(utilization=0.0).total_w
    half = slice_power(utilization=0.5).total_w
    full = slice_power(utilization=1.0).total_w
    assert idle < half < full
    assert system_power_w(30, utilization=0.0) < 134
