"""Extension bench: load/latency behaviour under classic NoC patterns.

Beyond the paper's targeted measurements: runs neighbour, uniform-random,
bit-complement and hotspot traffic on one slice and reports delivery and
latency.  The expected shape — neighbour < uniform < bit-complement <
hotspot mean latency — follows from the §V.D locality analysis.
"""

import pytest

from repro.network.topology import SwallowTopology
from repro.network.traffic import (
    TrafficRun,
    bit_complement_pairs,
    hotspot_pairs,
    neighbour_pairs,
    uniform_random_pairs,
)
from repro.sim import Simulator, to_ns


def run_pattern(name: str) -> tuple[float, float, int]:
    """(mean latency ns, p99 ns, packets) for one pattern on one slice."""
    sim = Simulator()
    topo = SwallowTopology(sim)
    nodes = topo.node_ids()
    if name == "neighbour":
        pairs = neighbour_pairs(topo)
    elif name == "uniform":
        pairs = uniform_random_pairs(nodes, 8, seed=99)
    elif name == "bit-complement":
        pairs = bit_complement_pairs(topo)
    elif name == "hotspot":
        pairs = hotspot_pairs(nodes, hotspot=0, count=6, seed=99)
    else:
        raise ValueError(name)
    run = TrafficRun(topo, pairs, packets=3, gap_instructions=20).start()
    sim.run()
    assert run.stats.complete, f"{name}: {run.stats.received}/{run.stats.sent}"
    return (
        to_ns(round(run.stats.mean_latency_ps)),
        to_ns(round(run.stats.p99_latency_ps)),
        run.stats.received,
    )


def run(report_table):
    rows = []
    results = {}
    for name in ("neighbour", "uniform", "bit-complement", "hotspot"):
        mean_ns, p99_ns, packets = run_pattern(name)
        results[name] = mean_ns
        rows.append([name, packets, round(mean_ns, 1), round(p99_ns, 1)])
    report_table(
        "extension_traffic_patterns",
        "Extension: packet latency under classic NoC patterns (one slice)",
        ["pattern", "packets", "mean latency ns", "p99 ns"],
        rows,
        notes="Neighbour traffic stays on the 4x-aggregated in-package "
              "links; bit-complement crosses the 250 Mbit/s bisection; "
              "hotspot serialises on the victim's local delivery port.",
    )
    return results


def test_extension_traffic_patterns(benchmark, report_table):
    results = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    assert results["neighbour"] < results["uniform"]
    assert results["uniform"] < results["hotspot"]
    assert results["neighbour"] < results["bit-complement"]
