"""Fig. 3: power consumption with frequency scaling (four cores).

Simulates a four-core group at each frequency — once with four active
threads per core, once idle — and measures power from the energy ledger,
reproducing the two linear series of the figure.
"""

import pytest

from repro.energy import EnergyAccounting, active_power_mw, idle_power_mw
from repro.sim import Frequency, Simulator, us
from repro.xs1 import LoopbackFabric, XCore, assemble

FREQUENCIES_MHZ = [71, 150, 250, 350, 500]


def measure_group_power_mw(f_mhz: int, loaded: bool) -> float:
    """Ledger-measured power of four cores at ``f_mhz``."""
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    cores = [XCore(sim, node_id=i, fabric=fabric) for i in range(4)]
    for core in cores:
        core.set_frequency(Frequency.mhz(f_mhz))
    if loaded:
        program = assemble("""
            ldc r0, 500000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        for core in cores:
            for _ in range(4):
                core.spawn(program)
    ledger = EnergyAccounting(sim, cores, include_support=False)
    window_us = 200
    sim.run_for(us(window_us))
    return ledger.total_energy_j() / (window_us * 1e-6) * 1e3


def run(report_table):
    rows = []
    for f in FREQUENCIES_MHZ:
        loaded = measure_group_power_mw(f, loaded=True)
        idle = measure_group_power_mw(f, loaded=False)
        rows.append([
            f,
            round(4 * active_power_mw(f), 1),
            round(loaded, 1),
            round(4 * idle_power_mw(f), 1),
            round(idle, 1),
        ])
    report_table(
        "fig3_frequency_scaling",
        "Fig. 3: power vs frequency, four cores (paper model vs simulation)",
        ["MHz", "model 4-thread mW", "measured mW", "model idle mW", "measured idle mW"],
        rows,
        notes="Paper anchor points: 4 x 193 mW = 772 mW at 500 MHz loaded; "
              "4 x 50 mW = 200 mW at 71 MHz idle.",
    )
    return rows


def test_fig3_frequency_scaling(benchmark, report_table):
    rows = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    for f, model_loaded, measured_loaded, model_idle, measured_idle in rows:
        assert measured_loaded == pytest.approx(model_loaded, rel=0.03)
        assert measured_idle == pytest.approx(model_idle, rel=0.03)
    # Endpoints match the paper's quoted range.
    assert rows[-1][2] == pytest.approx(4 * 193, rel=0.05)   # ~772 mW loaded
    assert rows[0][4] == pytest.approx(4 * 50, rel=0.05)     # ~200 mW idle
