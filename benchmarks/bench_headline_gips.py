"""§I headline: "the system provides up to 240 GIPS".

Analytic roll-up to 480 cores, cross-checked by *measuring* a fully
saturated 16-core slice (8 GIPS) and scaling by core count.
"""

import pytest

from repro import SwallowSystem, assemble
from repro.analysis import system_gips


def measured_slice_gips() -> float:
    system = SwallowSystem()
    program = assemble("""
        ldc r0, 1500
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for core in system.cores:
        for _ in range(4):
            core.spawn(program)
    system.run()
    return system.measured_gips()


def run(report_table):
    slice_gips = measured_slice_gips()
    extrapolated = slice_gips * (480 / 16)
    rows = [
        ["one slice, analytic (GIPS)", 8.0, round(system_gips(16), 2)],
        ["one slice, measured (GIPS)", 8.0, round(slice_gips, 2)],
        ["480 cores, analytic (GIPS)", 240.0, round(system_gips(480), 1)],
        ["480 cores, extrapolated from measurement", 240.0, round(extrapolated, 1)],
    ]
    report_table(
        "headline_gips",
        "SecI: aggregate throughput (240 GIPS at 480 cores)",
        ["quantity", "paper", "value"],
    rows,
    )
    return slice_gips, extrapolated


def test_headline_gips(benchmark, report_table):
    slice_gips, extrapolated = benchmark.pedantic(
        run, args=(report_table,), rounds=1, iterations=1
    )
    assert system_gips(480) == pytest.approx(240.0)
    assert slice_gips == pytest.approx(8.0, rel=0.03)
    assert extrapolated == pytest.approx(240.0, rel=0.03)
