"""Table I: per-bit energies of Swallow links.

Drives real traffic over each link class, reads the energy ledger, and
divides by the bits the fabric actually carried; compares against the
paper's published pJ/bit for all four classes.
"""

import pytest

from repro.energy import PAPER_TABLE_I_PJ_PER_BIT, EnergyAccounting, table_i
from repro.network.routing import Layer
from repro.network.topology import SwallowTopology
from repro.sim import Simulator
from repro.xs1 import BehavioralThread, RecvWord, SendWord, XCore

#: Which (src, dst) coordinates exercise each Table I link class on a
#: 2x1-slice machine.
SCENARIOS = {
    "on-chip": ((0, 0, Layer.VERTICAL), (0, 0, Layer.HORIZONTAL)),
    "on-board-vertical": ((0, 0, Layer.VERTICAL), (0, 1, Layer.VERTICAL)),
    "on-board-horizontal": ((0, 0, Layer.HORIZONTAL), (1, 0, Layer.HORIZONTAL)),
    "off-board-ffc": ((3, 0, Layer.HORIZONTAL), (4, 0, Layer.HORIZONTAL)),
}


def measure_link_class(class_name: str, words: int = 50) -> float:
    """Measured pJ/bit for one link class (energy ledger / fabric bits)."""
    sim = Simulator()
    topo = SwallowTopology(sim, slices_x=2)
    (sx, sy, sl), (dx, dy, dl) = SCENARIOS[class_name]
    src = topo.node_at(sx, sy, sl)
    dst = topo.node_at(dx, dy, dl)
    core_a = XCore(sim, src, topo.fabric)
    core_b = XCore(sim, dst, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)
    ledger = EnergyAccounting(sim, [core_a, core_b], fabric=topo.fabric)

    def sender():
        for i in range(words):
            yield SendWord(tx, i)

    def receiver():
        for _ in range(words):
            yield RecvWord(rx)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    ledger.update()
    stats = topo.fabric.link_stats_by_class()
    bits = stats[class_name]["bits"]
    assert bits > 0, f"no traffic crossed a {class_name} link"
    # Isolate this class's share of the ledger.
    from repro.energy import link_energy_joules
    from repro.network.params import TABLE_I_LINKS

    spec = next(s for s in TABLE_I_LINKS if s.name == class_name)
    energy_j = link_energy_joules(bits, spec)
    return energy_j / bits * 1e12


def run_table(report_table):
    rows = []
    for row in table_i():
        measured = measure_link_class(row.link_type)
        paper = PAPER_TABLE_I_PJ_PER_BIT[row.link_type]
        rows.append([
            row.link_type,
            f"{row.data_rate_mbit:g} Mbit/s",
            f"{row.max_power_mw:g} mW",
            paper,
            round(measured, 2),
            round(measured / paper, 3),
        ])
    report_table(
        "table1_link_energy",
        "Table I: per-bit energies of Swallow links",
        ["link type", "data rate", "max power", "paper pJ/bit", "measured pJ/bit", "ratio"],
        rows,
        notes="Measured = link-energy ledger / bits carried by the fabric "
              "during a real 50-word transfer over each link class.",
    )
    return rows


def test_table1_link_energy(benchmark, report_table):
    rows = benchmark.pedantic(run_table, args=(report_table,), rounds=1, iterations=1)
    for row in rows:
        assert row[5] == pytest.approx(1.0, rel=0.01), row
