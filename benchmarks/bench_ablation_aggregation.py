"""Ablation: link aggregation on the in-package links.

§V.B: "Multiple links can be assigned to the same routing direction ...
This increases bandwidth, provided the number of concurrent
communications is equal to or greater than the number of links", and
"Provided no more than three links are used for channel switching,
packeted data can still flow through the network."

Our switch reserves the fourth in-package link as the escape lane (see
``DirectionGroup``), so *channel-switched* in-package circuits aggregate
over three links — exactly the paper's provision.  The bench measures
concurrent circuits over packages built with 4, 2 and 1 internal links.
"""

import pytest

from repro.network.fabric import SwallowFabric
from repro.network.params import LINK_ON_CHIP
from repro.network.routing import Direction, Layer, NodeCoord
from repro.sim import Simulator, to_us
from repro.xs1 import BehavioralThread, RecvWord, SendWord, XCore


def run_package(internal_links: int, streams: int, words: int = 60) -> float:
    """Completion time (us) of ``streams`` circuits over a package."""
    sim = Simulator()
    fabric = SwallowFabric(sim)
    fabric.add_node(0, NodeCoord(0, 0, Layer.VERTICAL))
    fabric.add_node(1, NodeCoord(0, 0, Layer.HORIZONTAL))
    fabric.connect(0, Direction.INTERNAL, 1, Direction.INTERNAL,
                   LINK_ON_CHIP, count=internal_links)
    core_a = XCore(sim, 0, fabric)
    core_b = XCore(sim, 1, fabric)
    finished = []
    for s in range(streams):
        tx = core_a.allocate_chanend()
        rx = core_b.allocate_chanend()
        tx.set_dest(rx.address)

        def sender(tx=tx):
            for w in range(words):
                yield SendWord(tx, w)

        def receiver(rx=rx):
            for _ in range(words):
                yield RecvWord(rx)
            finished.append(sim.now)

        BehavioralThread(core_a, sender())
        BehavioralThread(core_b, receiver())
    sim.run()
    assert len(finished) == streams, "streams starved (circuits never closed)"
    return to_us(max(finished))


def circuit_lanes(internal_links: int) -> int:
    """Links available to channel-switched circuits (escape reserved)."""
    return internal_links - 1 if internal_links >= 2 else internal_links


def run(report_table):
    words = 60
    rows = []
    results = {}
    for links in (4, 2, 1):
        streams = circuit_lanes(links)
        elapsed = run_package(links, streams=streams, words=words)
        results[links] = (streams, elapsed)
        rows.append([
            links,
            circuit_lanes(links),
            streams,
            round(elapsed, 2),
            round(streams * words * 32 / (elapsed * 1e-6) / 1e6, 1),
        ])
    report_table(
        "ablation_aggregation",
        "Ablation: in-package link aggregation (concurrent circuits)",
        ["internal links", "circuit lanes", "streams", "makespan us",
         "aggregate Mbit/s"],
        rows,
        notes="The escape link is reserved for routed exit crossings "
              "(paper: 'no more than three links ... for channel "
              "switching'), so a 4-link package carries 3 concurrent "
              "circuits; each circuit still gets a full link, so makespan "
              "is flat while aggregate bandwidth scales.",
    )
    return results


def test_ablation_aggregation(benchmark, report_table):
    results = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    three_streams_on_four, one_stream_on_one = results[4][1], results[1][1]
    # Concurrent circuits each hold their own link: same makespan as a
    # single stream on a single link (parallel speedup = streams).
    assert three_streams_on_four == pytest.approx(one_stream_on_one, rel=0.15)
    # A 4-link package therefore moves ~3x the data of a 1-link package
    # in the same time.
    assert results[4][0] == 3
