"""Bench: checkpoint capture/restore overhead vs. machine scale.

Long-running campaigns (the overview paper streams across up to 480
cores) only get durability if checkpointing stays cheap as the machine
grows.  We run the seeded fault stream on 16-, 32- and 64-core
machines (whole slices are the build unit — 16 cores each — so the
"1-core" corner of the issue is represented by the single-slice
minimum), capture a full-system bundle mid-run, and measure bundle
size, capture wall-time, and restore wall-time (rebuild + replay +
field-by-field verification).  Results also land as JSON in
``benchmarks/out/checkpoint_overhead.json``.
"""

import json
import time
from pathlib import Path

from repro.checkpoint import ResumableRun, Snapshot, build_workload

OUT_DIR = Path(__file__).parent / "out"

#: Kernel events to run before capturing — deep enough that queues,
#: ledgers and the campaign RNG all carry non-trivial state.
CAPTURE_AT = 1_500

WORKLOAD = "faults_stream"


def measure(slices_x: int) -> dict:
    params = {"slices_x": slices_x, "words": 12, "seed": 3}
    context = build_workload(WORKLOAD, params)
    cores = len(context.system.cores)
    context.system.sim.run(max_events=CAPTURE_AT)

    wall = time.perf_counter()
    snapshot = context.capture(setup={"workload": WORKLOAD, "params": params})
    capture_s = time.perf_counter() - wall
    bundle = snapshot.to_json()

    # Restore = validate + rebuild + deterministic replay + verify.
    wall = time.perf_counter()
    reloaded = Snapshot.from_json(bundle)
    resumed = ResumableRun.resume(reloaded)
    restore_s = time.perf_counter() - wall
    assert resumed.context.system.sim.events_processed == CAPTURE_AT

    return {
        "slices_x": slices_x,
        "cores": cores,
        "bundle_bytes": len(bundle.encode("utf-8")),
        "capture_ms": round(capture_s * 1e3, 3),
        "restore_ms": round(restore_s * 1e3, 3),
        "events_at_capture": CAPTURE_AT,
    }


def run(report_table):
    points = [measure(slices_x) for slices_x in (1, 2, 4)]
    report_table(
        "checkpoint_overhead",
        "Checkpoint overhead vs. machine scale",
        ["slices", "cores", "bundle KiB", "capture ms", "restore ms"],
        [[p["slices_x"], p["cores"],
          round(p["bundle_bytes"] / 1024, 1),
          p["capture_ms"], p["restore_ms"]] for p in points],
        notes="Capture walks every snapshot_state() hook; restore "
              "replays the workload to the captured event count and "
              "verifies every field.  Bundle size should scale with "
              "core count; capture should stay milliseconds-cheap.",
    )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "checkpoint_overhead.json").write_text(
        json.dumps({"workload": WORKLOAD, "points": points}, indent=2,
                   sort_keys=True) + "\n"
    )
    return points


def test_checkpoint_overhead(benchmark, report_table):
    points = benchmark.pedantic(run, args=(report_table,), rounds=1,
                                iterations=1)
    by_cores = {p["cores"]: p for p in points}
    assert set(by_cores) == {16, 32, 64}
    # Bundles grow with the machine (more cores, switches, links)...
    sizes = [p["bundle_bytes"] for p in points]
    assert sizes == sorted(sizes)
    # ...but capture stays far cheaper than restore-with-replay.
    for p in points:
        assert p["capture_ms"] < p["restore_ms"]
