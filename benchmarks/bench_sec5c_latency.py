"""§V.C: network latencies.

Paper figures: 6 ns core-to-network injection; 270 ns for an 8-bit token
core-to-core; 360 ns (45 instructions) for a 32-bit word between
packages; 40 instructions (~320 ns) within a package; 50 ns (~6
instructions) core-local.  We measure every scenario on the simulated
network; absolute values come from a calibrated token-level model, so
the *ordering and rough factors* are the reproduction target.
"""

import pytest

from repro.network.params import INJECTION_LATENCY_CYCLES
from repro.network.routing import Layer
from repro.network.topology import SwallowTopology
from repro.sim import Simulator, to_ns
from repro.xs1 import BehavioralThread, RecvToken, RecvWord, SendToken, SendWord, XCore


def transfer_ns(src_spec, dst_spec, kind: str) -> float:
    sim = Simulator()
    topo = SwallowTopology(sim)
    src = topo.node_at(*src_spec)
    dst = topo.node_at(*dst_spec)
    core_a = XCore(sim, src, topo.fabric)
    core_b = core_a if dst == src else XCore(sim, dst, topo.fabric)
    tx = core_a.allocate_chanend()
    rx = core_b.allocate_chanend()
    tx.set_dest(rx.address)
    done = []

    def sender():
        if kind == "word":
            yield SendWord(tx, 0x12345678)
        else:
            yield SendToken(tx, 0x42)

    def receiver():
        if kind == "word":
            yield RecvWord(rx)
        else:
            yield RecvToken(rx)
        done.append(sim.now)

    BehavioralThread(core_a, sender())
    BehavioralThread(core_b, receiver())
    sim.run()
    assert done, "transfer never completed"
    return to_ns(done[0])


SCENARIOS = [
    ("core-local word", (0, 0, Layer.VERTICAL), (0, 0, Layer.VERTICAL), "word", 50.0),
    ("in-package word", (0, 0, Layer.VERTICAL), (0, 0, Layer.HORIZONTAL), "word", 320.0),
    ("cross-package word", (0, 0, Layer.VERTICAL), (0, 1, Layer.VERTICAL), "word", 360.0),
    ("cross-package token", (0, 0, Layer.VERTICAL), (0, 1, Layer.VERTICAL), "token", 270.0),
]


def run(report_table):
    rows = [[
        "core-to-network injection",
        6.0,
        to_ns(SwallowTopology(Simulator()).fabric.frequency.cycles_to_ps(
            INJECTION_LATENCY_CYCLES)),
        1.0,
    ]]
    results = {}
    for name, src, dst, kind, paper_ns in SCENARIOS:
        measured = transfer_ns(src, dst, kind)
        results[name] = measured
        rows.append([name, paper_ns, round(measured, 1), round(measured / paper_ns, 2)])
    report_table(
        "sec5c_latency",
        "SecV.C: network latencies (paper vs simulated)",
        ["scenario", "paper ns", "measured ns", "ratio"],
        rows,
        notes="Measured values include thread issue/wake overheads; the "
              "reproduction target is the ordering (local << in-package < "
              "cross-package) and rough factors, not exact nanoseconds.",
    )
    return results


def test_sec5c_latency(benchmark, report_table):
    results = benchmark.pedantic(run, args=(report_table,), rounds=1, iterations=1)
    # Ordering is the paper's headline claim.
    assert results["core-local word"] < results["in-package word"]
    assert results["in-package word"] < results["cross-package word"]
    # Rough magnitudes: each within ~2.2x of the paper's figure.
    assert results["core-local word"] == pytest.approx(50, rel=1.2)
    assert results["in-package word"] == pytest.approx(320, rel=0.7)
    assert results["cross-package word"] == pytest.approx(360, rel=0.5)
    assert results["cross-package token"] == pytest.approx(270, rel=0.25)
