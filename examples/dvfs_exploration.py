"""Frequency/voltage scaling exploration (paper §III.B, Figs. 3 & 4).

Sweeps a core's clock, measures power from the simulation's energy
ledger (not the closed-form model), fits Eq. 1, and projects the DVFS
savings of Fig. 4.

Run:  python examples/dvfs_exploration.py
"""

import numpy as np

from repro import Frequency, Simulator, XCore, assemble
from repro.energy import EnergyAccounting, dvfs_power_mw, min_voltage
from repro.sim import us
from repro.xs1 import LoopbackFabric

FREQUENCIES_MHZ = [71, 125, 200, 300, 400, 500]


def measured_power_mw(f_mhz: int, threads: int) -> float:
    sim = Simulator()
    core = XCore(sim, node_id=0, fabric=LoopbackFabric(sim))
    core.set_frequency(Frequency.mhz(f_mhz))
    if threads:
        program = assemble("""
            ldc r0, 500000
        loop:
            subi r0, r0, 1
            bt r0, loop
            freet
        """)
        for _ in range(threads):
            core.spawn(program)
    ledger = EnergyAccounting(sim, [core], include_support=False)
    sim.run_for(us(200))
    return ledger.total_energy_j() / 200e-6 * 1e3


def main() -> None:
    print(f"{'MHz':>5} {'idle mW':>8} {'loaded mW':>10} {'Vmin':>6} "
          f"{'DVFS mW':>8} {'saving':>7}")
    loaded_points = []
    for f in FREQUENCIES_MHZ:
        idle = measured_power_mw(f, threads=0)
        loaded = measured_power_mw(f, threads=4)
        loaded_points.append((f, loaded))
        dvfs = dvfs_power_mw(f)
        print(f"{f:>5} {idle:>8.1f} {loaded:>10.1f} {min_voltage(f):>6.2f} "
              f"{dvfs:>8.1f} {1 - dvfs / loaded:>6.1%}")

    f_values = np.array([p[0] for p in loaded_points], dtype=float)
    p_values = np.array([p[1] for p in loaded_points])
    slope, intercept = np.polyfit(f_values, p_values, 1)
    print(
        f"\nEq. 1 fit of the *measured* loaded points: "
        f"P = ({intercept:.1f} + {slope:.3f} f) mW"
    )
    print("paper:                                  P = (46 + 0.300 f) mW")
    print(
        "\nFig. 4's story: at 71 MHz the part runs at 0.60 V, so voltage "
        "scaling keeps only 36% of the 1 V power — frequency scaling alone "
        "leaves that on the table."
    )


if __name__ == "__main__":
    main()
