"""A design-space sweep on the campaign farm, twice — second pass free.

The Swallow overview paper's design questions are sweep-shaped: how do
energy and completion time move as you scale the lattice or the core
clock?  This example runs the canonical DSE matrix — topology x
frequency x seeds — through :mod:`repro.farm`:

1. **Cold pass.**  The matrix expands to one content-addressed job per
   configuration; a two-worker pool simulates them all and the farm
   report aggregates per-job energy/time.
2. **Pareto view.**  Per design point (topology, frequency), seeds
   average out and the Pareto-optimal points — no other point is both
   lower-energy *and* faster — get flagged.
3. **Fleet heat map.**  Every job runs with the fabric observatory
   (``"netscope": true``), so the campaign's heat maps merge into one
   per-topology spatial view of where the fabric was hot.
4. **Warm pass.**  The *same* matrix resubmitted to a fresh campaign
   sharing the result cache: every job completes as a cache hit, byte
   -identical to re-simulating, without spawning a single worker.

Run:  python examples/farm_dse_sweep.py
"""

import tempfile
from pathlib import Path

from repro.farm import JobQueue, MatrixSpec, ResultCache, WorkerPool, farm_heatmap

MATRIX = MatrixSpec(
    workload="faults_stream",
    base={"words": 6, "drop_rate": 0.05, "netscope": True},
    sweep={
        "slices_x": [1, 2],
        "freq_mhz": [500, 250],
        "seed": [0, 1],
    },
)


def run_campaign(root: Path, name: str, cache: ResultCache) -> tuple[dict, JobQueue]:
    queue = JobQueue(root / name)
    queue.submit_all(MATRIX.jobs())
    pool = WorkerPool(queue, cache, num_workers=2, checkpoint_every=500)
    return pool.run().to_dict(), queue


def heat_view(queue: JobQueue, cache: ResultCache) -> None:
    """Render the campaign's merged heat map, one overlay per topology."""
    from repro.network.topology import SwallowTopology
    from repro.network.visualize import render_heat
    from repro.sim import Simulator

    fleet = farm_heatmap(queue, cache)
    if fleet is None:
        print("no heat maps recorded")
        return
    for key in sorted(fleet["grids"]):
        merged = fleet["grids"][key]
        grid = merged["grid"]
        topology = SwallowTopology(
            Simulator(),
            slices_x=grid["slices_x"], slices_y=grid["slices_y"],
        )
        print(f"[{key} slices — merged over {merged['merged_from']} job(s)]")
        print(render_heat(topology, merged))
        print()


def pareto_view(report: dict) -> None:
    """The campaign's non-dominated front, via the DSE passthrough.

    ``repro.dse.pareto_from_farm_report`` is the same code path as
    ``repro farm report --pareto-out``: no re-simulation, just the
    finished campaign's rows scored on energy vs completion time.
    """
    from repro.dse import pareto_from_farm_report

    front = pareto_from_farm_report(
        report,
        objectives=[("total_energy_j", "min"), ("elapsed_s", "min")],
    )
    optimal = {point["job_id"] for point in front["front"]}
    print(f"{'slices':>7} {'freq (MHz)':>11} {'energy (mJ)':>12} "
          f"{'time (us)':>10}   pareto")
    for job in sorted(
        report["jobs"],
        key=lambda j: (j["params"]["slices_x"], j["params"]["freq_mhz"],
                       j["params"]["seed"]),
    ):
        mark = "*" if job["job_id"] in optimal else ""
        if job["job_id"] == front["knee"]:
            mark = "K"
        print(f"{job['params']['slices_x']:>7} "
              f"{job['params']['freq_mhz']:>11} "
              f"{job['total_energy_j'] * 1e3:>12.3f} "
              f"{job['elapsed_s'] * 1e6:>10.3f}   {mark}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="farm_dse_") as text:
        root = Path(text)
        cache = ResultCache(root / "cache")

        print(f"-- cold pass: {MATRIX.num_jobs} jobs "
              f"(topology x frequency x seeds) ----------")
        cold, cold_queue = run_campaign(root, "cold", cache)
        print(f"simulated {cold['counts']['done']} jobs, "
              f"{cold['cache']['hits']} cache hits")
        print()
        pareto_view(cold)
        print()

        print("-- fleet heat map: where the fabric was hot, per topology --")
        heat_view(cold_queue, cache)

        print("-- warm pass: same matrix, fresh campaign, shared cache ----")
        warm, _ = run_campaign(root, "warm", cache)
        print(f"completed {warm['counts']['done']} jobs with "
              f"{warm['cache']['hits']} cache hits "
              f"({warm['cache']['hit_rate']:.0%} hit rate)")
        identical = (
            [j["state_digest"] for j in warm["jobs"]]
            == [j["state_digest"] for j in cold["jobs"]]
        )
        print(f"cached results identical to simulated ones: {identical}")


if __name__ == "__main__":
    main()
