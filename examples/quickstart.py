"""Quickstart: build a 16-core Swallow slice, run code, read the energy.

Demonstrates the three faces of the platform in ~60 lines:

1. an assembled XS1 program on a hardware thread;
2. two behavioural tasks communicating over a network channel;
3. the energy-transparency report that ties it all to joules.

Run:  python examples/quickstart.py
"""

from repro import Compute, RecvWord, SendWord, SwallowSystem, assemble


def main() -> None:
    system = SwallowSystem(slices_x=1)   # one slice: 16 cores, 8 chips
    print(f"built {system!r}")

    # -- 1. an assembled program ------------------------------------------
    dot_product = assemble("""
        .equ N, 8
        .data 0x100
        .word 1, 2, 3, 4, 5, 6, 7, 8       # vector a
        .word 8, 7, 6, 5, 4, 3, 2, 1       # vector b
        start:
            ldc r0, 0x100       # a
            ldc r1, 0x120       # b
            ldc r2, N
            ldc r3, 0           # accumulator
        loop:
            ldw r4, r0, 0
            ldw r5, r1, 0
            mul r6, r4, r5
            add r3, r3, r6
            addi r0, r0, 4
            addi r1, r1, 4
            subi r2, r2, 1
            bt r2, loop
            ldc r7, 0x200
            stw r3, r7, 0       # result -> memory
            freet
    """)
    worker = system.spawn(system.core(0), dot_product)

    # -- 2. two communicating tasks ----------------------------------------
    producer_core, consumer_core = system.core(1), system.core(10)
    channel = system.channel(producer_core, consumer_core)
    received = []

    def producer():
        for i in range(4):
            yield Compute(200)              # pretend to work
            yield SendWord(channel.a, i * i)

    def consumer():
        for _ in range(4):
            received.append((yield RecvWord(channel.b)))

    system.spawn_task(producer_core, producer())
    system.spawn_task(consumer_core, consumer())

    # -- run and inspect -----------------------------------------------------
    system.run()
    result = system.core(0).memory.load_word(0x200)
    print(f"dot product on core 0: {result} (expected 120)")
    print(f"squares streamed core 1 -> core 10: {received}")
    print(f"thread retired {worker.instructions_executed} instructions")
    print()

    # -- 3. energy transparency ------------------------------------------------
    print(system.energy_report().render())


if __name__ == "__main__":
    main()
