"""Characterising the unwoven lattice with synthetic traffic.

Beyond the paper's targeted measurements, this drives the four classic
NoC patterns over one slice and reports latency, then shows the E/C
analysis (§V.D) and the slice's bisection bandwidth that explain the
numbers.

Run:  python examples/network_characterization.py
"""

from repro.analysis import paper_scenarios, vertical_bisection_bps
from repro.network.topology import SwallowTopology
from repro.network.traffic import (
    TrafficRun,
    bit_complement_pairs,
    hotspot_pairs,
    neighbour_pairs,
    uniform_random_pairs,
)
from repro.sim import Simulator, to_ns


def run_pattern(name: str) -> dict:
    sim = Simulator()
    topo = SwallowTopology(sim)
    nodes = topo.node_ids()
    pairs = {
        "neighbour": lambda: neighbour_pairs(topo),
        "uniform-random": lambda: uniform_random_pairs(nodes, 8, seed=7),
        "bit-complement": lambda: bit_complement_pairs(topo),
        "hotspot": lambda: hotspot_pairs(nodes, hotspot=0, count=6, seed=7),
    }[name]()
    run = TrafficRun(topo, pairs, packets=4, gap_instructions=20).start()
    sim.run()
    assert run.stats.complete
    stats = topo.fabric.link_stats_by_class()
    return {
        "pattern": name,
        "packets": run.stats.received,
        "mean_ns": to_ns(round(run.stats.mean_latency_ps)),
        "p99_ns": to_ns(round(run.stats.p99_latency_ps)),
        "offchip_tokens": sum(
            int(s["tokens"]) for cls, s in stats.items() if cls != "on-chip"
        ),
    }


def main() -> None:
    print("Traffic patterns on one 16-core slice (4 packets per flow)\n")
    print(f"{'pattern':<16} {'packets':>8} {'mean ns':>9} {'p99 ns':>9} "
          f"{'off-chip tokens':>16}")
    for name in ("neighbour", "uniform-random", "bit-complement", "hotspot"):
        row = run_pattern(name)
        print(f"{row['pattern']:<16} {row['packets']:>8} {row['mean_ns']:>9.0f} "
              f"{row['p99_ns']:>9.0f} {row['offchip_tokens']:>16}")

    print("\nWhy: the SecV.D computation/communication ladder —")
    for scenario in paper_scenarios():
        print(f"  E/C = {scenario.ratio:>5.0f}   {scenario.name}")
    topo = SwallowTopology(Simulator())
    print(
        f"\nSlice vertical bisection: "
        f"{vertical_bisection_bps(topo) / 1e6:.0f} Mbit/s — every "
        "bit-complement flow crosses it, which is where the latency goes."
    )


if __name__ == "__main__":
    main()
