"""Energy-aware placement of a pipeline (paper §V.D).

The same 4-stage pipeline is placed four ways — on one core's hardware
threads, across a package, across a slice, and across two slices — and
we report throughput, communication scope, and where the energy went.
The paper's guidance ("prefer core-local communication where possible")
falls out of the numbers.

Run:  python examples/energy_aware_pipeline.py
"""

from repro import Placement, build_machine, build_pipeline, place
from repro.apps import communication_scope
from repro.sim import Simulator, to_us

ITEMS = 30
COMPUTE_PER_STAGE = 100


def run_one(strategy: Placement) -> dict:
    sim = Simulator()
    slices_x = 2 if strategy is Placement.CROSS_SLICE else 1
    machine = build_machine(sim, slices_x=slices_x)
    cores = place(machine, 4, strategy)
    result = build_pipeline(cores, items=ITEMS, compute_per_stage=COMPUTE_PER_STAGE)
    sim.run()
    assert result.complete
    machine.accounting.update()
    energy = machine.accounting.breakdown_j()
    return {
        "strategy": strategy.value,
        "scope": communication_scope(cores, machine),
        "makespan_us": to_us(result.makespan_ps),
        "core_energy_uj": energy["cores"] * 1e6,
        "link_energy_uj": energy["links"] * 1e6,
        "bits_moved": result.bits_moved,
    }


def main() -> None:
    print(f"4-stage pipeline, {ITEMS} items, {COMPUTE_PER_STAGE} instructions/stage\n")
    header = (
        f"{'placement':<14} {'widest comm':<12} {'makespan us':>12} "
        f"{'core uJ':>10} {'link uJ':>10} {'bits moved':>11}"
    )
    print(header)
    print("-" * len(header))
    for strategy in Placement:
        row = run_one(strategy)
        print(
            f"{row['strategy']:<14} {row['scope']:<12} "
            f"{row['makespan_us']:>12.2f} {row['core_energy_uj']:>10.2f} "
            f"{row['link_energy_uj']:>10.4f} {row['bits_moved']:>11}"
        )
    print(
        "\nNote how link energy explodes once the pipeline crosses a board "
        "boundary (10.9 nJ/bit FFC cables, Table I), while core-local "
        "placement keeps the network idle — the paper's locality ladder."
    )


if __name__ == "__main__":
    main()
