"""A fault campaign that survives a crash *and* a livelock.

Long Swallow experiments (the overview paper streams workloads across
up to 480 cores) are only as durable as their weakest interruption
story.  This example demonstrates both halves of ours:

1. **Crash + resume.**  A seeded fault campaign runs with periodic
   checkpoints and is killed mid-run, exactly as if the host process
   had died.  Resuming from the newest bundle rebuilds the workload,
   replays it to the captured event count, verifies every layer
   field-by-field against the bundle, and continues — producing a final
   report *byte-identical* to a run that was never interrupted.

2. **Livelock + rollback.**  A second campaign injects a permanent
   100%-drop flaky link mid-stream, livelocking the sender in
   retransmissions.  The watchdog notices the stalled consumer, tries
   the replace rung (useless — the fault is on the wire, not the core),
   then signals rollback: the run rewinds to its last checkpoint and
   replays with the offending fault masked, completing intact.  The
   recovery ladder lands in a deterministic RecoveryReport.

Run:  python examples/resumable_campaign.py
"""

import json

from repro.checkpoint import CheckpointPolicy, ResumableRun, build_workload

SEED = 42
WORDS = 16


def crash_and_resume() -> None:
    params = {"words": WORDS, "seed": SEED}

    # The uninterrupted reference: same workload, no checkpointing.
    reference = build_workload("faults_stream", params)
    reference.system.run()
    expected = reference.final_report()

    # The same run, checkpointed every 500 events and killed mid-flight.
    run = ResumableRun(
        "faults_stream", params,
        policy=CheckpointPolicy(every_events=500, retain=3),
    )
    run.run(kill_after_events=1800)
    bundle = run.snapshots[-1]
    print(f"crashed after 1800 events; newest bundle @ "
          f"{bundle.events_processed} events "
          f"({bundle.time_ps / 1e6:.1f} us, digest {bundle.digest[:12]}...)")

    # Resume: rebuild, replay, verify, continue to completion.
    resumed = ResumableRun.resume(bundle)
    resumed.run()
    report = resumed.final_report()
    identical = (
        json.dumps(report, sort_keys=True)
        == json.dumps(expected, sort_keys=True)
    )
    print(f"resumed run delivered {len(resumed.context.received)}/{WORDS} "
          f"words; final report byte-identical to uninterrupted run: "
          f"{identical}")


def livelock_and_rollback() -> None:
    run = ResumableRun(
        "watchdog_stream",
        {"words": 24, "seed": SEED},
        policy=CheckpointPolicy(every_us=6.0, retain=16),
    )
    recovery = run.run()
    print(recovery.render())
    delivered_ok = run.context.received == run.context.expected
    print(f"after rollback: {len(run.context.received)}/24 words delivered, "
          f"{'intact' if delivered_ok else 'CORRUPTED'}")


def main() -> None:
    print("-- crash + resume ------------------------------------------")
    crash_and_resume()
    print()
    print("-- livelock + watchdog rollback ----------------------------")
    livelock_and_rollback()


if __name__ == "__main__":
    main()
