"""Booting work over Ethernet and streaming results out (paper §V.E).

"Using this bridge, it is possible to both load programs into and stream
data in/out of Swallow over Ethernet."  A nOS-lite runtime uploads tasks
through the 80 Mbit/s bridge (paying real upload time), the tasks fan
out over the machine, and each streams its result words back to the
host through the same bridge.

Run:  python examples/ethernet_boot_and_stream.py
"""

from repro import Compute, SendCt, SendWord, SetDest, SwallowSystem
from repro.core import NanoOS
from repro.network.token import CT_END
from repro.sim import to_us

TASKS = 12


def main() -> None:
    system = SwallowSystem(slices_x=1, ethernet_columns=(0, 3))
    bridge_in, bridge_out = system.bridges
    nos = NanoOS(system, bridge=bridge_in)

    def make_task(task_id):
        def task(core):
            def body():
                tx = core.allocate_chanend()
                yield SetDest(tx, bridge_out.endpoint(task_id % 8))
                yield Compute(500 + 100 * task_id)   # "the work"
                yield SendWord(tx, task_id * task_id)
                yield SendCt(tx, CT_END)
            return body()
        return task

    handles = [nos.submit(make_task(i)) for i in range(TASKS)]
    system.run()

    print(f"submitted {TASKS} tasks through bridge at node {bridge_in.node_id}")
    print(f"placement: {nos.placement_histogram()}")
    starts = sorted(to_us(h.start_time_ps) for h in handles)
    print(
        f"uploads serialised on the 80 Mbit/s bridge: first start "
        f"{starts[0]:.1f} us, last {starts[-1]:.1f} us"
    )

    results = bridge_out.host_receive()
    values = sorted(word.value for word in results)
    print(f"\nhost received {len(results)} result words via bridge "
          f"{bridge_out.node_id}: {values}")
    assert values == sorted(i * i for i in range(TASKS))

    report = system.energy_report()
    print(f"\nenergy: {report.total_energy_j * 1e3:.3f} mJ over "
          f"{report.elapsed_s * 1e6:.0f} us "
          f"(mean {report.mean_power_w:.2f} W)")
    print(f"link traffic by class: "
          f"{ {k: int(v) for k, v in report.link_bits_by_class.items()} } bits")


if __name__ == "__main__":
    main()
