"""An event-driven server in XS1 assembly (ISA-level select).

The paper lists "ISA-level primitives for I/O and networking" among the
XS1's key characteristics.  This example uses them directly: a server
thread arms events on two client channels (``setv`` + ``eeu``) and a
timer, then parks in ``waiteu``; the hardware dispatches it straight to
the right handler as requests arrive — no polling, and a paused thread
burns no pipeline slots (so the other threads run at full rate and the
core's power stays near idle between requests).

Run:  python examples/event_driven_server.py
"""

from repro import SwallowSystem, assemble

REQUESTS_PER_CLIENT = 4

SERVER = f"""
    .equ TOTAL, {2 * REQUESTS_PER_CLIENT}
    # r0/r1: our two chanends; r10 counts requests served
    getr r0, 2
    getr r1, 2
    ldc r2, 0x100
    stw r0, r2, 0           # publish channel ids for the clients
    stw r1, r2, 1
    ldc r10, 0
    in r3, r0               # handshake: client A sends its chanend id...
    setd r0, r3             # ...so replies know where to go
    in r3, r1               # same for client B
    setd r1, r3
    setv r0, from_a
    setv r1, from_b
    eeu r0
    eeu r1
wait:
    waiteu
    freet                   # unreachable: events always dispatch

from_a:
    intt r3, r0             # request byte from client A
    addi r3, r3, 1
    outt r0, r3             # reply: value + 1
    bu served
from_b:
    intt r3, r1
    addi r3, r3, 2
    outt r1, r3             # reply: value + 2
served:
    addi r10, r10, 1
    eqi r4, r10, TOTAL
    bf r4, wait
    ldc r5, 0x200
    stw r10, r5, 0          # record total served
    freet
"""

CLIENT = f"""
    .equ N, {REQUESTS_PER_CLIENT}
    # r11 = which server channel to use (0 or 1); preloaded
    getr r0, 2
    ldc r1, 0x100
poll:
    ldw r2, r1, 0
    bf r2, poll             # wait for the server to publish
    ldw r3, r1, 1
    bf r3, poll
    eqi r4, r11, 0
    bt r4, use_a
    mov r2, r3
use_a:
    setd r0, r2
    out r0, r0              # handshake: tell the server our chanend id
    ldc r5, 0               # request counter
    ldc r6, 0               # response accumulator
loop:
    outt r0, r5             # request = counter value
    intt r7, r0             # response
    add r6, r6, r7
    addi r5, r5, 1
    eqi r8, r5, N
    bf r8, loop
    # store the sum at 0x300 + 4*channel
    ldc r9, 0x300
    shli r4, r11, 2
    add r9, r9, r4
    stw r6, r9, 0
    freet
"""


def main() -> None:
    system = SwallowSystem()
    core = system.core(0)
    server = core.spawn(assemble(SERVER), name="server")
    core.spawn(assemble(CLIENT), regs={"r11": 0}, name="client-a")
    core.spawn(assemble(CLIENT), regs={"r11": 1}, name="client-b")
    system.run()
    assert system.all_halted

    served = core.memory.load_word(0x200)
    sum_a = core.memory.load_word(0x300)
    sum_b = core.memory.load_word(0x304)
    n = REQUESTS_PER_CLIENT
    print(f"server handled {served} requests via hardware events")
    print(f"client A received sum {sum_a} (expect {sum(i + 1 for i in range(n))})")
    print(f"client B received sum {sum_b} (expect {sum(i + 2 for i in range(n))})")
    print(f"\nserver thread retired {server.instructions_executed} instructions —")
    print("no polling loop: while parked in waiteu it consumed zero issue slots.")
    report = system.energy_report()
    print(f"total energy: {report.total_energy_j * 1e6:.1f} uJ over "
          f"{report.elapsed_s * 1e6:.2f} us")


if __name__ == "__main__":
    main()
