"""Energy-aware pipeline: causal spans, per-span energy, live watchpoint.

A four-stage pipeline runs on cores 0-3 — all fed by measurement rail 0
— at 500 MHz.  Three observability layers watch it at once:

* **causal spans** follow every message producer → consumer, exported as
  a Perfetto/Chrome trace whose flow arrows draw the cross-core paths;
* **energy attribution** partitions the whole ledger onto the spans and
  emits a flame-graph folded-stacks file that sums to the ledger total;
* a **power watchpoint** samples rail 0 through the simulated ADC and,
  when the windowed mean crosses 500 mW, steps the pipeline's cores down
  to 250 MHz — the paper's measure-and-adapt loop, §II.

The scenario runs twice and the artefacts are hashed, demonstrating the
byte-identical determinism the observability stack guarantees.

Run:  python examples/energy_aware_pipeline.py
"""

import hashlib
from pathlib import Path

from repro import (
    Compute,
    Frequency,
    PowerWatchpoint,
    RecvWord,
    SendWord,
    SwallowSystem,
)
from repro.obs import chrome_trace_json

ITEMS = 24
COMPUTE_PER_STAGE = 150
STAGE_CORES = (0, 1, 2, 3)       # the four cores of measurement rail 0
BUDGET_MW = 500.0                # rail 0: ~452 mW idle, ~535 mW busy
WATCH_FOR_US = 40.0
OUT_DIR = Path(__file__).parent / "out"


def run_once() -> dict:
    """One full scenario; returns the printable log and the artefacts."""
    system = SwallowSystem(slices_x=1)
    tracer = system.trace(kinds={"route_open", "route_close"})
    recorder = system.spans()
    root = recorder.span("pipeline")
    root.begin(0)
    cores = [system.core(i) for i in STAGE_CORES]
    channels = [system.channel(a, b) for a, b in zip(cores, cores[1:])]
    results: list[int] = []

    def source():
        for i in range(ITEMS):
            yield Compute(COMPUTE_PER_STAGE)
            yield SendWord(channels[0].a, i)

    def worker(index):
        def body():
            for _ in range(ITEMS):
                value = yield RecvWord(channels[index - 1].b)
                yield Compute(COMPUTE_PER_STAGE)
                yield SendWord(channels[index].a, value + index)
        return body()

    def sink():
        for _ in range(ITEMS):
            value = yield RecvWord(channels[-1].b)
            yield Compute(COMPUTE_PER_STAGE)
            results.append(value)

    system.spawn_task(cores[0], source(), name="stage0",
                      span=root.child("stage0"))
    system.spawn_task(cores[1], worker(1), name="stage1",
                      span=root.child("stage1"))
    system.spawn_task(cores[2], worker(2), name="stage2",
                      span=root.child("stage2"))
    system.spawn_task(cores[3], sink(), name="stage3",
                      span=root.child("stage3"))

    log: list[str] = []

    def step_down(watch, event):
        if cores[0].frequency.megahertz <= 250:
            return
        system.set_frequency(Frequency.mhz(250), cores=cores)
        log.append(f"watchpoint fired: {event.describe()}")
        log.append("  -> stepping cores 0-3 down to 250 MHz")

    watch = PowerWatchpoint(
        system.measurement_board(), channel=0, rate_hz=1_000_000.0,
        window_samples=4, above_mw=BUDGET_MW, on_fire=step_down,
        name="rail0",
    ).arm(duration_s=WATCH_FOR_US * 1e-6)

    system.run()
    root.finish(system.sim.now)
    assert results == [i + 3 for i in range(ITEMS)], results
    attribution = system.energy_attribution()

    folded = attribution.folded()
    span_jsonl = recorder.to_jsonl()
    trace_json = chrome_trace_json(tracer.records, spans=recorder)
    flows = sum(1 for ph in ('"ph":"s"', '"ph":"f"') if ph in trace_json)
    flow_count = trace_json.count('"ph":"s"')

    gap_j = abs(attribution.total_j - attribution.attributed_j())
    log.append(
        f"pipeline delivered {len(results)} items in "
        f"{system.sim.now / 1e6:.1f} us (watch sampled "
        f"{watch.samples_taken}x, {len(watch.firings)} firing(s))"
    )
    log.append(
        f"flame graph: {len(attribution.rows)} rows summing to "
        f"{attribution.attributed_j() * 1e6:.3f} uJ; ledger "
        f"{attribution.total_j * 1e6:.3f} uJ (gap {gap_j:.2e} J)"
    )
    assert flows == 2 and flow_count == len(recorder.messages)
    assert gap_j <= 1e-9, gap_j
    return {
        "log": log,
        "table": attribution.render(top=8),
        "folded": folded,
        "span_jsonl": span_jsonl,
        "trace_json": trace_json,
        "flow_count": flow_count,
    }


def digest(run: dict) -> str:
    material = "\0".join(
        [run["folded"], run["span_jsonl"], run["trace_json"], *run["log"]]
    )
    return hashlib.sha256(material.encode()).hexdigest()


def main() -> None:
    print(f"4-stage pipeline on cores {list(STAGE_CORES)} (rail 0), "
          f"{ITEMS} items, watchpoint budget {BUDGET_MW:.0f} mW\n")
    first = run_once()
    for line in first["log"]:
        print(line)
    print()
    print(first["table"])

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "energy_aware_pipeline.trace.json").write_text(
        first["trace_json"], encoding="utf-8")
    (OUT_DIR / "energy_aware_pipeline.folded").write_text(
        first["folded"], encoding="utf-8")
    print(f"\nwrote Perfetto trace ({first['flow_count']} cross-core flow "
          f"arrows) and folded stacks to {OUT_DIR}/")

    second = run_once()
    identical = digest(first) == digest(second)
    print(f"re-ran the scenario: byte-identical: {identical} "
          f"(sha256 {digest(first)[:16]})")
    assert identical


if __name__ == "__main__":
    main()
