"""Design-space exploration with Pareto-front extraction.

The Swallow paper's central trade-off is throughput versus power: a
bigger lattice or a faster clock buys GIPS but costs watts, and the
interesting configurations are the ones nothing else beats on *both*
axes at once.  :mod:`repro.dse` turns that question into a pipeline:

1. **Declare the sweep.**  A :class:`~repro.dse.SweepSpec` names the
   workload, the fixed base parameters, the axes to cross (here
   topology x frequency x seed), and the objective axes that will
   score each point.
2. **Run it.**  ``run_sweep`` expands the spec into content-addressed
   farm jobs and executes them on a worker pool; the per-job results
   fold into a canonical, digest-stable ``dse-report/1`` document.
3. **Extract the front.**  ``pareto_front`` splits the points into the
   non-dominated front (with the knee — the most balanced point —
   flagged) and the dominated rest, each pruned point recording *which*
   front point beats it and by how much.  Objectives are a view, not
   part of the simulation: re-scoring the same report over different
   axes prunes different points without re-running anything.
4. **Prove the caching.**  The same spec resubmitted against a fresh
   campaign sharing the result cache completes without simulating
   anything, and folds to byte-identical report and front JSON.

The same flow is scriptable as ``python -m repro dse submit/run/
report/pareto``.

Run:  python examples/dse_pareto.py
"""

import tempfile
from pathlib import Path

from repro.dse import (
    SweepSpec,
    ascii_scatter,
    front_csv,
    front_json,
    pareto_acceptance_check,
    pareto_front,
    report_json,
    run_sweep,
)
from repro.dse.pareto import render as render_front
from repro.dse.report import render as render_report

SPEC = SweepSpec(
    workload="demo",
    base={"messages": 4},
    sweep={
        "topology": ["lattice", "mesh", "torus"],
        "freq_mhz": [500, 250],
        "seed": [1],
    },
)


def main() -> None:
    print(f"-- sweep {SPEC.sweep_id}: {SPEC.num_points} design points "
          "(topology x frequency) --")
    print("objectives: " + ", ".join(
        f"{obj.key}({obj.goal})" for obj in SPEC.objectives))
    print()

    with tempfile.TemporaryDirectory(prefix="dse_pareto_") as text:
        root = Path(text)

        # Cold pass: every point simulated on a two-worker farm.
        report, farm = run_sweep(SPEC, root / "cold", num_workers=2)
        counts = farm.to_dict()["counts"]
        print(f"-- cold pass: simulated {counts['done']} jobs ----------")
        print(render_report(report))
        print()

        # The non-dominated front over the paper trio of objectives:
        # GIPS up, watts down, pJ/instruction down.
        front = pareto_front(report)
        pareto_acceptance_check(front)  # brute-force: nothing on the
        # front is dominated, every pruned point's dominator is real.
        print("-- pareto front ----------")
        print(render_front(front))
        print()
        print(ascii_scatter(front))
        print()
        print("-- front as CSV ----------")
        print(front_csv(front).strip())
        print()

        # Objectives are a lens on the finished report.  Dropping the
        # power axis asks "fastest AND most efficient": the slow clock
        # loses on both surviving axes and gets pruned — and every
        # pruned point records who beat it, and by how much.
        speed_front = pareto_front(report, objectives=[
            ("gips", "max"), ("energy_per_instr_pj", "min"),
        ])
        print("-- re-scored without the power axis ----------")
        print(render_front(speed_front))
        print()

        # Warm pass: fresh campaign, shared cache — nothing simulated,
        # same bytes out.
        warm_report, warm_farm = run_sweep(
            SPEC, root / "warm", num_workers=2,
            cache_dir=root / "cold" / "cache",
        )
        cache = warm_farm.to_dict()["cache"]
        print(f"-- warm pass: {cache['hits']} cache hits "
              f"({cache['hit_rate']:.0%} hit rate) ----------")
        print("report byte-identical: "
              f"{report_json(warm_report) == report_json(report)}")
        print("front byte-identical: "
              f"{front_json(pareto_front(warm_report)) == front_json(front)}")


if __name__ == "__main__":
    main()
