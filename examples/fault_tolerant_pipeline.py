"""A pipeline that survives runtime faults (paper §IV-B yield issues).

The real Swallow build lost links to "yield issues, mostly with edge
connectors", and its software routing existed precisely so degraded
boards stayed usable.  This example pushes that to runtime: a producer
streams words to a consumer over a *reliable* channel while a fault
campaign kills their direct link mid-run and then kills a core that is
running part of a NanoOS map job.  The health monitor switches the
fabric to software routing tables, the channel retransmits whatever the
kill ate, and the runtime restarts the orphaned tasks on survivors —
the workload finishes correctly, and the campaign report prices the
recovery in retries and nanojoules.

Run:  python examples/fault_tolerant_pipeline.py
"""

from repro import NanoOS, ReliableChannel, SwallowSystem
from repro.faults import CoreKill, FaultCampaign, FlakyLink, LinkKill
from repro.network.routing import Layer

WORDS = 24


def main() -> None:
    system = SwallowSystem()
    topo = system.topology
    node_a = topo.node_at(1, 0, Layer.VERTICAL)
    node_b = topo.node_at(1, 1, Layer.VERTICAL)
    cores = {core.node_id: core for core in system.cores}

    # A NanoOS map job spread over the machine; one of its cores will die.
    nos = NanoOS(system)
    job = nos.map(lambda x: x * x, list(range(12)), cost_per_item=20_000)
    victim = nos.tasks[4].core

    # A reliable stream across the pair whose link the campaign kills.
    channel = ReliableChannel.between(cores[node_a], cores[node_b])
    received = []

    def producer():
        for i in range(WORDS):
            yield from channel.send(i * 11)

    def consumer():
        for _ in range(WORDS):
            received.append((yield from channel.recv()))
        yield from channel.drain()

    system.spawn_task(cores[node_a], producer(), name="pipe.tx")
    system.spawn_task(cores[node_b], consumer(), name="pipe.rx")

    campaign = FaultCampaign(
        system,
        [
            FlakyLink(at_us=0.0, node_a=node_a, node_b=node_b,
                      drop_rate=0.05, until_us=2.0),
            LinkKill(at_us=3.0, node_a=node_a, node_b=node_b),
            CoreKill(at_us=8.0, node_id=victim.node_id),
        ],
        seed=42,
        nos=nos,
    )
    campaign.register_channel("pipeline", channel)
    campaign.arm()
    system.run()

    intact = received == [i * 11 for i in range(WORDS)]
    print(campaign.report().render())
    print()
    print(f"pipeline: {len(received)}/{WORDS} words delivered, "
          f"{'intact' if intact else 'CORRUPTED'} "
          f"({channel.stats.retries} retransmissions)")
    print(f"map job:  {'done' if job.done else 'INCOMPLETE'}, "
          f"results {'correct' if job.ordered_results() == [x * x for x in range(12)] else 'WRONG'}, "
          f"{nos.replacements} task(s) restarted off the dead core")
    print(
        "\nThe link died under live traffic; the monitor recomputed the "
        "routing tables and the reliable channel retransmitted the loss. "
        "The dead core's tasks restarted on survivors — the machine "
        "degraded, but the answers did not."
    )


if __name__ == "__main__":
    main()
