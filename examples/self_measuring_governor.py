"""A program that measures its own power and adapts (paper §II).

"A novel feature of this energy measurement is that the measurement data
can be collected on the Swallow slice itself.  In this way, it is
possible to create a program that can measure its own power consumption
and adapt to the results."

Here the adaptation is a power governor: four cores on rail 0 run flat
out, blowing through a 500 mW rail budget; a fifth core samples the
ADC daughter-board and steps the hot cores' clock down the frequency
ladder until the rail fits the budget.

Run:  python examples/self_measuring_governor.py
"""

from repro import SwallowSystem, assemble
from repro.core import PowerGovernor

BUDGET_MW = 500.0


def main() -> None:
    system = SwallowSystem()
    board = system.measurement_board()

    # Saturate the four cores of rail 1V0-0.
    spin = assemble("""
        ldc r0, 10000000
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """)
    for core in board.rails[0].cores:
        for _ in range(4):
            core.spawn(spin)

    governor = PowerGovernor(
        board, channel=0, budget_mw=BUDGET_MW, period_cycles=25_000
    )
    governor.install(system.core(8), iterations=25)   # host on another rail

    system.run_for_us(2500)

    print(f"rail budget: {BUDGET_MW:.0f} mW   (4 cores at 500 MHz draw ~780 mW)\n")
    print(f"{'sample':>6} {'rail power mW':>14} {'governed MHz':>13}")
    for i, (power, freq) in enumerate(
        zip(governor.log.samples_mw, governor.log.frequencies_mhz)
    ):
        marker = "  <-- over budget" if power > BUDGET_MW else ""
        print(f"{i:>6} {power:>14.1f} {freq:>13.0f}{marker}")
    print(
        f"\ngovernor made {governor.log.adjustments} adjustments; "
        f"final rail power {governor.log.samples_mw[-1]:.1f} mW at "
        f"{governor.log.frequencies_mhz[-1]:.0f} MHz"
    )
    report = system.energy_report()
    print(f"machine mean power over the run: {report.mean_power_w:.3f} W")


if __name__ == "__main__":
    main()
