"""Core and node power models (paper Eq. 1, Fig. 2, Fig. 3).

The paper measures, for an XS1-L core at 1 V:

* loaded (four active threads):  ``Pc = (46 + 0.30 f) mW``  (Eq. 1),
  ranging 65 mW @71 MHz to 193 mW @500 MHz;
* idle (zero active threads): 50 mW @71 MHz to 113 mW @500 MHz, also
  linear; we fit the line through those two anchor points.

Between idle and fully loaded we interpolate linearly in pipeline
utilisation (fraction of issue slots used), which is the natural load
metric of a time-deterministic core.

Fig. 2 decomposes the ~260 mW per-node *system* power (which adds DC-DC
conversion loss, I/O and support logic to the core) into five components;
:func:`node_power_breakdown` reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Eq. 1 constants (per core, 1 V, heavy load).
STATIC_MW = 46.0
DYNAMIC_MW_PER_MHZ = 0.30

#: Idle anchor points (frequency MHz -> power mW) from §III.B.
IDLE_ANCHORS = ((71.0, 50.0), (500.0, 113.0))

#: Frequency range of the paper's scaling experiments.
F_MIN_MHZ = 71.0
F_MAX_MHZ = 500.0


def active_power_mw(f_mhz: float) -> float:
    """Eq. 1: per-core power under heavy load at 1 V, in mW."""
    _check_frequency(f_mhz)
    return STATIC_MW + DYNAMIC_MW_PER_MHZ * f_mhz


def idle_power_mw(f_mhz: float) -> float:
    """Per-core power with zero active threads at 1 V, in mW.

    Linear through the paper's anchor points (71 MHz, 50 mW) and
    (500 MHz, 113 mW).
    """
    _check_frequency(f_mhz)
    (f0, p0), (f1, p1) = IDLE_ANCHORS
    slope = (p1 - p0) / (f1 - f0)
    return p0 + slope * (f_mhz - f0)


def core_power_mw(f_mhz: float, utilization: float) -> float:
    """Per-core power at pipeline utilisation ``utilization`` in [0, 1]."""
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization {utilization} outside [0, 1]")
    idle = idle_power_mw(f_mhz)
    return idle + (active_power_mw(f_mhz) - idle) * utilization


def _check_frequency(f_mhz: float) -> None:
    if f_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {f_mhz} MHz")


@dataclass(frozen=True)
class NodeBreakdown:
    """Fig. 2's decomposition of one node's ~260 mW system power (mW)."""

    computation_and_memory: float = 78.0
    static: float = 68.0
    network_interface: float = 58.0
    dcdc_and_io: float = 46.0
    other: float = 10.0

    @property
    def total_mw(self) -> float:
        """Total node power (the paper's 260 mW figure)."""
        return (
            self.computation_and_memory
            + self.static
            + self.network_interface
            + self.dcdc_and_io
            + self.other
        )

    def shares(self) -> dict[str, float]:
        """Component -> fraction of total (Fig. 2's percentages)."""
        total = self.total_mw
        return {
            "computation_and_memory": self.computation_and_memory / total,
            "static": self.static / total,
            "network_interface": self.network_interface / total,
            "dcdc_and_io": self.dcdc_and_io / total,
            "other": self.other / total,
        }


def node_power_breakdown() -> NodeBreakdown:
    """The Fig. 2 node power decomposition at 500 MHz under load."""
    return NodeBreakdown()


def scaled_breakdown(f_mhz: float, utilization: float = 1.0) -> NodeBreakdown:
    """Fig. 2's breakdown re-scaled to another operating point.

    Core-derived components (computation, static, network interface)
    scale with the core power model; DC-DC/I-O and 'other' are treated as
    frequency-independent support power.
    """
    reference = NodeBreakdown()
    core_ref = active_power_mw(F_MAX_MHZ)
    core_now = core_power_mw(f_mhz, utilization)
    ratio = core_now / core_ref
    return NodeBreakdown(
        computation_and_memory=reference.computation_and_memory * ratio,
        static=reference.static * ratio,
        network_interface=reference.network_interface * ratio,
        dcdc_and_io=reference.dcdc_and_io,
        other=reference.other,
    )
