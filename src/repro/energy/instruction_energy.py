"""Instruction-level energy model (paper §II, following Kerrison & Eder).

The paper reports that on the XS1-L "instructions cause core energy
consumption of in the range of 1.0–2.25 [nJ] at 400 MHz and 1 V, including
static power and dependent upon the operations they perform", i.e.
"31–70 [pJ] per bit operated upon" for 32-bit data.  (The published units —
μJ and nJ — are off by 1000×: they would imply a 100 W+ core.  The values
are only self-consistent as nJ/instruction and pJ/bit, which also match
Eq. 1: a single 100 MIPS thread drawing 100–225 mW costs 1.0–2.25 nJ per
instruction *including amortised static power*.)

Per-class energies below span exactly that 1.0–2.25 nJ range, with the
cheap/expensive ordering of the Kerrison profiling work (ref. [4]):
ALU < branch < load/store < multiply < divide, communication mid-range.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.xs1.isa import EnergyClass

#: Default per-instruction energies (nJ) at 400 MHz, 1 V, single thread,
#: static power amortised in (the paper's measurement condition).
DEFAULT_ENERGY_NJ: dict[EnergyClass, float] = {
    EnergyClass.NOP: 1.00,
    EnergyClass.ALU: 1.20,
    EnergyClass.BRANCH: 1.30,
    EnergyClass.RESOURCE: 1.35,
    EnergyClass.COMM: 1.50,
    EnergyClass.MEM_LOAD: 1.70,
    EnergyClass.MEM_STORE: 1.65,
    EnergyClass.MUL: 2.00,
    EnergyClass.DIV: 2.25,
}

#: Bits a 32-bit instruction operates on (for the paper's per-bit figure).
WORD_BITS = 32


@dataclass
class InstructionEnergyModel:
    """Per-class instruction energy accounting."""

    energy_nj: dict[EnergyClass, float] = field(
        default_factory=lambda: dict(DEFAULT_ENERGY_NJ)
    )

    def __post_init__(self) -> None:
        missing = set(EnergyClass) - set(self.energy_nj)
        if missing:
            raise ValueError(f"energy table missing classes: {missing}")
        for cls, value in self.energy_nj.items():
            if value <= 0:
                raise ValueError(f"non-positive energy for {cls}: {value}")

    def energy_of(self, energy_class: EnergyClass) -> float:
        """Energy of one instruction of ``energy_class``, in nJ."""
        return self.energy_nj[energy_class]

    def energy_per_bit_pj(self, energy_class: EnergyClass) -> float:
        """The paper's per-bit framing: nJ/instruction over 32 bits -> pJ/bit."""
        return self.energy_of(energy_class) * 1000.0 / WORD_BITS

    def total_nj(self, instructions: Counter) -> float:
        """Total energy (nJ) of an instruction-class histogram."""
        return sum(
            self.energy_nj[cls] * count for cls, count in instructions.items()
        )

    def mean_nj(self, instructions: Counter) -> float:
        """Mean per-instruction energy (nJ) of a histogram."""
        total_count = sum(instructions.values())
        if total_count == 0:
            return 0.0
        return self.total_nj(instructions) / total_count

    @property
    def range_nj(self) -> tuple[float, float]:
        """(min, max) per-instruction energy — the paper's 1.0–2.25 nJ."""
        values = self.energy_nj.values()
        return min(values), max(values)

    @property
    def range_per_bit_pj(self) -> tuple[float, float]:
        """(min, max) per-bit energy — the paper's 31–70 pJ/bit."""
        low, high = self.range_nj
        return low * 1000.0 / WORD_BITS, high * 1000.0 / WORD_BITS
