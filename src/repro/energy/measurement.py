"""The energy-measurement subsystem (paper §II), simulated.

The physical chain is: five switch-mode supplies per slice (four 1 V
rails feeding two chips — four cores — each, one 3.3 V rail for I/O),
each with a shunt resistor, a differential amplifier, and a shared
multi-channel ADC sampling at up to 2 MS/s (1 MS/s when all channels are
sampled together).  Measurement data can be consumed *on the slice
itself* — a program can measure its own power and adapt — or streamed out
over Ethernet.

Here the "shunt" reads the energy-accounting ledger; the amplifier/ADC
stage contributes gain and quantisation so measured values have realistic
resolution, and sample-rate limits are enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.accounting import SUPPORT_MW_PER_NODE, EnergyAccounting
from repro.sim import PS_PER_S, Process, Simulator
from repro.xs1.core import XCore

#: Cores fed by each 1 V rail (two dual-core chips).
CORES_PER_RAIL = 4
#: Core-supply rails per slice.
CORE_RAILS_PER_SLICE = 4
#: Maximum single-channel sample rate (paper: 2 M samples/s).
MAX_SINGLE_RATE_HZ = 2_000_000
#: Maximum all-channel sample rate (paper: 1 M/s if all sampled).
MAX_ALL_RATE_HZ = 1_000_000


class SamplingRateError(ValueError):
    """Raised when a requested sampling rate exceeds the ADC's capability."""


@dataclass
class Rail:
    """One measured supply rail."""

    name: str
    voltage: float
    cores: list[XCore] = field(default_factory=list)
    is_io: bool = False

    def power_mw(self, accounting: EnergyAccounting) -> float:
        """Instantaneous (last-window) power drawn from this rail."""
        accounting.update()
        if self.is_io:
            return SUPPORT_MW_PER_NODE * len(accounting.trackers)
        return sum(
            accounting.trackers[core.node_id].last_window_power_mw
            for core in self.cores
        )


@dataclass
class Adc:
    """Quantising ADC front-end: shunt + differential amplifier + converter.

    ``noise_lsb_rms`` adds seeded Gaussian front-end noise (in LSBs) for
    studying measurement-limited energy attribution; zero (the default)
    keeps the chain ideal and the simulation fully deterministic either
    way — the noise stream is a pure function of the seed.
    """

    resolution_bits: int = 12
    full_scale_mw: float = 2000.0
    noise_lsb_rms: float = 0.0
    noise_seed: int = 1

    def __post_init__(self) -> None:
        import random

        self._rng = random.Random(self.noise_seed)

    def quantize(self, power_mw: float) -> float:
        """The rail power as the ADC would report it."""
        levels = (1 << self.resolution_bits) - 1
        if self.noise_lsb_rms:
            power_mw += self._rng.gauss(0.0, self.noise_lsb_rms) * self.lsb_mw
        clamped = min(max(power_mw, 0.0), self.full_scale_mw)
        code = round(clamped / self.full_scale_mw * levels)
        return code / levels * self.full_scale_mw

    @property
    def lsb_mw(self) -> float:
        """Power represented by one ADC code step."""
        return self.full_scale_mw / ((1 << self.resolution_bits) - 1)


class MeasurementBoard:
    """The ADC daughter-board: samples rails, records traces.

    ``rails`` defaults to the slice layout of §II when built through
    :func:`build_slice_rails`.
    """

    def __init__(
        self,
        sim: Simulator,
        accounting: EnergyAccounting,
        rails: list[Rail],
        adc: Adc | None = None,
        name: str = "adc",
    ):
        self.sim = sim
        self.accounting = accounting
        self.rails = rails
        self.adc = adc or Adc()
        self.samples_taken = 0
        self.name = name
        #: Optional trace sink (records one ``sample`` event per read).
        self.tracer = None
        self._samples_counter = None

    def register_metrics(self, registry, **labels: str) -> None:
        """Publish ADC activity: the eager ``adc.samples`` counter.

        ``labels`` identify the board (the assembly passes
        ``slice="sx,sy"``); the counter increments per channel read, the
        same granularity the paper's 2 MS/s budget is specified at.
        """
        counter = registry.counter("adc.samples", **labels)
        counter.inc(self.samples_taken)
        self._samples_counter = counter

    def _count_samples(self, n: int) -> None:
        self.samples_taken += n
        if self._samples_counter is not None:
            self._samples_counter.inc(n)
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.name, "sample", n)

    def sample_channel(self, index: int) -> float:
        """One quantised power reading (mW) of rail ``index``."""
        rail = self.rails[index]
        self._count_samples(1)
        return self.adc.quantize(rail.power_mw(self.accounting))

    def sample_all(self) -> list[float]:
        """Simultaneous reading of every rail."""
        self._count_samples(len(self.rails))
        self.accounting.update()
        return [self.adc.quantize(rail.power_mw(self.accounting)) for rail in self.rails]

    def record_trace(
        self,
        duration_s: float,
        rate_hz: float,
        channel: int | None = None,
    ) -> "PowerTrace":
        """Schedule periodic sampling; returns the (filling) trace.

        ``channel=None`` samples all rails (1 MS/s cap); a specific
        channel may go to 2 MS/s, as in the paper.
        """
        cap = MAX_SINGLE_RATE_HZ if channel is not None else MAX_ALL_RATE_HZ
        if rate_hz > cap:
            raise SamplingRateError(
                f"{rate_hz:g} S/s exceeds the {cap:g} S/s ADC limit"
            )
        if rate_hz <= 0:
            raise SamplingRateError("sampling rate must be positive")
        count = int(duration_s * rate_hz)
        interval_ps = round(PS_PER_S / rate_hz)
        trace = PowerTrace(
            channel=channel,
            rate_hz=rate_hz,
            rail_names=(
                [self.rails[channel].name]
                if channel is not None
                else [rail.name for rail in self.rails]
            ),
        )

        def sampler():
            for _ in range(count):
                if channel is not None:
                    trace.append(self.sim.now, [self.sample_channel(channel)])
                else:
                    trace.append(self.sim.now, self.sample_all())
                yield interval_ps

        Process(self.sim, sampler(), name=f"adc-trace-{id(trace)}")
        return trace


@dataclass
class PowerTrace:
    """A recorded sampling run."""

    channel: int | None
    rate_hz: float
    rail_names: list[str]
    times_ps: list[int] = field(default_factory=list)
    values_mw: list[list[float]] = field(default_factory=list)

    def append(self, time_ps: int, values: list[float]) -> None:
        """Record one sample row."""
        self.times_ps.append(time_ps)
        self.values_mw.append(values)

    def __len__(self) -> int:
        return len(self.times_ps)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(times_s, values_mw) as numpy arrays (rows = samples)."""
        times = np.asarray(self.times_ps, dtype=np.float64) / PS_PER_S
        values = np.asarray(self.values_mw, dtype=np.float64)
        return times, values

    def mean_power_mw(self) -> np.ndarray:
        """Mean power per rail over the trace."""
        _, values = self.as_arrays()
        if values.size == 0:
            return np.zeros(len(self.rail_names))
        return values.mean(axis=0)

    def energy_j(self) -> float:
        """Trapezoidal energy estimate over the trace (all rails)."""
        times, values = self.as_arrays()
        if len(times) < 2:
            return 0.0
        total = values.sum(axis=1) * 1e-3
        return float(np.trapezoid(total, times))


def build_slice_rails(cores: list[XCore]) -> list[Rail]:
    """The paper's five-rail layout for one slice of sixteen cores."""
    if len(cores) != CORE_RAILS_PER_SLICE * CORES_PER_RAIL:
        raise ValueError(
            f"a slice has {CORE_RAILS_PER_SLICE * CORES_PER_RAIL} cores, "
            f"got {len(cores)}"
        )
    rails = [
        Rail(
            name=f"1V0-{i}",
            voltage=1.0,
            cores=cores[i * CORES_PER_RAIL : (i + 1) * CORES_PER_RAIL],
        )
        for i in range(CORE_RAILS_PER_SLICE)
    ]
    rails.append(Rail(name="3V3-io", voltage=3.3, is_io=True))
    return rails
