"""Simulation-time energy accounting — the "energy transparency" engine.

Integrates the Eq. 1 power model over each core's actual pipeline
utilisation, adds Table I energy for every bit the network moved, and
(optionally) the per-node support power of Fig. 2.  The measurement
subsystem (:mod:`repro.energy.measurement`) samples these accumulators
the way the real daughter-board samples shunt resistors, closing the
paper's loop of "a program that can measure its own power consumption
and adapt to the results".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.link_energy import traffic_energy_joules
from repro.energy.power_model import NodeBreakdown, core_power_mw
from repro.network.fabric import SwallowFabric
from repro.sim import PS_PER_S, Simulator
from repro.xs1.core import XCore

#: Per-node support power (DC-DC conversion + I/O + other, Fig. 2), mW.
SUPPORT_MW_PER_NODE = NodeBreakdown().dcdc_and_io + NodeBreakdown().other


class CoreEnergyTracker:
    """Windowed integration of one core's power."""

    def __init__(self, core: XCore, sim: Simulator):
        self.core = core
        self.sim = sim
        self._last_time = sim.now
        self._last_cycle = core.cycle
        self._last_slots = core.stats.slots_issued
        self.energy_j = 0.0
        self.last_window_power_mw = core_power_mw(core.frequency.megahertz, 0.0)
        core.frequency_listeners.append(lambda _core: self.update())

    def _open_window(self) -> tuple[float, float] | None:
        """(energy increment, power) of the open window; ``None`` if empty."""
        dt_ps = self.sim.now - self._last_time
        if dt_ps <= 0:
            return None
        cycles = self.core.cycle - self._last_cycle
        slots = self.core.stats.slots_issued - self._last_slots
        utilization = min(1.0, slots / cycles) if cycles > 0 else 0.0
        power_mw = core_power_mw(self.core.frequency.megahertz, utilization)
        # Full-DVFS extension: P scales with V^2 (paper §III.B, Fig. 4).
        power_mw *= getattr(self.core, "voltage", 1.0) ** 2
        return power_mw * 1e-3 * (dt_ps / PS_PER_S), power_mw

    def update(self) -> None:
        """Close the integration window at the current simulation time."""
        window = self._open_window()
        if window is None:
            return
        increment, power_mw = window
        self.energy_j += increment
        self.last_window_power_mw = power_mw
        self._last_time = self.sim.now
        self._last_cycle = self.core.cycle
        self._last_slots = self.core.stats.slots_issued

    def observe(self) -> tuple[float, float]:
        """(energy through now, open-window power) — without closing.

        A pure read: repeated observation leaves the window anchors and
        the float accumulation order exactly as an unobserved run, so
        observers (metrics snapshots, heartbeats) can sample mid-run
        without perturbing checkpoint state or the bit-exact final
        ledger.
        """
        window = self._open_window()
        if window is None:
            return self.energy_j, self.last_window_power_mw
        increment, power_mw = window
        return self.energy_j + increment, power_mw


class EnergyAccounting:
    """System-wide energy ledger: cores + network + support."""

    def __init__(
        self,
        sim: Simulator,
        cores: list[XCore],
        fabric: SwallowFabric | None = None,
        include_support: bool = True,
    ):
        self.sim = sim
        self.trackers = {core.node_id: CoreEnergyTracker(core, sim) for core in cores}
        self.fabric = fabric
        self.include_support = include_support
        self._start_time = sim.now
        self._last_link_bits: dict[str, float] = {}
        self.link_energy_j = 0.0
        #: Reliable channels whose retransmission energy the ledger
        #: reports (name -> channel); see :meth:`register_retry_channel`.
        self.retry_channels: dict[str, object] = {}

    def add_core(self, core: XCore) -> None:
        """Track an additional core from now on."""
        if core.node_id not in self.trackers:
            self.trackers[core.node_id] = CoreEnergyTracker(core, self.sim)

    def update(self) -> None:
        """Bring every accumulator up to the current simulation time."""
        for tracker in self.trackers.values():
            tracker.update()
        if self.fabric is not None:
            bits_now = {
                name: stats["bits"]
                for name, stats in self.fabric.link_stats_by_class().items()
            }
            delta = {
                name: bits - self._last_link_bits.get(name, 0.0)
                for name, bits in bits_now.items()
            }
            self.link_energy_j += traffic_energy_joules(delta)
            self._last_link_bits = bits_now

    def observe_link_energy_j(self) -> float:
        """Link energy through now, without committing the bit deltas."""
        if self.fabric is None:
            return self.link_energy_j
        delta = {
            name: stats["bits"] - self._last_link_bits.get(name, 0.0)
            for name, stats in self.fabric.link_stats_by_class().items()
        }
        return self.link_energy_j + traffic_energy_joules(delta)

    # -- queries ---------------------------------------------------------------

    def core_energy_j(self, node_id: int) -> float:
        """Accumulated energy of one core (update first)."""
        self.update()
        return self.trackers[node_id].energy_j

    def core_power_mw(self, node_id: int) -> float:
        """Power of one core over its most recent window."""
        self.update()
        return self.trackers[node_id].last_window_power_mw

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span of the ledger, in seconds."""
        return (self.sim.now - self._start_time) / PS_PER_S

    def register_retry_channel(self, name: str, channel) -> None:
        """Report ``channel``'s retransmission energy through the ledger.

        ``channel`` is anything with a ``retry_energy_j(accounting)``
        method (a :class:`~repro.apps.reliable.ReliableChannel`).  Retry
        traffic is ordinary traffic — its joules are already inside
        :attr:`link_energy_j` — so :meth:`retry_energy_j` is an
        *informational overlay* (how much of the link total was
        retransmission), never added to :meth:`total_energy_j`.
        """
        self.retry_channels[name] = channel

    def retry_energy_j(self) -> float:
        """Link energy spent on registered channels' retransmissions."""
        return sum(
            channel.retry_energy_j(self)
            for channel in self.retry_channels.values()
        )

    def observe_retry_energy_j(self) -> float:
        """Retransmission energy through now, without committing windows.

        The same proration as :meth:`retry_energy_j` (each channel's
        share of wire bits applied to the link total) computed against
        :meth:`observe_link_energy_j`, so observers never mutate the
        ledger they are reporting.
        """
        if self.fabric is None:
            return 0.0
        total_bits = sum(link.bits_carried for link in self.fabric.links)
        if total_bits == 0:
            return 0.0
        link_energy = self.observe_link_energy_j()
        return sum(
            link_energy * channel.stats.retry_bits / total_bits
            for channel in self.retry_channels.values()
            if channel.stats.retry_bits
        )

    def support_energy_j(self) -> float:
        """Per-node support energy (DC-DC + I/O + other) so far."""
        if not self.include_support:
            return 0.0
        return SUPPORT_MW_PER_NODE * 1e-3 * self.elapsed_s * len(self.trackers)

    def total_energy_j(self) -> float:
        """Everything: cores + links + support."""
        self.update()
        cores = sum(t.energy_j for t in self.trackers.values())
        return cores + self.link_energy_j + self.support_energy_j()

    def breakdown_j(self) -> dict[str, float]:
        """Energy by category."""
        self.update()
        return {
            "cores": sum(t.energy_j for t in self.trackers.values()),
            "links": self.link_energy_j,
            "support": self.support_energy_j(),
        }

    def mean_power_mw(self) -> float:
        """Average total power since construction."""
        elapsed = self.elapsed_s
        if elapsed == 0:
            return 0.0
        return self.total_energy_j() / elapsed * 1e3

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical ledger state with bit-exact energy accumulators.

        Deliberately does **not** call :meth:`update`: closing the
        integration windows at capture time would split them differently
        from an uninterrupted run, and float accumulation is not
        associative — the capture itself would perturb the final report
        at the bit level.  Instead the raw accumulators *and* the open
        window anchors are captured; floats are stored as
        ``float.hex()`` strings so byte-identity means bit-identity.
        """
        return {
            "start_time_ps": self._start_time,
            "link_energy_j": self.link_energy_j.hex(),
            "link_bits_seen": {
                name: float(bits)
                for name, bits in sorted(self._last_link_bits.items())
            },
            "cores": {
                str(node_id): {
                    "energy_j": tracker.energy_j.hex(),
                    "last_window_power_mw":
                        tracker.last_window_power_mw.hex(),
                    "window_start_ps": tracker._last_time,
                    "window_start_cycle": tracker._last_cycle,
                    "window_start_slots": tracker._last_slots,
                }
                for node_id, tracker in sorted(self.trackers.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Verify the replayed ledger against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "energy")

    def register_metrics(self, registry) -> None:
        """Publish the ledger as metric series (lazily collected).

        The collector *observes* the ledger (open windows included)
        without closing any integration window: a metrics snapshot —
        and hence a heartbeat's metrics delta — is a pure read, so
        snapshotting mid-run perturbs neither checkpoint state nor the
        bit-exact final accumulators.  End-of-run reports
        (:func:`repro.core.transparency.build_report`) still commit
        via :meth:`update` before reading, after which observed and
        committed values coincide bit-for-bit — reports and metrics
        cannot disagree.
        """

        def _collect(emit) -> None:
            for node_id in sorted(self.trackers):
                energy_j, power_mw = self.trackers[node_id].observe()
                labels = {"node": str(node_id)}
                emit("energy.core_j", labels, energy_j)
                emit("energy.core_power_mw", labels, power_mw)
            emit("energy.links_j", {}, self.observe_link_energy_j())
            emit("energy.support_j", {}, self.support_energy_j())
            emit("energy.retry_j", {}, self.observe_retry_energy_j())
            emit("energy.elapsed_s", {}, self.elapsed_s)

        registry.register_collector(_collect)
