"""Dynamic voltage & frequency scaling projection (paper Fig. 4).

Swallow's XS1-L parts only scale frequency, but §III.B derives the extra
saving full DVFS would give using P = C·V²·f and the experimentally
determined minimum voltages: 0.6 V at 71 MHz and 0.95 V at 500 MHz (we
interpolate linearly between them).  Power at a scaled voltage is the 1 V
figure multiplied by V² — both the dynamic CV²f term and (to first order,
as the paper does) the static term scale together.
"""

from __future__ import annotations

from repro.energy.power_model import (
    F_MAX_MHZ,
    F_MIN_MHZ,
    active_power_mw,
    core_power_mw,
)

#: Experimentally determined minimum supply points (MHz, V) from §III.B.
VMIN_ANCHORS = ((71.0, 0.60), (500.0, 0.95))

#: Nominal rail voltage of current Swallow boards.
V_NOMINAL = 1.0


def min_voltage(f_mhz: float) -> float:
    """Minimum allowable Vdd at ``f_mhz``, linearly interpolated.

    Clamped to the 0.6 V floor below 71 MHz; above 500 MHz the part is out
    of spec and we raise.
    """
    (f0, v0), (f1, v1) = VMIN_ANCHORS
    if f_mhz > f1:
        raise ValueError(f"{f_mhz} MHz exceeds the {f1:g} MHz maximum")
    if f_mhz <= f0:
        return v0
    return v0 + (v1 - v0) * (f_mhz - f0) / (f1 - f0)


def power_at_voltage_mw(f_mhz: float, voltage: float, utilization: float = 1.0) -> float:
    """Core power at (f, V): the 1 V model scaled by (V / 1 V)^2."""
    if voltage <= 0:
        raise ValueError(f"voltage must be positive, got {voltage}")
    return core_power_mw(f_mhz, utilization) * (voltage / V_NOMINAL) ** 2


def dvfs_power_mw(f_mhz: float, utilization: float = 1.0) -> float:
    """Core power with the voltage dropped to the minimum for ``f_mhz``."""
    return power_at_voltage_mw(f_mhz, min_voltage(f_mhz), utilization)


#: Discrete operating points a DVFS policy may step between, lowest
#: first.  Matches the PowerGovernor's frequency ladder: 71 MHz is the
#: 0.6 V anchor, 500 MHz the 0.95 V maximum.
LADDER_MHZ = (71.0, 125.0, 250.0, 375.0, 500.0)


def ladder_clamp(required_mhz: float, ladder=LADDER_MHZ) -> float:
    """Smallest ladder frequency able to supply ``required_mhz``.

    Demand above the top rung clamps to it — the policy then runs flat
    out and the schedule's feasibility is the scheduler's problem.
    """
    for f_mhz in ladder:
        if f_mhz >= required_mhz:
            return f_mhz
    return ladder[-1]


def dvfs_operating_point(f_mhz: float):
    """The (Frequency, voltage) pair for running at ``f_mhz``.

    Voltage is the §III.B minimum for the frequency — what
    :meth:`XCore.set_dvfs_operating_point` expects.
    """
    from repro.sim import Frequency

    return Frequency.mhz(f_mhz), min_voltage(f_mhz)


def dvfs_saving_fraction(f_mhz: float) -> float:
    """Fraction of power saved by voltage scaling at ``f_mhz`` (loaded)."""
    base = active_power_mw(f_mhz)
    return 1.0 - dvfs_power_mw(f_mhz) / base


def figure4_series(points: int = 30) -> list[dict[str, float]]:
    """The two Fig. 4 curves: power at 1 V and after voltage scaling.

    Returns one row per frequency: ``{"f_mhz", "p_1v_mw", "p_dvfs_mw"}``
    for a single core under four-thread load.
    """
    if points < 2:
        raise ValueError("need at least two points")
    rows = []
    for i in range(points):
        f_mhz = F_MIN_MHZ + (F_MAX_MHZ - F_MIN_MHZ) * i / (points - 1)
        rows.append(
            {
                "f_mhz": f_mhz,
                "p_1v_mw": active_power_mw(f_mhz),
                "p_dvfs_mw": dvfs_power_mw(f_mhz),
            }
        )
    return rows
