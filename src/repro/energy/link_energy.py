"""Link energy (paper Table I) and communication/computation comparison.

Table I derives energy-per-bit as maximum link power over data rate for
each link class; the same arithmetic lives on
:class:`repro.network.params.LinkSpec`, so this module mostly assembles
the table and converts traffic statistics into joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.params import TABLE_I_LINKS, LinkSpec


@dataclass(frozen=True)
class TableIRow:
    """One row of Table I."""

    link_type: str
    data_rate_mbit: float
    max_power_mw: float
    energy_per_bit_pj: float


#: Paper values for cross-checking (link class name -> pJ/bit).
PAPER_TABLE_I_PJ_PER_BIT = {
    "on-chip": 5.6,
    "on-board-vertical": 212.8,
    "on-board-horizontal": 201.6,
    "off-board-ffc": 10880.0,
}


def table_i() -> list[TableIRow]:
    """Reproduce Table I from the link specifications."""
    return [
        TableIRow(
            link_type=spec.name,
            data_rate_mbit=spec.operating_bitrate / 1e6,
            max_power_mw=spec.max_power_mw,
            energy_per_bit_pj=spec.energy_per_bit_pj,
        )
        for spec in TABLE_I_LINKS
    ]


def link_energy_joules(bits: float, spec: LinkSpec) -> float:
    """Energy to move ``bits`` over one link of class ``spec``."""
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return bits * spec.energy_per_bit_pj * 1e-12


def traffic_energy_joules(bits_by_class: dict[str, float]) -> float:
    """Energy of aggregate traffic given bits per link-class name."""
    by_name = {spec.name: spec for spec in TABLE_I_LINKS}
    total = 0.0
    for name, bits in bits_by_class.items():
        spec = by_name.get(name)
        if spec is None:
            raise ValueError(f"unknown link class {name!r}")
        total += link_energy_joules(bits, spec)
    return total


def offboard_onboard_ratio() -> float:
    """The paper's "factor of 50" energy rise going off-board."""
    onboard = PAPER_TABLE_I_PJ_PER_BIT["on-board-vertical"]
    offboard = PAPER_TABLE_I_PJ_PER_BIT["off-board-ffc"]
    return offboard / onboard
