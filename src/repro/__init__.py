"""swallow-repro: an energy-transparent many-core embedded system, simulated.

Reproduction of Hollis & Kerrison, "Swallow: Building an
Energy-Transparent Many-Core Embedded Real-Time System" (DATE 2016).

Quick start::

    from repro import SwallowSystem, Compute, SendWord, RecvWord

    system = SwallowSystem(slices_x=1)          # one 16-core slice
    a, b = system.core(0), system.core(5)
    channel = system.channel(a, b)

    def producer():
        yield Compute(100)
        yield SendWord(channel.a, 42)

    def consumer():
        value = yield RecvWord(channel.b)

    system.spawn_task(a, producer())
    system.spawn_task(b, consumer())
    system.run()
    print(system.energy_report().render())

Subpackages: :mod:`repro.sim` (event kernel), :mod:`repro.xs1` (the
processor model), :mod:`repro.network` (links/switches/topology),
:mod:`repro.board` (power tree, assembly, yield), :mod:`repro.energy`
(power models and measurement), :mod:`repro.analysis` (Eq. 2, E/C,
survey tables), :mod:`repro.apps` (parallel patterns), and
:mod:`repro.core` (the assembled platform).
"""

from repro.apps import (
    AppChannel,
    Placement,
    ReliableChannel,
    SharedMemoryServer,
    build_client_server,
    build_message_ring,
    build_pipeline,
    build_task_farm,
    place,
)
from repro.board import build_machine, build_stack, slice_power, system_power_w
from repro.core import (
    EnergyReport,
    NanoOS,
    PowerGovernor,
    SwallowSystem,
)
from repro.faults import FaultCampaign, HealthMonitor
from repro.energy import (
    EnergyAccounting,
    InstructionEnergyModel,
    MeasurementBoard,
    active_power_mw,
    core_power_mw,
    dvfs_power_mw,
    idle_power_mw,
    table_i,
)
from repro.network import ChanendAddress, Token
from repro.network.ethernet import EthernetBridge
from repro.network.routing import Direction, Layer, NodeCoord, next_direction
from repro.network.topology import SwallowTopology
from repro.obs import (
    EnergyAttribution,
    MetricsRegistry,
    MetricsSnapshot,
    PowerWatchpoint,
    SimProfile,
    Span,
    SpanRecorder,
    WatchEvent,
    attribute_energy,
)
from repro.sim import Frequency, Simulator, TraceRecorder
from repro.xs1 import (
    BehavioralThread,
    CheckCt,
    Compute,
    Program,
    RecvPacket,
    RecvToken,
    RecvWord,
    SendCt,
    SendToken,
    SendWord,
    SetDest,
    Sleep,
    XCore,
    assemble,
)

__version__ = "1.0.0"

__all__ = [
    "AppChannel",
    "BehavioralThread",
    "ChanendAddress",
    "CheckCt",
    "Compute",
    "Direction",
    "EnergyAccounting",
    "EnergyAttribution",
    "EnergyReport",
    "EthernetBridge",
    "FaultCampaign",
    "Frequency",
    "HealthMonitor",
    "InstructionEnergyModel",
    "Layer",
    "MeasurementBoard",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NanoOS",
    "NodeCoord",
    "Placement",
    "PowerGovernor",
    "PowerWatchpoint",
    "Program",
    "RecvPacket",
    "RecvToken",
    "RecvWord",
    "ReliableChannel",
    "SendCt",
    "SendToken",
    "SendWord",
    "SetDest",
    "SharedMemoryServer",
    "SimProfile",
    "Simulator",
    "Sleep",
    "Span",
    "SpanRecorder",
    "SwallowSystem",
    "SwallowTopology",
    "Token",
    "TraceRecorder",
    "WatchEvent",
    "XCore",
    "active_power_mw",
    "assemble",
    "attribute_energy",
    "build_client_server",
    "build_machine",
    "build_message_ring",
    "build_pipeline",
    "build_stack",
    "build_task_farm",
    "core_power_mw",
    "dvfs_power_mw",
    "idle_power_mw",
    "next_direction",
    "place",
    "slice_power",
    "system_power_w",
    "table_i",
]
