"""The policy-zoo ablation: policies x fault campaigns x k, scored.

One cell of the ablation is one ``policy_rt`` run — a seeded real-time
task set placed by a zoo bundle while a seeded campaign kills cores —
scored on the three axes the paper's robustness story cares about:
deadline-miss rate, total energy, and fault survival.  The sweep is a
farm-ready :class:`~repro.farm.spec.MatrixSpec` (the ``campaign`` axis
uses bundled dict values, co-varying seed and kill count), so the same
matrix can run inline here, on the campaign farm, or in CI.

Everything is canonical: cells are produced in the matrix's
deterministic job order, every value is either an int, a ledger list or
a pure function of the seeded simulation, and the report carries a
content digest — two runs of the same matrix must produce identical
bytes, and the CI smoke job diffs them to prove it.
"""

from __future__ import annotations

from repro.checkpoint.snapshot import canonical_json, content_digest
from repro.checkpoint.workloads import build_workload
from repro.farm.spec import JobSpec, MatrixSpec
from repro.xs1.errors import ResourceError

#: Report schema tag (bump on any incompatible shape change).
SCHEMA = "policy-zoo/1"

#: Every bundle in the zoo, in report order.
DEFAULT_POLICIES = (
    "least_loaded", "edf", "rm", "ccedf", "laedf", "kfault", "threshold",
)

#: Three seeded fault campaigns of rising severity.  Kills land early
#: (from 5 us) so victims still host live tasks — a kill that orphans
#: nothing would test nothing.
DEFAULT_CAMPAIGNS = (
    {"seed": 1, "kills": 1, "kill_from_us": 5.0, "kill_every_us": 6.0},
    {"seed": 2, "kills": 2, "kill_from_us": 5.0, "kill_every_us": 6.0},
    {"seed": 3, "kills": 3, "kill_from_us": 5.0, "kill_every_us": 6.0},
)

#: Backup depths to sweep.
DEFAULT_KS = (0, 1, 2)


def ablation_matrix(
    policies=DEFAULT_POLICIES,
    campaigns=DEFAULT_CAMPAIGNS,
    ks=DEFAULT_KS,
    base: dict | None = None,
) -> MatrixSpec:
    """The sweep as a farm-ready matrix over the ``policy_rt`` workload."""
    return MatrixSpec(
        workload="policy_rt",
        base=dict(base or {}),
        sweep={
            "policy": list(policies),
            "campaign": [dict(campaign) for campaign in campaigns],
            "k": list(ks),
        },
    )


def run_cell(spec: JobSpec) -> dict:
    """Run one ablation cell and score it.

    A :class:`ResourceError` escaping the run is the non-degrading
    failure mode (fault budget exhausted, machine full): the cell
    scores ``survived: false`` instead of propagating.
    """
    context = build_workload(spec.workload, spec.params)
    try:
        context.system.run()
        survived = True
        failure = None
    except ResourceError as error:
        survived = False
        failure = str(error)
    nos = context.nos
    counts = nos.deadline_counts()
    scored = counts["hit"] + counts["miss"] + counts["shed"]
    return {
        "policy": spec.params["policy"],
        "k": spec.params["k"],
        "seed": spec.params["seed"],
        "kills": spec.params["kills"],
        "job_id": spec.job_id,
        "survived": survived,
        "failure": failure,
        "deadline": counts,
        "miss_rate": (counts["miss"] / scored) if scored else None,
        "energy_j": context.system.energy_report().total_energy_j,
        "replacements": nos.replacements,
        "core_failures": len(nos.failed_cores),
        "shed_tasks": [task.task_id for task in nos.shed_tasks],
        "dvfs_steps": nos.dvfs.steps if nos.dvfs is not None else 0,
        "state_digest": content_digest(nos.snapshot_state()),
    }


def run_ablation(
    policies=DEFAULT_POLICIES,
    campaigns=DEFAULT_CAMPAIGNS,
    ks=DEFAULT_KS,
    base: dict | None = None,
) -> dict:
    """Run the full sweep; returns the canonical report document."""
    matrix = ablation_matrix(policies, campaigns, ks, base)
    cells = [run_cell(spec) for spec in matrix.jobs()]
    summary: dict[str, dict] = {}
    for cell in cells:
        row = summary.setdefault(cell["policy"], {
            "cells": 0,
            "survived": 0,
            "deadline_misses": 0,
            "sheds": 0,
            "replacements": 0,
            "energy_j": 0.0,
        })
        row["cells"] += 1
        row["survived"] += 1 if cell["survived"] else 0
        row["deadline_misses"] += cell["deadline"]["miss"]
        row["sheds"] += len(cell["shed_tasks"])
        row["replacements"] += cell["replacements"]
        row["energy_j"] += cell["energy_j"]
    body = {
        "schema": SCHEMA,
        "matrix": matrix.to_dict(),
        "cells": cells,
        "summary": {name: summary[name] for name in sorted(summary)},
    }
    report = dict(body)
    report["digest"] = content_digest(body)
    return report


def report_json(report: dict) -> str:
    """The report as canonical (byte-stable) JSON, newline-terminated."""
    return canonical_json(report) + "\n"


def render(report: dict) -> str:
    """A printable per-policy summary table."""
    lines = [
        f"policy zoo: {len(report['cells'])} cells "
        f"({report['digest'][:12]})",
        f"  {'policy':<14} {'cells':>5} {'survived':>8} {'misses':>6} "
        f"{'sheds':>5} {'repl':>5} {'energy (J)':>12}",
    ]
    for name, row in report["summary"].items():
        lines.append(
            f"  {name:<14} {row['cells']:>5} {row['survived']:>8} "
            f"{row['deadline_misses']:>6} {row['sheds']:>5} "
            f"{row['replacements']:>5} {row['energy_j']:>12.6f}"
        )
    return "\n".join(lines)
