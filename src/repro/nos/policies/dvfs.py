"""DVFS policies: demand-driven and measurement-driven frequency steps.

The demand-driven pair follow the classic real-time DVFS taxonomy:

* :class:`CycleConservingDVFS` (CC-EDF) budgets each task at its WCET
  and rescales on arrivals/completions to the worst per-core utilisation
  ``Σ wcet_cycles / period_us`` (cycles per µs *is* MHz, which keeps the
  arithmetic exact and integer-friendly).
* :class:`LookAheadDVFS` (LA-EDF) is the aggressive variant: it uses
  *remaining* cycles and actual deadlines, running at the maximum work
  density over all deadline prefixes — slower now, catching up later.

:class:`ThresholdDVFS` closes the paper's measure-and-adapt loop
instead: it arms a :class:`~repro.obs.watch.PowerWatchpoint` over the
measurement daughter-board and steps the ladder down/up when the
windowed power mean crosses a budget — frequency decisions driven by
*measured* power through the existing watchpoint callback path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.nos.policies.base import DVFSPolicy, PolicyError

if TYPE_CHECKING:
    from repro.core.nos import NanoOS, TaskHandle


def _live_rt_tasks(nos: "NanoOS"):
    """Unfinished, unshed tasks that carry a WCET budget.

    A finishing task gets its ``finish_time_ps`` stamped *before* the
    policy callback runs (its generator is still unwinding, so ``done``
    has not flipped yet) — treat it as retired, or completions would
    never release their demand.
    """
    return (
        t for t in nos.tasks
        if not t.done and not t.shed and t.finish_time_ps is None
        and t.wcet_cycles is not None
    )


class CycleConservingDVFS(DVFSPolicy):
    """CC-EDF: rescale to worst per-core WCET utilisation on each event."""

    name = "ccedf"

    def attach(self, nos):
        self._rescale(nos)

    def on_task_submitted(self, nos, handle):
        self._rescale(nos)

    def on_task_finished(self, nos, handle):
        self._rescale(nos)

    def _rescale(self, nos):
        demand_mhz: dict[int, float] = {}
        for task in _live_rt_tasks(nos):
            horizon_us = task.period_us or task.deadline_us
            if not horizon_us:
                continue
            node = task.core.node_id
            demand_mhz[node] = (
                demand_mhz.get(node, 0.0) + task.wcet_cycles / horizon_us
            )
        required = max(demand_mhz.values(), default=self.ladder_mhz[0])
        self._apply(nos, required)


class LookAheadDVFS(DVFSPolicy):
    """LA-EDF: run at the peak density of remaining work over deadlines."""

    name = "laedf"

    def attach(self, nos):
        self._rescale(nos)

    def on_task_submitted(self, nos, handle):
        self._rescale(nos)

    def on_task_finished(self, nos, handle):
        self._rescale(nos)

    @staticmethod
    def _remaining_cycles(task) -> int:
        done_cycles = 0
        if task.thread is not None:
            # One issue slot per 4 cycles: executed instructions retire
            # 4 clock cycles of the WCET budget each.
            done_cycles = 4 * task.thread.instructions_executed
        return max(0, task.wcet_cycles - done_cycles)

    def _rescale(self, nos):
        now_ps = nos.system.sim.now
        per_core: dict[int, list] = {}
        for task in _live_rt_tasks(nos):
            if task.deadline_ps is None:
                continue
            per_core.setdefault(task.core.node_id, []).append(task)
        required = self.ladder_mhz[0]
        for node in sorted(per_core):
            tasks = sorted(
                per_core[node], key=lambda t: (t.deadline_ps, t.task_id)
            )
            work_cycles = 0
            for task in tasks:
                work_cycles += self._remaining_cycles(task)
                slack_us = (task.deadline_ps - now_ps) / 1e6
                if slack_us <= 0.0:
                    # Past due with work left: flat out is all we have.
                    required = max(required, self.ladder_mhz[-1])
                else:
                    required = max(required, work_cycles / slack_us)
        self._apply(nos, required)


class ThresholdDVFS(DVFSPolicy):
    """Measured-power governor: a PowerWatchpoint drives the ladder.

    ``attach`` arms a watchpoint over the whole measurement board (all
    rails summed); an ``above`` firing steps one rung down, a ``below``
    firing (power under ``budget_mw * headroom``) steps back up.
    """

    name = "threshold"

    def __init__(
        self,
        budget_mw: float = 120.0,
        headroom: float = 0.85,
        duration_us: float = 400.0,
        rate_hz: float = 250_000.0,
        window_samples: int = 4,
        ladder_mhz=None,
    ):
        super().__init__(ladder_mhz)
        if budget_mw <= 0:
            raise PolicyError("budget must be positive")
        self.budget_mw = budget_mw
        self.headroom = headroom
        self.duration_us = duration_us
        self.rate_hz = rate_hz
        self.window_samples = window_samples
        self._level = len(self.ladder_mhz) - 1
        self.watchpoint = None

    def attach(self, nos):
        from repro.obs.watch import PowerWatchpoint

        self._nos = nos
        board = nos.system.measurement_board(0, 0)
        self.watchpoint = PowerWatchpoint(
            board,
            channel=None,
            rate_hz=self.rate_hz,
            window_samples=self.window_samples,
            above_mw=self.budget_mw,
            below_mw=self.budget_mw * self.headroom,
            on_fire=self._on_fire,
            name="dvfs-threshold",
        )
        self.watchpoint.arm(self.duration_us * 1e-6)
        self._apply(nos, self.ladder_mhz[self._level])

    def _on_fire(self, watchpoint, event) -> None:
        if event.rule == "above" and self._level > 0:
            self._level -= 1
        elif event.rule == "below" and self._level < len(self.ladder_mhz) - 1:
            self._level += 1
        else:
            return
        self._apply(self._nos, self.ladder_mhz[self._level])

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["budget_mw"] = self.budget_mw
        state["level"] = self._level
        state["firings"] = (
            len(self.watchpoint.firings) if self.watchpoint is not None else 0
        )
        return state
