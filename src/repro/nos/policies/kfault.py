"""FEST-style k-fault-tolerant placement with graceful degradation.

The policy guarantees that any ≤ k core deaths are absorbed without a
deadline miss: at submission every task reserves backup slots on k
cores disjoint from its primary, so when the primary dies the orphan
restarts on a pre-reserved survivor instead of competing for whatever
is least loaded at crash time.  Reservations count toward the load a
core appears to carry, keeping backups spread and genuinely spare.

Beyond k the guarantee is gone and the policy degrades instead of
raising: the dead core's orphans are shed lowest-criticality-first
(ties broken on task id), producing a deterministic shed ledger the
runtime records — the run completes with reduced service rather than
an unhandled :class:`ResourceError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.nos.policies.base import PolicyError, SchedulerPolicy

if TYPE_CHECKING:
    from repro.core.nos import NanoOS, TaskHandle
    from repro.xs1.core import XCore


class KFaultPolicy(SchedulerPolicy):
    """Reserve backup slots on k disjoint cores per task; shed beyond k."""

    name = "kfault"

    def __init__(self, k: int = 1):
        if k < 0:
            raise PolicyError(f"k must be non-negative, got {k}")
        self.k = k
        #: task_id -> remaining backup node ids, nearest-ranked first.
        self.backups: dict[int, list[int]] = {}
        #: node_id -> live backup reservations on that core.
        self.reserved: dict[int, int] = {}

    # -- placement ----------------------------------------------------------

    def _weight(self, nos, core) -> tuple:
        """Load including reservations, so backups stay genuinely spare."""
        return (
            nos._load(core) + self.reserved.get(core.node_id, 0),
            core.node_id,
        )

    def choose(self, nos, candidates, handle=None):
        return min(candidates, key=lambda c: self._weight(nos, c))

    def on_submit(self, nos, handle):
        """Reserve backup slots on k healthy cores disjoint from primary."""
        taken = {handle.core.node_id}
        backups: list[int] = []
        for _ in range(self.k):
            pool = [
                c for c in nos.system.cores
                if not c.failed and c.node_id not in taken
            ]
            if not pool:
                break
            best = min(pool, key=lambda c: self._weight(nos, c))
            backups.append(best.node_id)
            taken.add(best.node_id)
            self.reserved[best.node_id] = (
                self.reserved.get(best.node_id, 0) + 1
            )
        self.backups[handle.task_id] = backups

    # -- healing ------------------------------------------------------------

    def replacement(self, nos, candidates, handle):
        """Restart the orphan on its first surviving reserved backup."""
        by_node = {c.node_id: c for c in candidates}
        remaining = self.backups.get(handle.task_id, [])
        for index, node_id in enumerate(remaining):
            core = by_node.get(node_id)
            if core is None:
                continue
            # Consume the reservation: the orphan now *occupies* the slot.
            del remaining[index]
            count = self.reserved.get(node_id, 0) - 1
            if count > 0:
                self.reserved[node_id] = count
            else:
                self.reserved.pop(node_id, None)
            return core
        # Backups all dead or saturated: fall back to spare capacity.
        return self.choose(nos, candidates, handle)

    # -- degradation --------------------------------------------------------

    def wants_degrade(self, nos) -> bool:
        """Beyond k healed failures the guarantee no longer holds."""
        return len(nos.failed_cores) >= self.k

    def degrade(self, nos, core, orphans):
        """Shed the dead core's orphans, lowest criticality first."""
        return sorted(orphans, key=lambda t: (t.criticality, t.task_id))

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "name": self.name,
            "k": self.k,
            "backups": {
                str(task_id): list(nodes)
                for task_id, nodes in sorted(self.backups.items())
            },
            "reserved": {
                str(node_id): count
                for node_id, count in sorted(self.reserved.items())
            },
        }
