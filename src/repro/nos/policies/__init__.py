"""The policy zoo: named scheduler/DVFS bundles for NanoOS.

Each zoo entry names a (scheduler, DVFS) pair the ablation harness,
the ``repro policies`` CLI and the tests all build the same way::

    scheduler, dvfs = build_policy("ccedf", k=1)
    nos = NanoOS(system, policy=scheduler, dvfs=dvfs)

``k`` only matters to the ``kfault`` bundle (backup slots per task);
other bundles express their tolerance through ``NanoOS``'s plain
``fault_budget`` instead.
"""

from __future__ import annotations

from repro.nos.policies.base import (
    NO_DEADLINE_PS,
    DVFSPolicy,
    PolicyError,
    SchedulerPolicy,
)
from repro.nos.policies.dvfs import (
    CycleConservingDVFS,
    LookAheadDVFS,
    ThresholdDVFS,
)
from repro.nos.policies.kfault import KFaultPolicy
from repro.nos.policies.scheduling import (
    EDFPolicy,
    LeastLoadedPolicy,
    RMPolicy,
)

__all__ = [
    "NO_DEADLINE_PS",
    "POLICY_ZOO",
    "CycleConservingDVFS",
    "DVFSPolicy",
    "EDFPolicy",
    "KFaultPolicy",
    "LeastLoadedPolicy",
    "LookAheadDVFS",
    "PolicyError",
    "RMPolicy",
    "SchedulerPolicy",
    "ThresholdDVFS",
    "build_policy",
]

#: zoo name -> (scheduler factory, dvfs factory | None).  Factories take
#: the bundle's ``k`` so signatures stay uniform; most ignore it.
POLICY_ZOO = {
    "least_loaded": (lambda k: LeastLoadedPolicy(), None),
    "edf": (lambda k: EDFPolicy(), None),
    "rm": (lambda k: RMPolicy(), None),
    "ccedf": (lambda k: EDFPolicy(), lambda k: CycleConservingDVFS()),
    "laedf": (lambda k: EDFPolicy(), lambda k: LookAheadDVFS()),
    "kfault": (lambda k: KFaultPolicy(k=k), None),
    "threshold": (lambda k: LeastLoadedPolicy(), lambda k: ThresholdDVFS()),
}


def build_policy(
    name: str, k: int = 1
) -> tuple[SchedulerPolicy, DVFSPolicy | None]:
    """Build the named zoo bundle: ``(scheduler, dvfs-or-None)``."""
    entry = POLICY_ZOO.get(name)
    if entry is None:
        known = ", ".join(sorted(POLICY_ZOO))
        raise PolicyError(f"unknown policy {name!r}; known: {known}")
    scheduler_factory, dvfs_factory = entry
    scheduler = scheduler_factory(k)
    dvfs = dvfs_factory(k) if dvfs_factory is not None else None
    return scheduler, dvfs
