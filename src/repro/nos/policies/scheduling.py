"""Placement policies: least-loaded (the classic), EDF- and RM-aware.

All three place on spare thread capacity; they differ in how they keep
urgent work unobstructed.  The XS1-L pipeline issues one instruction
per thread per 4 cycles, so up to four runnable threads time-slice for
free — but a fifth slows everyone on the core.  EDF/RM placement
therefore avoids stacking new work onto cores already hosting the most
urgent (earliest-deadline / shortest-period) tasks, the placement-time
analogue of the classic uniprocessor priority orders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.nos.policies.base import NO_DEADLINE_PS, SchedulerPolicy

if TYPE_CHECKING:
    from repro.core.nos import NanoOS, TaskHandle
    from repro.xs1.core import XCore


def _live_on(nos: "NanoOS", core: "XCore"):
    """Tasks currently placed on ``core`` that still have work to do."""
    return (
        t for t in nos.tasks
        if t.core is core and not t.done and not t.shed
    )


class LeastLoadedPolicy(SchedulerPolicy):
    """The original NanoOS behaviour: fewest threads, node id breaks ties."""

    name = "least_loaded"

    def choose(self, nos, candidates, handle=None):
        return min(candidates, key=lambda c: (nos._load(c), c.node_id))


class EDFPolicy(SchedulerPolicy):
    """Earliest-deadline-first placement.

    Load still dominates (a free issue slot beats everything); among
    equally loaded cores, prefer the one whose most urgent resident
    task has the *latest* deadline, so tight-deadline tasks keep their
    core's issue slots to themselves.
    """

    name = "edf"

    def _urgency_ps(self, nos, core) -> int:
        return min(
            (
                t.deadline_ps if t.deadline_ps is not None else NO_DEADLINE_PS
                for t in _live_on(nos, core)
            ),
            default=NO_DEADLINE_PS,
        )

    def choose(self, nos, candidates, handle=None):
        return min(
            candidates,
            key=lambda c: (nos._load(c), -self._urgency_ps(nos, c), c.node_id),
        )


class RMPolicy(EDFPolicy):
    """Rate-monotonic placement: shortest period = highest priority.

    Same shape as EDF but the urgency key is the resident tasks'
    minimum period — the static-priority half of the classic pair.
    """

    name = "rm"

    def _urgency_ps(self, nos, core) -> int:
        from repro.sim import us

        return min(
            (
                us(t.period_us) if t.period_us is not None else NO_DEADLINE_PS
                for t in _live_on(nos, core)
            ),
            default=NO_DEADLINE_PS,
        )
