"""Policy interfaces: how NanoOS delegates placement and frequency.

A :class:`SchedulerPolicy` answers the runtime's three questions —
*where does a new task go*, *where does an orphan of a dead core go*,
and *when healing is no longer possible, what do we drop* — against a
candidate list the runtime has already filtered to healthy cores with
a free hardware thread.  A :class:`DVFSPolicy` listens to the task
lifecycle and steps every core's (frequency, voltage) operating point
along the ladder of :mod:`repro.energy.dvfs`.

Policies must be deterministic: same submissions, same choices.  All
tie-breaks bottom out on ``core.node_id`` / ``task_id``, never on
iteration order of a set or dict built from object identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # circular at runtime: core.nos imports this package
    from repro.core.nos import NanoOS, TaskHandle
    from repro.xs1.core import XCore

#: Absolute-deadline sentinel for tasks with no deadline: sorts after
#: every real deadline (2^62 ps ~ 53 days of simulated time).
NO_DEADLINE_PS = 1 << 62


class PolicyError(Exception):
    """A policy was asked something it cannot answer."""


class SchedulerPolicy:
    """Base scheduler policy: subclasses override the hooks they need."""

    #: Registry name; also what ``snapshot_state()`` reports.
    name = "base"

    def on_submit(self, nos: "NanoOS", handle: "TaskHandle") -> None:
        """Called after ``handle`` is placed (reserve backups, etc.)."""

    def choose(
        self,
        nos: "NanoOS",
        candidates: Sequence["XCore"],
        handle: "TaskHandle | None" = None,
    ) -> "XCore":
        """Pick the core for a new task.

        ``candidates`` is non-empty, healthy, and has spare thread
        capacity; the runtime raises before consulting the policy
        otherwise.
        """
        raise NotImplementedError

    def replacement(
        self,
        nos: "NanoOS",
        candidates: Sequence["XCore"],
        handle: "TaskHandle",
    ) -> "XCore":
        """Pick the core an orphan restarts on (default: same as choose)."""
        return self.choose(nos, candidates, handle)

    def wants_degrade(self, nos: "NanoOS") -> bool:
        """True when the next core death should shed work, not heal."""
        return False

    def degrade(
        self,
        nos: "NanoOS",
        core: "XCore",
        orphans: Sequence["TaskHandle"],
    ) -> "list[TaskHandle] | None":
        """Tasks to shed (in shed order) when healing is off the table.

        Returning ``None`` tells the runtime to raise its fault-budget
        error instead — the pre-policy behaviour.
        """
        return None

    def snapshot_state(self) -> dict:
        """Canonical policy state for checkpoint verification."""
        return {"name": self.name}


class DVFSPolicy:
    """Base DVFS policy: tracks the machine-wide operating point.

    Concrete policies compute a required frequency on lifecycle events
    and call :meth:`_apply`, which clamps to the ladder, programs every
    healthy core through :meth:`XCore.set_dvfs_operating_point` (the
    §III.B minimum voltage for that frequency), and records the step.
    """

    name = "none"

    def __init__(self, ladder_mhz: Sequence[float] | None = None):
        from repro.energy.dvfs import LADDER_MHZ

        self.ladder_mhz = tuple(ladder_mhz or LADDER_MHZ)
        if list(self.ladder_mhz) != sorted(self.ladder_mhz):
            raise PolicyError("frequency ladder must be ascending")
        self.steps = 0
        #: One row per applied step: ``{"time_ps", "f_mhz"}``.
        self.step_log: list[dict] = []
        self.current_mhz: float | None = None

    def attach(self, nos: "NanoOS") -> None:
        """Called once when the runtime adopts this policy."""

    def on_task_submitted(self, nos: "NanoOS", handle: "TaskHandle") -> None:
        """A task entered the system."""

    def on_task_finished(self, nos: "NanoOS", handle: "TaskHandle") -> None:
        """A task ran to completion."""

    def _apply(self, nos: "NanoOS", f_mhz: float) -> None:
        """Step every healthy core to ``f_mhz`` (no-op if already there)."""
        from repro.energy.dvfs import dvfs_operating_point, ladder_clamp

        f_mhz = ladder_clamp(f_mhz, self.ladder_mhz)
        if self.current_mhz == f_mhz:
            return
        frequency, voltage = dvfs_operating_point(f_mhz)
        for core in nos.system.cores:
            if not core.failed:
                core.set_dvfs_operating_point(frequency, voltage)
        self.current_mhz = f_mhz
        self.steps += 1
        self.step_log.append({"time_ps": nos.system.sim.now, "f_mhz": f_mhz})

    def snapshot_state(self) -> dict:
        """Canonical policy state for checkpoint verification."""
        return {
            "name": self.name,
            "steps": self.steps,
            "current_mhz": self.current_mhz,
            "step_log": [dict(row) for row in self.step_log],
        }
