"""nOS runtime namespace: the task runtime plus its pluggable policies.

The runtime itself lives in :mod:`repro.core.nos` (it predates this
package); :mod:`repro.nos.policies` adds the pluggable scheduler/DVFS
policy layer.  This package re-exports both so user code can write::

    from repro.nos import NanoOS, TaskHandle
    from repro.nos.policies import build_policy

Re-exports of the runtime classes are lazy (module ``__getattr__``)
because :mod:`repro.core.nos` imports the policy layer at module scope —
an eager import here would be circular.
"""

from __future__ import annotations

__all__ = ["MapJob", "NanoOS", "TaskHandle"]


def __getattr__(name: str):
    if name in __all__:
        from repro.core import nos as _runtime

        return getattr(_runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
