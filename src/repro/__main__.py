"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``   — system inventory of a configured machine;
* ``tables`` — print the paper's derived tables (I, II, III, Fig. 2);
* ``demo``   — run the quickstart workload and print the energy report
  (``--json`` for machine-readable output, ``--seed`` to vary the
  workload deterministically);
* ``stats``  — run the demo workload and print the metrics snapshot
  plus a kernel profile (events by source, sim/wall ratio);
* ``trace``  — run the demo workload with machine-wide tracing and
  export it as Chrome trace-event JSON (Perfetto/chrome://tracing)
  or JSONL;
* ``faults`` — run a reliable word stream under a fault campaign
  (default: a flaky link on the stream's route; ``--spec FILE`` for a
  JSON campaign) and print the campaign report (``--metrics-out`` dumps
  the final metrics snapshot as JSON); ``--checkpoint-every N`` captures
  checkpoint bundles as it runs and ``--kill-after-events N`` simulates
  a crash (exit code 75) that ``resume`` can continue from;
* ``netscope`` — run a workload under the fabric observatory and
  export its views: the spatial heat map (canonical JSON + ``--ascii``
  overlay), Chrome counter tracks for Perfetto, and the slice-cut
  report; with ``--checkpoint-dir`` a non-empty store is resumed, and
  the resumed run's exports are byte-identical to an uninterrupted
  run's (``topology --heat`` draws the same overlay for the demo
  workload);
* ``checkpoint`` — run a registered workload partway and write a
  versioned, checksummed checkpoint bundle;
* ``resume`` — rebuild a run from a bundle (or the newest bundle in a
  ``--dir`` store), replay and verify it, and drive it to completion —
  byte-identically to a run that was never interrupted;
* ``spans`` — run a span-instrumented three-stage pipeline and export
  the causal span tree (span JSONL, or a Chrome trace with cross-core
  flow arrows);
* ``energy-report`` — run the same pipeline and print the per-span
  energy attribution (``--folded`` writes flame-graph folded stacks);
* ``farm`` — the campaign farm: ``submit`` expands a matrix spec
  (sweep over topology x frequency x seeds) into content-addressed
  jobs, ``run`` fans them out across worker processes with per-job
  checkpoints and heartbeats (``--preempt JOB@N`` kills an attempt
  mid-run; it resumes byte-identically on another worker), ``status``
  shows the live heartbeat-fed progress view, and ``report`` prints
  the aggregated campaign (unchanged configs are served from the
  result cache instead of re-simulating);
* ``perf`` — the kernel performance observatory: ``record`` appends
  bench-profile rows to the append-only perf-history ledger,
  ``compare`` gates current numbers against the ledger's rolling
  baselines (non-zero exit on regression), ``report`` prints the
  per-bench trajectory.

``demo``, ``faults`` and ``resume`` accept ``--heartbeat-every N``
(with ``--heartbeat-out PATH``) to stream JSONL progress snapshots
every N kernel events — byte-identical across same-seed runs except
for the wall-clock fields.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def cmd_info(args: argparse.Namespace) -> int:
    from repro import SwallowSystem
    from repro.board import slice_power
    from repro.analysis import system_gips

    system = SwallowSystem(slices_x=args.slices_x, slices_y=args.slices_y)
    topology = system.topology
    print(f"Swallow machine: {topology.slices_x} x {topology.slices_y} slices")
    print(f"  cores:            {system.num_cores}")
    print(f"  packages:         {len(topology.packages)}")
    print(f"  network links:    {len(topology.fabric.links) // 2} full-duplex")
    print(f"  peak throughput:  {system_gips(system.num_cores):.1f} GIPS")
    per_slice = slice_power().total_w
    print(f"  max power:        {per_slice * topology.num_slices:.1f} W "
          f"({per_slice:.2f} W/slice)")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis import TABLE_II, TABLE_III, qualifying_processors
    from repro.energy import node_power_breakdown, table_i

    print("Table I - per-bit link energies")
    for row in table_i():
        print(f"  {row.link_type:<22} {row.data_rate_mbit:>7.1f} Mbit/s  "
              f"{row.max_power_mw:>7.1f} mW  {row.energy_per_bit_pj:>9.1f} pJ/bit")
    print("\nTable II - candidate processors (meets-all-requirements)")
    qualifiers = {p.name for p in qualifying_processors()}
    for p in TABLE_II:
        verdict = "YES" if p.name in qualifiers else "no"
        print(f"  {p.name:<28} {verdict}")
    print("\nTable III - many-core survey (uW/MHz)")
    for s in TABLE_III:
        low, high = s.computed_uw_per_mhz()
        value = f"{low:.0f}" if low == high else f"{low:.0f}-{high:.0f}"
        print(f"  {s.name:<12} {s.isa:<10} {value:>12}")
    print("\nFig. 2 - node power breakdown")
    breakdown = node_power_breakdown()
    for name, share in breakdown.shares().items():
        print(f"  {name.replace('_', ' '):<24} {share:>6.1%}")
    return 0


def cmd_isa(args: argparse.Namespace) -> int:
    from repro.xs1 import INSTRUCTION_SET

    print(f"{len(INSTRUCTION_SET)} instructions in the XS1 subset\n")
    by_class: dict[str, list] = {}
    for spec in INSTRUCTION_SET.values():
        by_class.setdefault(spec.energy_class.value, []).append(spec)
    for energy_class in sorted(by_class):
        print(f"[{energy_class}]")
        for spec in sorted(by_class[energy_class], key=lambda s: s.mnemonic):
            operands = " ".join(kind.value for kind in spec.operands)
            print(f"  {spec.mnemonic:<10} {operands:<14} {spec.description}")
        print()
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures import export_csv

    written = export_csv(args.out, args.names or None)
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_topology(args: argparse.Namespace) -> int:
    from repro.network.visualize import (
        render_heat,
        render_summary,
        render_topology,
    )

    if args.heat:
        # Heat wants traffic: run the demo workload on a full system
        # with the fabric observatory attached, then overlay its map.
        from repro import SwallowSystem

        system = SwallowSystem(slices_x=args.slices_x, slices_y=args.slices_y)
        scope = system.netscope(window_ps=int(args.window_us * 1e6))
        _demo_workload(system, seed=args.seed)
        system.run()
        print(render_heat(system.topology, scope.heatmap()))
        print()
        print(render_summary(system.topology))
        return 0
    from repro.network.topology import SwallowTopology
    from repro.sim import Simulator

    topology = SwallowTopology(
        Simulator(), slices_x=args.slices_x, slices_y=args.slices_y
    )
    print(render_topology(topology))
    print()
    print(render_summary(topology))
    return 0


def _demo_workload(system, seed: int | None = None) -> list[int]:
    """Load the quickstart workload onto ``system``; returns the RX list.

    ``seed`` deterministically varies the workload (loop counts, number
    of streamed words, payload values) so scripted runs can explore more
    than one schedule; ``None`` keeps the historical fixed demo.
    """
    import random

    from repro import Compute, RecvWord, SendWord, assemble

    if seed is None:
        loop_count, words, payload = 1000, 4, lambda i: i * i
    else:
        rng = random.Random(seed)
        loop_count = rng.randrange(200, 2000)
        words = rng.randrange(2, 9)
        values = [rng.randrange(0, 1 << 16) for _ in range(words)]
        payload = lambda i: values[i]
    system.spawn(system.core(0), assemble(f"""
        ldc r0, {loop_count}
    loop:
        subi r0, r0, 1
        bt r0, loop
        freet
    """))
    channel = system.channel(system.core(1), system.core(10))
    received: list[int] = []

    def producer():
        for i in range(words):
            yield Compute(100)
            yield SendWord(channel.a, payload(i))

    def consumer():
        for _ in range(words):
            received.append((yield RecvWord(channel.b)))

    system.spawn_task(system.core(1), producer())
    system.spawn_task(system.core(10), consumer())
    return received


def _heartbeat(args: argparse.Namespace, metrics=None):
    """A RunHeartbeat from the shared --heartbeat-* flags (or None)."""
    from repro.obs.perf import RunHeartbeat

    if args.heartbeat_every is None:
        return None
    return RunHeartbeat(args.heartbeat_every, out=args.heartbeat_out,
                        metrics=metrics)


def _heartbeat_summary(args: argparse.Namespace, heartbeat) -> None:
    """The shared post-run heartbeat summary line.

    One line, one place: every command that takes the ``--heartbeat-*``
    flags reports the stream the same way (suppressed under ``--json``,
    where stdout is machine-readable).
    """
    if heartbeat is None or not args.heartbeat_out:
        return
    if getattr(args, "json", False):
        return
    print(f"wrote {heartbeat.beats} heartbeats to {args.heartbeat_out}")


def _add_heartbeat_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--heartbeat-every", type=_positive_int,
                        default=None, metavar="N",
                        help="emit a JSONL progress snapshot every N "
                             "kernel events")
    parser.add_argument("--heartbeat-out", default=None, metavar="PATH",
                        help="heartbeat JSONL output file "
                             "(default: stderr summary only)")


def cmd_demo(args: argparse.Namespace) -> int:
    from repro import SwallowSystem

    system = SwallowSystem()
    received = _demo_workload(system, seed=args.seed)
    heartbeat = _heartbeat(args, metrics=system.metrics)
    if heartbeat is not None:
        heartbeat.drive(system.sim)
        _heartbeat_summary(args, heartbeat)
    else:
        system.run()
    report = system.energy_report()
    if args.json:
        document = {
            "seed": args.seed,
            "received": received,
            "report": report.to_dict(),
        }
        print(json.dumps(document, sort_keys=True))
        return 0
    print(f"streamed words: {received}")
    print(report.render())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro import SwallowSystem

    system = SwallowSystem(slices_x=args.slices_x, slices_y=args.slices_y)
    _demo_workload(system, seed=args.seed)
    with system.profile(wall_sample_every=args.sample_every) as profile:
        system.run()
    snapshot = system.metrics_snapshot()
    if args.folded:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(profile.folded())
    if args.meta_trace:
        from repro.obs import write_profile_chrome_trace

        write_profile_chrome_trace(profile, args.meta_trace)
    if args.json:
        print(json.dumps(
            {"profile": profile.to_dict(), "metrics": snapshot.as_dict()},
            sort_keys=True,
        ))
        return 0
    print(profile.render())
    print()
    print(snapshot.render(prefix=args.prefix))
    if args.folded:
        print(f"wrote folded flame stacks to {args.folded}")
    if args.meta_trace:
        print(f"wrote simulator meta-trace to {args.meta_trace}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import SwallowSystem
    from repro.obs import write_chrome_trace, write_jsonl

    system = SwallowSystem(slices_x=args.slices_x, slices_y=args.slices_y)
    kinds = None
    if args.kinds:
        kinds = {k for arg in args.kinds for k in arg.split(",") if k}
    recorder = system.trace(kinds=kinds, capacity=args.capacity)
    _demo_workload(system, seed=args.seed)
    system.run()
    if args.format == "chrome":
        write_chrome_trace(recorder.records, args.out)
    else:
        write_jsonl(recorder.records, args.out)
    print(f"wrote {len(recorder)} records to {args.out} "
          f"({args.format}); recorder {recorder!r}")
    return 0


#: Exit code of a run interrupted by ``--kill-after-events`` (EX_TEMPFAIL:
#: the run is resumable from its checkpoint store, not failed).
EXIT_KILLED = 75


def _stream_params(args: argparse.Namespace) -> dict:
    """The ``faults_stream`` workload params encoded by the CLI flags."""
    params: dict = {
        "slices_x": args.slices_x,
        "slices_y": args.slices_y,
        "words": args.words,
        "drop_rate": args.drop_rate,
    }
    if args.seed is not None:
        params["seed"] = args.seed
    if args.spec:
        with open(args.spec) as handle:
            spec = json.load(handle)
        params["faults"] = spec.get("faults", [])
        params["heal"] = spec.get("heal", True)
        if args.seed is None and "seed" in spec:
            params["seed"] = spec["seed"]
    return params


def _checkpoint_run(args: argparse.Namespace, workload: str, params: dict):
    """Build a :class:`ResumableRun` from the shared checkpoint flags."""
    from repro.checkpoint import CheckpointPolicy, CheckpointStore, ResumableRun

    policy = None
    if args.checkpoint_every is not None:
        policy = CheckpointPolicy(
            every_events=args.checkpoint_every, retain=args.retain
        )
    store = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir, retain=args.retain)
    return ResumableRun(workload, params, policy=policy, store=store)


def cmd_faults(args: argparse.Namespace) -> int:
    params = _stream_params(args)
    run = _checkpoint_run(args, "faults_stream", params)
    heartbeat = _heartbeat(args, metrics=run.context.system.metrics)
    recovery = run.run(kill_after_events=args.kill_after_events,
                       heartbeat=heartbeat)
    context = run.context
    report = context.campaign.report()
    if args.metrics_out:
        snapshot = context.system.metrics_snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(snapshot.as_dict(), sort_keys=True))
        print(f"wrote metrics snapshot to {args.metrics_out}")
    _heartbeat_summary(args, heartbeat)
    delivered_ok = context.received == context.expected
    if args.json:
        document = {"delivered_ok": delivered_ok, "report": report.to_dict()}
        if args.checkpoint_every is not None or run.killed:
            document["recovery"] = recovery.to_dict()
        print(json.dumps(document, sort_keys=True))
    else:
        print(report.render())
        print(f"stream: {len(context.received)}/{args.words} words "
              f"delivered, {'intact' if delivered_ok else 'CORRUPTED'}")
        if run.killed:
            print(f"killed after {args.kill_after_events} events; resume "
                  f"with: python -m repro resume --dir {args.checkpoint_dir}")
    if run.killed:
        return EXIT_KILLED
    return 0 if delivered_ok else 1


def cmd_netscope(args: argparse.Namespace) -> int:
    """Run a workload under the fabric observatory; export its views.

    Resumable: with ``--checkpoint-dir``, a store that already holds
    bundles is resumed instead of started fresh, and the exported
    heat map is byte-identical to an uninterrupted run's.
    """
    from repro.checkpoint import CheckpointStore, ResumableRun

    params = _stream_params(args)
    params["netscope"] = True
    params["netscope_window_us"] = args.window_us
    resumed_from = None
    store = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir, retain=args.retain)
        if store.paths():
            resumed_from = str(store.paths()[-1])
    if resumed_from is not None:
        from repro.checkpoint import CheckpointPolicy

        policy = None
        if args.checkpoint_every is not None:
            policy = CheckpointPolicy(
                every_events=args.checkpoint_every, retain=args.retain
            )
        run = ResumableRun.resume(store.latest(), policy=policy, store=store)
    else:
        run = _checkpoint_run(args, args.workload, params)
    run.run(kill_after_events=args.kill_after_events)
    context = run.context
    scope = context.system.topology.fabric.netscope
    heatmap = scope.heatmap()
    if args.heatmap_out:
        with open(args.heatmap_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(heatmap, sort_keys=True,
                                    separators=(",", ":")))
    if args.counters_out:
        document = {"displayTimeUnit": "ns",
                    "traceEvents": scope.counter_events()}
        with open(args.counters_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True,
                                    separators=(",", ":")))
    if args.slice_cut_out:
        with open(args.slice_cut_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(scope.slice_cut(), sort_keys=True,
                                    separators=(",", ":")))
    if args.json:
        print(json.dumps({"heatmap": heatmap}, sort_keys=True))
        if run.killed:
            return EXIT_KILLED
        return 0
    if resumed_from is not None:
        print(f"resumed from {resumed_from}")
    if args.ascii:
        from repro.network.visualize import render_heat

        print(render_heat(context.system.topology, heatmap))
        print()
    blocked = heatmap["blocked"]
    print(f"netscope: {heatmap['windows']} windows of "
          f"{heatmap['window_ps'] / 1e6:.3f} us over "
          f"{heatmap['elapsed_ps'] / 1e6:.3f} us")
    print(f"  blocked total     {blocked['total_ps'] / 1e6:.3f} us")
    for cause in sorted(blocked["by_cause"]):
        ps = blocked["by_cause"][cause]
        n = blocked["intervals"][cause]
        print(f"    {cause:<14} {ps / 1e6:>10.3f} us  ({n} interval(s))")
    cut = heatmap["slice_cut"]
    if cut["boundaries"]:
        print(f"  slice-cut min gap {cut['min_gap_ps']} ps over "
              f"{len(cut['boundaries'])} boundary(ies)")
    for flag, path in (("heat map", args.heatmap_out),
                       ("counter tracks", args.counters_out),
                       ("slice-cut report", args.slice_cut_out)):
        if path:
            print(f"wrote {flag} to {path}")
    if run.killed:
        print(f"killed after {args.kill_after_events} events; rerun the "
              f"same command to resume from {args.checkpoint_dir}")
        return EXIT_KILLED
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Run a registered workload partway and write a checkpoint bundle."""
    from repro.checkpoint import build_workload

    params = json.loads(args.params) if args.params else {}
    context = build_workload(args.workload, params)
    sim = context.system.sim
    if args.after_events is not None:
        sim.run(max_events=args.after_events)
    else:
        sim.run()
    snapshot = context.capture(
        setup={"workload": args.workload, "params": params}
    )
    snapshot.save(args.out)
    print(f"wrote checkpoint bundle to {args.out}")
    print(f"  workload          {args.workload}")
    print(f"  schema            {snapshot.schema}")
    print(f"  events processed  {snapshot.events_processed}")
    print(f"  sim time          {snapshot.time_ps / 1e6:.3f} us")
    print(f"  digest            {snapshot.digest}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Resume a checkpointed run and drive it to completion."""
    from repro.checkpoint import (
        CheckpointPolicy,
        CheckpointStore,
        ResumableRun,
        Snapshot,
    )

    if args.bundle:
        snapshot = Snapshot.load(args.bundle)
        origin = args.bundle
    elif args.dir:
        store = CheckpointStore(args.dir, retain=args.retain)
        snapshot = store.latest()
        origin = str(store.paths()[-1])
    else:
        print("resume: need a bundle path or --dir", file=sys.stderr)
        return 2
    policy = None
    if args.checkpoint_every is not None:
        policy = CheckpointPolicy(
            every_events=args.checkpoint_every, retain=args.retain
        )
    run = ResumableRun.resume(snapshot, policy=policy)
    heartbeat = _heartbeat(args, metrics=run.context.system.metrics)
    recovery = run.run(heartbeat=heartbeat)
    _heartbeat_summary(args, heartbeat)
    document = run.final_report()
    document["recovery"] = recovery.to_dict()
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True))
    if args.json:
        print(json.dumps(document, sort_keys=True))
        return 0
    print(f"resumed from {origin} "
          f"(@ {snapshot.events_processed} events, verified)")
    print(recovery.render())
    if args.report_out:
        print(f"wrote final report to {args.report_out}")
    return 0


def _span_workload(system, seed: int | None = None):
    """Load a span-instrumented three-stage pipeline onto ``system``.

    Producer → relay → consumer across three cores, every stage under
    its own child span of one ``pipeline`` root.  Returns
    ``(recorder, root_span, received)``; the caller closes the root
    after :meth:`SwallowSystem.run`.
    """
    import random

    from repro import Compute, RecvWord, SendWord

    recorder = system.spans()
    root = recorder.span("pipeline")
    root.begin(system.sim.now)
    if seed is None:
        words, cost = 6, 120
    else:
        rng = random.Random(seed)
        words = rng.randrange(3, 10)
        cost = rng.randrange(60, 260)
    first = system.channel(system.core(0), system.core(1))
    second = system.channel(system.core(1), system.core(10))
    received: list[int] = []

    def producer():
        for i in range(words):
            yield Compute(cost)
            yield SendWord(first.a, i * 3 + 1)

    def relay():
        for _ in range(words):
            value = yield RecvWord(first.b)
            yield Compute(cost // 2)
            yield SendWord(second.a, value * 2)

    def consumer():
        for _ in range(words):
            received.append((yield RecvWord(second.b)))

    system.spawn_task(system.core(0), producer(), name="produce",
                      span=root.child("produce"))
    system.spawn_task(system.core(1), relay(), name="relay",
                      span=root.child("relay"))
    system.spawn_task(system.core(10), consumer(), name="consume",
                      span=root.child("consume"))
    return recorder, root, received


def cmd_spans(args: argparse.Namespace) -> int:
    from repro import SwallowSystem
    from repro.obs import write_chrome_trace

    system = SwallowSystem(slices_x=args.slices_x, slices_y=args.slices_y)
    tracer = system.trace() if args.format == "chrome" else None
    recorder, root, received = _span_workload(system, seed=args.seed)
    system.run()
    root.finish(system.sim.now)
    if args.format == "chrome":
        write_chrome_trace(tracer.records, args.out, spans=recorder)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(recorder.to_jsonl())
    print(recorder.render())
    print(f"pipeline delivered {len(received)} words; wrote "
          f"{len(recorder.spans)} spans / {len(recorder.messages)} messages "
          f"to {args.out} ({args.format})")
    return 0


def cmd_energy_report(args: argparse.Namespace) -> int:
    from repro import SwallowSystem

    system = SwallowSystem(slices_x=args.slices_x, slices_y=args.slices_y)
    recorder, root, received = _span_workload(system, seed=args.seed)
    system.run()
    root.finish(system.sim.now)
    attribution = system.energy_attribution()
    if args.folded:
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write(attribution.folded())
    if args.json:
        print(json.dumps(attribution.to_dict(), sort_keys=True))
        return 0
    print(attribution.render(top=args.top))
    if args.folded:
        print(f"wrote folded stacks to {args.folded}")
    return 0


def _git_sha() -> str:
    """The current short commit SHA, best-effort (CLI edge only)."""
    import os
    import subprocess

    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if result.returncode == 0:
            return result.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    sha = os.environ.get("GITHUB_SHA", "")
    return sha[:12] if sha else "unknown"


def _load_profile_records(args: argparse.Namespace, min_events: int):
    """Current PerfRecords from a bench-profile JSON (CLI edge stamps time)."""
    import time

    from repro.obs.perf import records_from_profile

    try:
        with open(args.profile, encoding="utf-8") as handle:
            profile = json.load(handle)
    except OSError as err:
        print(f"perf: cannot read bench profile {args.profile}: {err}",
              file=sys.stderr)
        return None
    timestamp = args.timestamp if args.timestamp is not None else time.time()
    sha = args.sha if args.sha else _git_sha()
    return records_from_profile(
        profile, timestamp=timestamp, git_sha=sha, min_events=min_events
    )


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.obs.perf import (
        PerfHistory,
        compare_against_history,
        render_history_report,
    )

    history = PerfHistory(args.history)
    if args.perf_command == "record":
        records = _load_profile_records(args, args.min_events)
        if records is None:
            return 2
        written = history.extend(records)
        print(f"appended {written} records to {history.path}")
        for record in records:
            print(f"  {record.bench:<60} {record.events_per_sec:>12,.0f} ev/s")
        return 0
    if args.perf_command == "compare":
        records = _load_profile_records(args, 0)
        if records is None:
            return 2
        if not history.path.exists():
            print(f"perf: no history at {history.path}; record a baseline "
                  f"first", file=sys.stderr)
            return 2
        comparisons, unseen = compare_against_history(
            history, records,
            tolerance=args.tolerance, window=args.window,
            min_events=args.min_events,
        )
        regressions = [c for c in comparisons if c.regressed]
        if args.json:
            print(json.dumps({
                "tolerance": args.tolerance,
                "compared": [
                    {"bench": c.bench, "baseline_eps": c.baseline_eps,
                     "current_eps": c.current_eps, "ratio": c.ratio,
                     "regressed": c.regressed}
                    for c in comparisons
                ],
                "unseen": [r.bench for r in unseen],
                "regressed": bool(regressions),
            }, sort_keys=True))
        else:
            for comparison in comparisons:
                print(comparison.render())
            for record in unseen:
                print(f"{record.bench:<60} {'(no baseline yet)':>12}")
            if not comparisons and not unseen:
                print("perf compare: no benches above the event threshold "
                      f"({args.min_events}); nothing gated")
            verdict = (
                f"{len(regressions)} regression(s) beyond "
                f"{args.tolerance:.0%} tolerance"
                if regressions else
                f"ok: {len(comparisons)} bench(es) within "
                f"{args.tolerance:.0%} of baseline"
            )
            print(verdict)
        return 1 if regressions else 0
    # report
    print(render_history_report(history, window=args.window))
    return 0


def _farm_handles(args: argparse.Namespace):
    """(queue, cache) from the shared farm directory flags.

    The cache directory defaults to ``<dir>/cache`` but is its own
    flag: a cache shared across farm directories is how repeated
    sweeps (and CI's second pass) hit instead of re-simulating.
    """
    from repro.farm import JobQueue, ResultCache

    cache_dir = args.cache_dir if args.cache_dir else f"{args.dir}/cache"
    return JobQueue(args.dir), ResultCache(cache_dir)


def _parse_preempt(specs: list[str]) -> dict[str, int]:
    """``JOB_ID@EVENTS`` flags -> {job_id: events}."""
    preempt: dict[str, int] = {}
    for text in specs or ():
        job_id, _, events = text.partition("@")
        if not job_id or not events.isdigit() or int(events) < 1:
            raise SystemExit(
                f"farm: bad --preempt {text!r} (want JOB_ID@EVENTS)"
            )
        preempt[job_id] = int(events)
    return preempt


def cmd_farm(args: argparse.Namespace) -> int:
    from repro.farm import (
        MatrixSpec,
        WorkerPool,
        farm_progress,
        farm_report,
        render_progress,
    )

    queue, cache = _farm_handles(args)
    if args.farm_command == "submit":
        matrix = MatrixSpec.from_file(args.matrix)
        before = len(queue)
        records = queue.submit_all(matrix.jobs())
        print(f"submitted {len(records) - before} new / {len(records)} total "
              f"jobs to {queue.directory} "
              f"({matrix.workload}, {len(matrix.sweep)} sweep axes)")
        for record in records[:args.show]:
            print(f"  {record.job_id}  {json.dumps(record.spec.params, sort_keys=True)}")
        if len(records) > args.show:
            print(f"  ... and {len(records) - args.show} more")
        return 0
    if args.farm_command == "run":
        if args.matrix:
            queue.submit_all(MatrixSpec.from_file(args.matrix).jobs())
        if not len(queue):
            print("farm run: queue is empty; submit a matrix first",
                  file=sys.stderr)
            return 2
        pool = WorkerPool(
            queue, cache, num_workers=args.workers,
            checkpoint_every=args.checkpoint_every, retain=args.retain,
            heartbeat_every=args.heartbeat_every,
        )
        report = pool.run(preempt=_parse_preempt(args.preempt))
        document = report.to_dict()
        if args.report_out:
            with open(args.report_out, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
        if args.json:
            print(json.dumps(document, sort_keys=True))
        else:
            print(report.render())
            print(f"  wall time         {pool.wall_s:.2f} s "
                  f"({document['total_jobs'] / pool.wall_s:.1f} jobs/s)")
            if args.report_out:
                print(f"wrote farm report to {args.report_out}")
        return 0 if document["counts"]["failed"] == 0 else 1
    if args.farm_command == "status":
        progress = farm_progress(queue, queue.directory / "work")
        if args.json:
            print(json.dumps(progress, sort_keys=True))
        else:
            print(render_progress(progress))
        return 0
    # report
    report = farm_report(queue, cache, queue.directory / "work")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    pareto_note = None
    if args.pareto_out:
        from repro.dse import front_json, pareto_from_farm_report

        front = pareto_from_farm_report(
            report.to_dict(), objectives=_parse_objectives(args.objective)
        )
        with open(args.pareto_out, "w", encoding="utf-8") as handle:
            handle.write(front_json(front))
        pareto_note = (
            f"wrote pareto front ({len(front['front'])}/{front['points']} "
            f"non-dominated) to {args.pareto_out}"
        )
    heat_note = None
    if args.heatmap_out:
        from repro.farm import farm_heatmap

        fleet = farm_heatmap(queue, cache)
        if fleet is None:
            heat_note = ("no netscope heat maps in this campaign "
                         "(submit jobs with \"netscope\": true)")
        else:
            with open(args.heatmap_out, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(fleet, sort_keys=True,
                                        separators=(",", ":")))
            heat_note = (f"wrote fleet heat map ({fleet['jobs']} job(s), "
                         f"{len(fleet['grids'])} grid(s)) to "
                         f"{args.heatmap_out}")
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
        if args.out:
            print(f"wrote farm report to {args.out}")
        if pareto_note:
            print(pareto_note)
        if heat_note:
            print(heat_note)
    return 0


def _parse_objectives(specs: list[str] | None):
    """``KEY:min|max`` flags -> objective dicts (None = spec defaults)."""
    if not specs:
        return None
    objectives = []
    for text in specs:
        key, sep, goal = text.partition(":")
        if not key or (sep and goal not in ("min", "max")):
            raise SystemExit(
                f"bad --objective {text!r} (want KEY or KEY:min / KEY:max)"
            )
        objectives.append({"key": key, "goal": goal or "min"})
    return objectives


def cmd_dse(args: argparse.Namespace) -> int:
    """Design-space exploration: sweep, fold, extract the front."""
    from repro import dse

    if args.dse_command == "submit":
        spec = dse.SweepSpec.from_file(args.sweep)
        records = dse.submit_sweep(spec, args.dir)
        print(f"submitted sweep {spec.sweep_id} "
              f"({len(records)} point(s), {len(spec.sweep)} axes, "
              f"objectives {', '.join(str(o) for o in spec.objectives)}) "
              f"to {args.dir}")
        return 0
    if args.dse_command == "run":
        spec = (
            dse.SweepSpec.from_file(args.sweep)
            if args.sweep else dse.load_spec(args.dir)
        )
        report, farm = dse.run_sweep(
            spec, args.dir, num_workers=args.workers,
            preempt=_parse_preempt(args.preempt),
            cache_dir=args.cache_dir,
            checkpoint_every=args.checkpoint_every,
        )
        if args.report_out:
            with open(args.report_out, "w", encoding="utf-8") as handle:
                handle.write(dse.report_json(report))
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            from repro.dse.report import render

            print(render(report))
            payload = farm.to_dict()
            print(f"  farm: {payload['cache']['hits']} cache hit(s), "
                  f"{payload['preemptions']} preemption(s), "
                  f"{payload['counts']['failed']} failed")
            if args.report_out:
                print(f"wrote dse report to {args.report_out}")
        counts = farm.to_dict()["counts"]
        unfinished = counts["pending"] + counts["running"] + counts["preempted"]
        if unfinished:
            return EXIT_KILLED  # resumable: re-run the same directory
        return 0 if counts["failed"] == 0 else 1
    if args.dse_command == "report":
        report = dse.collect_report(None, args.dir, cache_dir=args.cache_dir)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(dse.report_json(report))
        if args.timeline_out:
            front = dse.pareto_front(report)
            timeline = dse.sweep_timeline(report, front)
            with open(args.timeline_out, "w", encoding="utf-8") as handle:
                from repro.dse.exports import timeline_json

                handle.write(timeline_json(timeline))
        if args.heatmap_out:
            from repro.dse.engine import SweepDirs
            from repro.dse.exports import overlay_json
            from repro.farm import JobQueue, ResultCache

            dirs = SweepDirs(args.dir, args.cache_dir)
            overlay = dse.fleet_overlay(
                JobQueue(dirs.queue_dir), ResultCache(dirs.cache_dir),
                dse.pareto_front(report),
            )
            if overlay is None:
                print("no netscope heat maps in this sweep "
                      "(add \"netscope\": true to the base params)",
                      file=sys.stderr)
            else:
                with open(args.heatmap_out, "w", encoding="utf-8") as handle:
                    handle.write(overlay_json(overlay))
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            from repro.dse.report import render

            print(render(report))
        return 0
    # pareto
    report = dse.collect_report(None, args.dir, cache_dir=args.cache_dir)
    front = dse.pareto_front(
        report, objectives=_parse_objectives(args.objective)
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dse.front_json(front))
    if args.csv_out:
        with open(args.csv_out, "w", encoding="utf-8") as handle:
            handle.write(dse.front_csv(front))
    if args.json:
        print(json.dumps(front, sort_keys=True))
    else:
        from repro.dse.pareto import render

        print(render(front))
        if args.scatter:
            print(dse.ascii_scatter(front))
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    """Run the scheduler/DVFS policy-zoo ablation and report it."""
    from repro.nos.ablation import (
        DEFAULT_KS,
        DEFAULT_POLICIES,
        render,
        report_json,
        run_ablation,
    )

    policies = (
        tuple(name.strip() for name in args.policies.split(","))
        if args.policies else DEFAULT_POLICIES
    )
    ks = (
        tuple(int(value) for value in args.ks.split(","))
        if args.ks else DEFAULT_KS
    )
    campaigns = tuple(
        {
            "seed": index,
            "kills": min(index, 4),
            "kill_from_us": 5.0,
            "kill_every_us": 6.0,
        }
        for index in range(1, args.campaigns + 1)
    )
    report = run_ablation(
        policies=policies,
        campaigns=campaigns,
        ks=ks,
        base={"tasks": args.tasks},
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report_json(report))
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render(report))
        if args.out:
            print(f"wrote policy-zoo report to {args.out}")
    return 0


def _positive_int(text: str) -> int:
    """Argparse type for values that must be >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Swallow energy-transparent many-core simulator",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    info = subparsers.add_parser("info", help="machine inventory")
    info.add_argument("--slices-x", type=int, default=1)
    info.add_argument("--slices-y", type=int, default=1)
    info.set_defaults(func=cmd_info)
    tables = subparsers.add_parser("tables", help="print the paper's tables")
    tables.set_defaults(func=cmd_tables)
    isa = subparsers.add_parser("isa", help="list the implemented instruction set")
    isa.set_defaults(func=cmd_isa)
    figures = subparsers.add_parser(
        "figures", help="export every paper figure/table as CSV"
    )
    figures.add_argument("--out", default="figures_out", help="output directory")
    figures.add_argument("names", nargs="*", help="subset of figure names")
    figures.set_defaults(func=cmd_figures)
    topology = subparsers.add_parser("topology", aliases=["topo"],
                                     help="draw the lattice")
    topology.add_argument("--slices-x", type=int, default=1)
    topology.add_argument("--slices-y", type=int, default=1)
    topology.add_argument("--heat", action="store_true",
                          help="run the demo workload with the fabric "
                               "observatory and overlay its heat map")
    topology.add_argument("--seed", type=int, default=None,
                          help="vary the heat-map workload (with --heat)")
    topology.add_argument("--window-us", type=float, default=1.0,
                          help="netscope sampling window in us (with --heat)")
    topology.set_defaults(func=cmd_topology)
    demo = subparsers.add_parser("demo", help="run the quickstart workload")
    demo.add_argument("--seed", type=int, default=None,
                      help="vary the workload deterministically")
    demo.add_argument("--json", action="store_true",
                      help="emit the energy report as JSON on stdout")
    _add_heartbeat_flags(demo)
    demo.set_defaults(func=cmd_demo)
    stats = subparsers.add_parser(
        "stats", help="run the demo workload; print metrics + kernel profile"
    )
    stats.add_argument("--slices-x", type=int, default=1)
    stats.add_argument("--slices-y", type=int, default=1)
    stats.add_argument("--seed", type=int, default=None)
    stats.add_argument("--prefix", default=None,
                       help="only show metric series with this prefix")
    stats.add_argument("--json", action="store_true",
                       help="emit profile + metrics as JSON")
    stats.add_argument("--sample-every", type=_positive_int, default=1,
                       metavar="N",
                       help="wall-time one event in N (1 = every event)")
    stats.add_argument("--folded", default=None, metavar="PATH",
                       help="write wall-time flame-graph folded stacks")
    stats.add_argument("--meta-trace", default=None, metavar="PATH",
                       help="write a Chrome trace of the simulator's own "
                            "execution (wall time per callback source)")
    stats.set_defaults(func=cmd_stats)
    trace = subparsers.add_parser(
        "trace", help="run the demo workload with tracing; export the trace"
    )
    trace.add_argument("--slices-x", type=int, default=1)
    trace.add_argument("--slices-y", type=int, default=1)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--out", default="trace.json", help="output file")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome")
    trace.add_argument("--kinds", nargs="*", default=None,
                       help="record only these event kinds")
    trace.add_argument("--capacity", type=_positive_int, default=None,
                       help="flight-recorder bound on retained records")
    trace.set_defaults(func=cmd_trace)
    faults = subparsers.add_parser(
        "faults", help="run a reliable stream under a fault campaign"
    )
    faults.add_argument("--slices-x", type=int, default=1)
    faults.add_argument("--slices-y", type=int, default=1)
    faults.add_argument("--seed", type=int, default=None,
                        help="campaign seed (deterministic)")
    faults.add_argument("--words", type=_positive_int, default=16,
                        help="payload words to stream reliably")
    faults.add_argument("--drop-rate", type=float, default=0.05,
                        help="default campaign's flaky-link drop rate")
    faults.add_argument("--spec", default=None,
                        help="JSON campaign spec file (see FaultCampaign.from_spec)")
    faults.add_argument("--json", action="store_true",
                        help="emit the campaign report as JSON")
    faults.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="dump the final metrics snapshot as JSON")
    faults.add_argument("--checkpoint-every", type=_positive_int, default=None,
                        metavar="N",
                        help="capture a checkpoint bundle every N kernel events")
    faults.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="persist checkpoint bundles to this directory")
    faults.add_argument("--retain", type=_positive_int, default=3,
                        help="checkpoints kept in the retained set")
    faults.add_argument("--kill-after-events", type=_positive_int,
                        default=None, metavar="N",
                        help="simulate a crash after N events "
                             f"(exit code {EXIT_KILLED}; resume later)")
    _add_heartbeat_flags(faults)
    faults.set_defaults(func=cmd_faults)
    netscope = subparsers.add_parser(
        "netscope",
        help="run a workload under the fabric observatory; export the "
             "heat map, Chrome counter tracks, and slice-cut report",
    )
    netscope.add_argument("--workload", default="faults_stream",
                          choices=("demo", "faults_stream",
                                   "watchdog_stream"),
                          help="registered workload to observe")
    netscope.add_argument("--slices-x", type=int, default=1)
    netscope.add_argument("--slices-y", type=int, default=1)
    netscope.add_argument("--seed", type=int, default=None,
                          help="workload/campaign seed (deterministic)")
    netscope.add_argument("--words", type=_positive_int, default=16,
                          help="payload words to stream")
    netscope.add_argument("--drop-rate", type=float, default=0.05,
                          help="default campaign's flaky-link drop rate")
    netscope.add_argument("--spec", default=None,
                          help="JSON campaign spec file")
    netscope.add_argument("--window-us", type=float, default=1.0,
                          help="telemetry sampling window in simulated us")
    netscope.add_argument("--heatmap-out", default=None, metavar="PATH",
                          help="write the heat-map document (canonical JSON)")
    netscope.add_argument("--counters-out", default=None, metavar="PATH",
                          help="write Chrome counter tracks (Perfetto)")
    netscope.add_argument("--slice-cut-out", default=None, metavar="PATH",
                          help="write the slice-cut report (canonical JSON)")
    netscope.add_argument("--ascii", action="store_true",
                          help="print the ASCII heat overlay")
    netscope.add_argument("--json", action="store_true",
                          help="emit the heat map as JSON on stdout")
    netscope.add_argument("--checkpoint-every", type=_positive_int,
                          default=None, metavar="N",
                          help="capture a checkpoint bundle every N events")
    netscope.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                          help="bundle store; a non-empty store is resumed")
    netscope.add_argument("--retain", type=_positive_int, default=3,
                          help="checkpoints kept in the retained set")
    netscope.add_argument("--kill-after-events", type=_positive_int,
                          default=None, metavar="N",
                          help="simulate a crash after N events "
                               f"(exit code {EXIT_KILLED}; resume later)")
    netscope.set_defaults(func=cmd_netscope)
    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="run a workload partway and write a checkpoint bundle",
    )
    checkpoint.add_argument("--workload", default="faults_stream",
                            help="registered workload name "
                                 "(see repro.checkpoint.WORKLOADS)")
    checkpoint.add_argument("--params", default=None, metavar="JSON",
                            help="workload params as a JSON object")
    checkpoint.add_argument("--after-events", type=_positive_int, default=None,
                            help="capture after N events (default: at the end)")
    checkpoint.add_argument("--out", default="checkpoint.json",
                            help="bundle output path")
    checkpoint.set_defaults(func=cmd_checkpoint)
    resume = subparsers.add_parser(
        "resume", help="resume a checkpointed run and drive it to completion"
    )
    resume.add_argument("bundle", nargs="?", default=None,
                        help="checkpoint bundle path")
    resume.add_argument("--dir", default=None, metavar="DIR",
                        help="resume from the newest bundle in this store")
    resume.add_argument("--checkpoint-every", type=_positive_int, default=None,
                        metavar="N",
                        help="keep checkpointing every N events after resume")
    resume.add_argument("--retain", type=_positive_int, default=3,
                        help="checkpoints kept in the retained set")
    resume.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the final report (with recovery) as JSON")
    resume.add_argument("--json", action="store_true",
                        help="emit the final report as JSON on stdout")
    _add_heartbeat_flags(resume)
    resume.set_defaults(func=cmd_resume)
    spans = subparsers.add_parser(
        "spans", help="run a span-traced pipeline; export the span tree"
    )
    spans.add_argument("--slices-x", type=int, default=1)
    spans.add_argument("--slices-y", type=int, default=1)
    spans.add_argument("--seed", type=int, default=None,
                       help="vary the pipeline deterministically")
    spans.add_argument("--out", default="spans.json", help="output file")
    spans.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="chrome = Perfetto trace with flow arrows; "
                            "jsonl = raw span/message records")
    spans.set_defaults(func=cmd_spans)
    energy_report = subparsers.add_parser(
        "energy-report",
        help="run a span-traced pipeline; print per-span energy attribution",
    )
    energy_report.add_argument("--slices-x", type=int, default=1)
    energy_report.add_argument("--slices-y", type=int, default=1)
    energy_report.add_argument("--seed", type=int, default=None)
    energy_report.add_argument("--top", type=_positive_int, default=12,
                               help="rows to show in the table")
    energy_report.add_argument("--folded", default=None, metavar="PATH",
                               help="also write flame-graph folded stacks")
    energy_report.add_argument("--json", action="store_true",
                               help="emit the attribution as JSON")
    energy_report.set_defaults(func=cmd_energy_report)
    farm = subparsers.add_parser(
        "farm",
        help="campaign farm: queue simulation matrices, fan out across "
             "worker processes, cache results by config digest",
    )
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)

    def _farm_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dir", default="farm", metavar="DIR",
                         help="farm directory (durable queue + work dirs)")
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="content-addressed result cache "
                              "(default: DIR/cache; share it across farm "
                              "directories to reuse results)")

    farm_submit = farm_sub.add_parser(
        "submit", help="expand a matrix spec and enqueue its jobs"
    )
    _farm_common(farm_submit)
    farm_submit.add_argument("--matrix", required=True, metavar="FILE",
                             help="matrix spec JSON "
                                  "(workload + base params + sweep axes)")
    farm_submit.add_argument("--show", type=int, default=8,
                             help="job rows to print")
    farm_run = farm_sub.add_parser(
        "run", help="drive every queued job to completion across workers"
    )
    _farm_common(farm_run)
    farm_run.add_argument("--matrix", default=None, metavar="FILE",
                          help="also submit this matrix before running")
    farm_run.add_argument("--workers", type=_positive_int, default=2,
                          help="worker processes (default 2)")
    farm_run.add_argument("--checkpoint-every", type=_positive_int,
                          default=2000, metavar="N",
                          help="per-job checkpoint cadence (kernel events)")
    farm_run.add_argument("--heartbeat-every", type=_positive_int,
                          default=2000, metavar="N",
                          help="per-job heartbeat cadence (kernel events)")
    farm_run.add_argument("--retain", type=_positive_int, default=3,
                          help="checkpoints kept per job")
    farm_run.add_argument("--preempt", action="append", default=None,
                          metavar="JOB_ID@EVENTS",
                          help="kill that job's next attempt after N fresh "
                               "events (exit 75); it resumes on another "
                               "worker — repeatable")
    farm_run.add_argument("--report-out", default=None, metavar="PATH",
                          help="write the farm report as canonical JSON")
    farm_run.add_argument("--json", action="store_true",
                          help="emit the farm report as JSON on stdout")
    farm_status = farm_sub.add_parser(
        "status", help="live campaign view (queue states + heartbeats)"
    )
    _farm_common(farm_status)
    farm_status.add_argument("--json", action="store_true",
                             help="emit the progress view as JSON")
    farm_report_cmd = farm_sub.add_parser(
        "report", help="aggregate the campaign into a farm report"
    )
    _farm_common(farm_report_cmd)
    farm_report_cmd.add_argument("--out", default=None, metavar="PATH",
                                 help="write the report as canonical JSON")
    farm_report_cmd.add_argument("--heatmap-out", default=None,
                                 metavar="PATH",
                                 help="merge the jobs' netscope heat maps "
                                      "into one fleet document (JSON)")
    farm_report_cmd.add_argument("--pareto-out", default=None, metavar="PATH",
                                 help="post-hoc Pareto analysis: write the "
                                      "campaign's non-dominated front as "
                                      "canonical JSON")
    farm_report_cmd.add_argument("--objective", action="append", default=None,
                                 metavar="KEY[:min|max]",
                                 help="objective axis for --pareto-out "
                                      "(repeatable; default GIPS/W/pJ-per-"
                                      "instruction)")
    farm_report_cmd.add_argument("--json", action="store_true",
                                 help="emit the report as JSON on stdout")
    farm.set_defaults(func=cmd_farm)
    dse = subparsers.add_parser(
        "dse",
        help="design-space exploration: declarative sweeps through the "
             "farm, Pareto-front extraction over configurable objectives",
    )
    dse_sub = dse.add_subparsers(dest="dse_command", required=True)

    def _dse_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dir", default="dse", metavar="DIR",
                         help="sweep directory (spec + queue + cache + work)")
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="content-addressed result cache "
                              "(default: DIR/cache; share it across sweep "
                              "directories to reuse results)")

    dse_submit = dse_sub.add_parser(
        "submit", help="expand a sweep spec and enqueue its design points"
    )
    _dse_common(dse_submit)
    dse_submit.add_argument("--sweep", required=True, metavar="FILE",
                            help="sweep spec JSON (workload + base + axes "
                                 "+ objectives)")
    dse_run = dse_sub.add_parser(
        "run",
        help="drive the sweep to completion and fold the dse report "
             f"(exit {EXIT_KILLED} if interrupted; re-run to resume)",
    )
    _dse_common(dse_run)
    dse_run.add_argument("--sweep", default=None, metavar="FILE",
                         help="submit this sweep spec before running "
                              "(default: the directory's saved spec)")
    dse_run.add_argument("--workers", type=_positive_int, default=2,
                         help="worker processes (default 2)")
    dse_run.add_argument("--checkpoint-every", type=_positive_int,
                         default=None, metavar="N",
                         help="per-point checkpoint cadence (kernel events)")
    dse_run.add_argument("--preempt", action="append", default=None,
                         metavar="JOB_ID@EVENTS",
                         help="kill that point's next attempt after N fresh "
                              "events (exit 75); it resumes on another "
                              "worker — repeatable")
    dse_run.add_argument("--report-out", default=None, metavar="PATH",
                         help="write the dse-report/1 as canonical JSON")
    dse_run.add_argument("--json", action="store_true",
                         help="emit the dse report as JSON on stdout")
    dse_report = dse_sub.add_parser(
        "report", help="fold the sweep's cached results into dse-report/1"
    )
    _dse_common(dse_report)
    dse_report.add_argument("--out", default=None, metavar="PATH",
                            help="write the report as canonical JSON")
    dse_report.add_argument("--timeline-out", default=None, metavar="PATH",
                            help="write a Chrome-trace sweep timeline "
                                 "(front/knee annotated)")
    dse_report.add_argument("--heatmap-out", default=None, metavar="PATH",
                            help="write the fleet heat-map overlay "
                                 "(netscope jobs only)")
    dse_report.add_argument("--json", action="store_true",
                            help="emit the report as JSON on stdout")
    dse_pareto = dse_sub.add_parser(
        "pareto", help="extract the non-dominated front from the sweep"
    )
    _dse_common(dse_pareto)
    dse_pareto.add_argument("--objective", action="append", default=None,
                            metavar="KEY[:min|max]",
                            help="objective axis (repeatable; default: the "
                                 "sweep spec's objectives)")
    dse_pareto.add_argument("--out", default=None, metavar="PATH",
                            help="write the pareto-front/1 as canonical JSON")
    dse_pareto.add_argument("--csv-out", default=None, metavar="PATH",
                            help="write the front as CSV")
    dse_pareto.add_argument("--scatter", action="store_true",
                            help="print the ASCII Pareto scatter")
    dse_pareto.add_argument("--json", action="store_true",
                            help="emit the front as JSON on stdout")
    dse.set_defaults(func=cmd_dse)
    policies = subparsers.add_parser(
        "policies",
        help="run the scheduler/DVFS policy-zoo ablation "
             "(policies x fault campaigns x k)",
    )
    policies.add_argument("--policies", default=None, metavar="NAMES",
                          help="comma-separated zoo bundle names "
                               "(default: the whole zoo)")
    policies.add_argument("--ks", default=None, metavar="KS",
                          help="comma-separated backup depths "
                               "(default: 0,1,2)")
    policies.add_argument("--campaigns", type=_positive_int, default=3,
                          metavar="N",
                          help="seeded fault campaigns: campaign i kills "
                               "min(i, 4) cores (default 3)")
    policies.add_argument("--tasks", type=_positive_int, default=24,
                          help="real-time tasks per cell (default 24)")
    policies.add_argument("--out", default=None, metavar="PATH",
                          help="write the canonical JSON report here")
    policies.add_argument("--json", action="store_true",
                          help="emit the report as JSON on stdout")
    policies.set_defaults(func=cmd_policies)
    perf = subparsers.add_parser(
        "perf",
        help="performance observatory: perf-history ledger + regression gate",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _perf_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--history",
                         default="benchmarks/out/perf_history.jsonl",
                         metavar="PATH",
                         help="append-only perf-history ledger (JSONL)")

    def _perf_profile_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--profile",
                         default="benchmarks/out/bench_profile.json",
                         metavar="PATH",
                         help="bench profile JSON to read current numbers from")
        sub.add_argument("--sha", default=None,
                         help="git SHA to stamp (default: auto-detect)")
        sub.add_argument("--timestamp", type=float, default=None,
                         help="unix timestamp to stamp (default: now; "
                              "timestamps always enter at the process edge)")

    perf_record = perf_sub.add_parser(
        "record", help="append the bench profile's rows to the ledger"
    )
    _perf_common(perf_record)
    _perf_profile_flags(perf_record)
    perf_record.add_argument("--min-events", type=int, default=0,
                             help="skip benches with fewer kernel events")
    perf_compare = perf_sub.add_parser(
        "compare",
        help="gate current numbers against rolling baselines "
             "(exit 1 on regression)",
    )
    _perf_common(perf_compare)
    _perf_profile_flags(perf_compare)
    perf_compare.add_argument("--tolerance", type=float, default=0.30,
                              help="allowed fractional events/sec loss "
                                   "before the gate fires (default 0.30)")
    perf_compare.add_argument("--window", type=_positive_int, default=5,
                              help="rolling-baseline window (records)")
    perf_compare.add_argument("--min-events", type=int, default=10_000,
                              help="only gate benches with at least this "
                                   "many kernel events")
    perf_compare.add_argument("--json", action="store_true",
                              help="emit the comparison as JSON")
    perf_report = perf_sub.add_parser(
        "report", help="print the per-bench performance trajectory"
    )
    _perf_common(perf_report)
    perf_report.add_argument("--window", type=_positive_int, default=5,
                             help="rolling-baseline window (records)")
    perf.set_defaults(func=cmd_perf)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # A downstream pager/head closed the pipe mid-print: the Unix
        # convention is a quiet exit, not a traceback.  Detach stdout
        # so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    sys.exit(main())
