"""Register file and 32-bit arithmetic helpers for the XS1 model.

The XS1 ISA exposes twelve general-purpose registers ``r0``–``r11`` plus
four special registers: ``cp`` (constant pool), ``dp`` (data pointer),
``sp`` (stack pointer) and ``lr`` (link register).  The program counter is
held on the :class:`~repro.xs1.thread.HardwareThread` rather than in the
register file.
"""

from __future__ import annotations

from repro.xs1.errors import TrapError

#: Number of general-purpose registers.
NUM_GP_REGISTERS = 12

#: Name -> register-file index.  GP registers first, then specials.
REGISTER_INDEX: dict[str, int] = {f"r{i}": i for i in range(NUM_GP_REGISTERS)}
REGISTER_INDEX.update({"cp": 12, "dp": 13, "sp": 14, "lr": 15})

#: Index -> canonical name.
REGISTER_NAME: dict[int, str] = {v: k for k, v in REGISTER_INDEX.items()}

NUM_REGISTERS = len(REGISTER_INDEX)

_MASK32 = 0xFFFF_FFFF


def u32(value: int) -> int:
    """Wrap ``value`` to an unsigned 32-bit integer."""
    return value & _MASK32


def s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= _MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class RegisterFile:
    """A thread's register file: 12 GP + 4 special 32-bit registers."""

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * NUM_REGISTERS

    def read(self, index: int) -> int:
        """Read register ``index`` (always an unsigned 32-bit value)."""
        self._check(index)
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write ``value`` (wrapped to 32 bits) to register ``index``."""
        self._check(index)
        self._regs[index] = u32(value)

    def read_named(self, name: str) -> int:
        """Read a register by name, e.g. ``"r3"`` or ``"sp"``."""
        return self.read(REGISTER_INDEX[name])

    def write_named(self, name: str, value: int) -> None:
        """Write a register by name."""
        self.write(REGISTER_INDEX[name], value)

    def snapshot(self) -> dict[str, int]:
        """A name -> value mapping of the whole file (for debugging)."""
        return {REGISTER_NAME[i]: self._regs[i] for i in range(NUM_REGISTERS)}

    @staticmethod
    def _check(index: int) -> None:
        if not 0 <= index < NUM_REGISTERS:
            raise TrapError(f"invalid register index {index}")
