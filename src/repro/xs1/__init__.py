"""XS1-L processor model: ISA, assembler, threads, channel ends, core."""

from repro.xs1.assembler import Assembler, Program, assemble
from repro.xs1.behavioral import (
    BehavioralThread,
    CheckCt,
    Compute,
    RecvPacket,
    RecvToken,
    RecvWord,
    SendCt,
    SendToken,
    SendWord,
    SetDest,
    Sleep,
)
from repro.xs1.chanend import CHANEND_BUFFER_TOKENS, Chanend
from repro.xs1.core import CoreConfig, CoreStats, XCore
from repro.xs1.errors import (
    AssemblerError,
    MemoryAccessError,
    ResourceError,
    TrapError,
    XS1Error,
)
from repro.xs1.fabric import Fabric, LoopbackFabric
from repro.xs1.isa import (
    CT_ACK,
    CT_END,
    CT_NACK,
    CT_PAUSE,
    INSTRUCTION_SET,
    RES_TYPE_CHANEND,
    RES_TYPE_LOCK,
    RES_TYPE_TIMER,
    EnergyClass,
    Instruction,
    InstructionSpec,
    Operand,
)
from repro.xs1.memory import SRAM_BYTES, Sram
from repro.xs1.registers import RegisterFile, s32, u32
from repro.xs1.resources import REF_CLOCK_HZ, LockResource, TimerResource
from repro.xs1.thread import HardwareThread, IsaThread, StepOutcome, ThreadState

__all__ = [
    "Assembler",
    "AssemblerError",
    "BehavioralThread",
    "CHANEND_BUFFER_TOKENS",
    "CT_ACK",
    "CT_END",
    "CT_NACK",
    "CT_PAUSE",
    "Chanend",
    "CheckCt",
    "Compute",
    "CoreConfig",
    "CoreStats",
    "EnergyClass",
    "Fabric",
    "HardwareThread",
    "INSTRUCTION_SET",
    "Instruction",
    "InstructionSpec",
    "IsaThread",
    "LockResource",
    "LoopbackFabric",
    "MemoryAccessError",
    "Operand",
    "Program",
    "REF_CLOCK_HZ",
    "RES_TYPE_CHANEND",
    "RES_TYPE_LOCK",
    "RES_TYPE_TIMER",
    "RecvPacket",
    "RecvToken",
    "RecvWord",
    "RegisterFile",
    "ResourceError",
    "SRAM_BYTES",
    "SendCt",
    "SendToken",
    "SendWord",
    "SetDest",
    "Sleep",
    "Sram",
    "StepOutcome",
    "ThreadState",
    "TimerResource",
    "TrapError",
    "XCore",
    "XS1Error",
    "assemble",
    "s32",
    "u32",
]
