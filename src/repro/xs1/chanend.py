"""Channel ends.

A channel end is the core-side endpoint of XS1 channel communication.  It
owns a small receive buffer and a small transmit buffer; when either is
exhausted the issuing thread pauses ("Communication instructions will
block if the output buffer is full", paper §V.D) and is woken by the
fabric when space or data appears.

The chanend knows nothing about topology: it hands tokens (tagged with a
destination snapshot) to a :class:`~repro.xs1.fabric.Fabric`, which may be
the trivial loopback used for single-core tests or the full Swallow
network (:mod:`repro.network.fabric`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.network.header import ChanendAddress
from repro.network.token import TOKEN_BITS, Token
from repro.xs1.errors import ResourceError

if TYPE_CHECKING:
    from repro.xs1.core import XCore
    from repro.xs1.thread import HardwareThread

#: Token capacity of each direction's buffer (XS1-like small buffers).
CHANEND_BUFFER_TOKENS = 8


class Chanend:
    """One channel end on a core."""

    def __init__(self, core: "XCore", index: int):
        self.core = core
        self.index = index
        self.address = ChanendAddress(core.node_id, index)
        self.allocated = False
        self.dest: ChanendAddress | None = None
        self.rx: deque[Token] = deque()
        self.tx: deque[Token] = deque()
        self.rx_capacity = CHANEND_BUFFER_TOKENS
        self.tx_capacity = CHANEND_BUFFER_TOKENS
        self._rx_waiter: "HardwareThread | None" = None
        self._rx_need = 0
        self._tx_waiter: "HardwareThread | None" = None
        self._tx_need = 0
        self.tokens_sent = 0
        self.tokens_received = 0
        #: Optional hook fired after each delivered token (used by the
        #: Ethernet bridge and other non-core endpoints).
        self.on_deliver = None
        #: Causal span of the most recently delivered span-tagged token
        #: (see :mod:`repro.obs.spans`); consumed by the receiving
        #: thread to reconstruct producer → consumer messages.
        self.last_rx_span = None
        #: XS1 event state (``setv``/``eeu``): vector = instruction index
        #: jumped to when the event fires; the owning thread is whichever
        #: enabled the event.
        self.event_vector: int | None = None
        self.event_enabled = False
        self.event_thread = None

    # -- events ------------------------------------------------------------

    @property
    def event_ready(self) -> bool:
        """A chanend event is ready whenever receive data is buffered."""
        return bool(self.rx)

    def maybe_fire_event(self) -> None:
        """Dispatch the event if enabled, ready, and the owner is waiting."""
        if (
            self.event_enabled
            and self.event_ready
            and self.event_thread is not None
            and getattr(self.event_thread, "waiting_for_event", False)
        ):
            self.event_thread.take_event(self.event_vector)

    # -- configuration ----------------------------------------------------

    def set_dest(self, address: ChanendAddress) -> None:
        """Set the destination used for subsequently sent tokens (``setd``)."""
        self.dest = address

    def reset(self) -> None:
        """Clear all state (used by ``freer``)."""
        self.dest = None
        self.rx.clear()
        self.tx.clear()
        self._rx_waiter = None
        self._tx_waiter = None
        self._rx_need = 0
        self._tx_need = 0
        self.event_vector = None
        self.event_enabled = False
        self.event_thread = None
        self.last_rx_span = None

    # -- transmit side (called by the executor) ----------------------------

    def tx_space(self) -> int:
        """Free token slots in the transmit buffer."""
        return self.tx_capacity - len(self.tx)

    def push_tx(self, tokens: list[Token]) -> None:
        """Enqueue tokens for transmission; caller must have checked space.

        When the issuing thread carries a causal span, outgoing tokens
        are stamped with it (so every downstream hop can charge the
        span) and the span's payload-bit ledger grows.
        """
        if self.dest is None:
            raise ResourceError(f"{self.address}: send before setd")
        if len(tokens) > self.tx_space():
            raise ResourceError(f"{self.address}: transmit buffer overflow")
        # getattr: bridge shims pose as cores but run no threads.
        thread = getattr(self.core, "current_thread", None)
        if thread is not None and thread.span is not None:
            span = thread.span
            tokens = [replace(token, span=span) for token in tokens]
            span.bits_sent += TOKEN_BITS * len(tokens)
            span.last_send_ps = self.core.sim.now
        self.tx.extend(tokens)
        self.tokens_sent += len(tokens)
        self.core.fabric.notify_tx(self)

    def wait_tx_space(self, thread: "HardwareThread", need: int) -> None:
        """Pause ``thread`` until ``need`` transmit slots are free."""
        self._tx_waiter = thread
        self._tx_need = need
        thread.pause(f"out on {self.address}")

    # -- transmit side (called by the fabric) -------------------------------

    def peek_tx(self) -> Token | None:
        """The next token awaiting transmission, if any."""
        return self.tx[0] if self.tx else None

    def pull_tx(self) -> Token:
        """Remove and return the next token awaiting transmission."""
        token = self.tx.popleft()
        if self._tx_waiter is not None and self.tx_space() >= self._tx_need:
            waiter, self._tx_waiter = self._tx_waiter, None
            waiter.resume()
        return token

    # -- receive side (called by the fabric) --------------------------------

    def rx_space(self) -> int:
        """Free token slots in the receive buffer."""
        return self.rx_capacity - len(self.rx)

    def deliver(self, token: Token) -> bool:
        """Deliver one token into the receive buffer.

        Returns False (and drops nothing) when the buffer is full — the
        fabric must hold the token and retry, which is how backpressure
        propagates into the network's credit scheme.
        """
        if self.rx_space() <= 0:
            return False
        self.rx.append(token)
        self.tokens_received += 1
        if token.span is not None:
            self.last_rx_span = token.span
        if self._rx_waiter is not None and len(self.rx) >= self._rx_need:
            waiter, self._rx_waiter = self._rx_waiter, None
            waiter.resume()
        if self.on_deliver is not None:
            self.on_deliver(self)
        self.maybe_fire_event()
        return True

    # -- receive side (called by the executor) ------------------------------

    def rx_available(self) -> int:
        """Number of buffered received tokens."""
        return len(self.rx)

    def pop_rx(self) -> Token:
        """Consume the oldest received token (freeing buffer space)."""
        token = self.rx.popleft()
        self.core.fabric.notify_rx_space(self)
        return token

    def wait_rx(self, thread: "HardwareThread", need: int) -> None:
        """Pause ``thread`` until ``need`` tokens are buffered."""
        self._rx_waiter = thread
        self._rx_need = need
        thread.pause(f"in on {self.address}")

    def cancel_rx_wait(self, thread: "HardwareThread") -> bool:
        """Withdraw ``thread``'s pending receive wait (timeout support).

        Returns True when the thread was indeed the registered waiter;
        False when data already arrived and the wait was satisfied (the
        timeout lost the race and must be ignored).
        """
        if self._rx_waiter is thread:
            self._rx_waiter = None
            self._rx_need = 0
            return True
        return False

    def cancel_tx_wait(self, thread: "HardwareThread") -> bool:
        """Withdraw ``thread``'s pending transmit-space wait.

        The send-side twin of :meth:`cancel_rx_wait`: a send deadline
        passed while the transmit buffer was still full (e.g. the route
        ahead is severed and nothing drains).  Returns True when the
        thread was still the registered waiter.
        """
        if self._tx_waiter is thread:
            self._tx_waiter = None
            self._tx_need = 0
            return True
        return False

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical chanend state: buffers, counters, waiter presence."""
        return {
            "index": self.index,
            "allocated": self.allocated,
            "dest": str(self.dest) if self.dest is not None else None,
            "rx": [[t.value, t.is_control] for t in self.rx],
            "tx": [[t.value, t.is_control] for t in self.tx],
            "tokens_sent": self.tokens_sent,
            "tokens_received": self.tokens_received,
            "rx_waiting": self._rx_waiter is not None,
            "tx_waiting": self._tx_waiter is not None,
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed chanend against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, str(self))

    def __str__(self) -> str:
        return f"chanend {self.address}"
