"""Behavioural threads: Python coroutines with hardware-thread timing.

Writing every workload in assembly does not scale, so the core also runs
*behavioural* threads: Python generators that yield operation objects.
Each operation consumes issue slots under exactly the same pipeline rules
as real instructions (one slot per instruction, at most one issue per
thread per four cycles, paused threads cost nothing), so Eq. 2 timing and
the energy accounting hold for behavioural workloads too.

Example::

    def worker(chanend):
        yield Compute(100)            # 100 instructions of work
        word = yield RecvWord(chanend)
        yield SendWord(chanend, word + 1)

    BehavioralThread(core, worker(chanend))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.network.header import ChanendAddress
from repro.network.token import (
    TOKENS_PER_WORD,
    control_token,
    data_token,
    tokens_to_word,
    word_to_tokens,
)
from repro.xs1.errors import TrapError
from repro.xs1.isa import EnergyClass
from repro.xs1.thread import HardwareThread, StepOutcome

if TYPE_CHECKING:
    from repro.xs1.chanend import Chanend
    from repro.xs1.core import XCore


@dataclass
class Compute:
    """Occupy ``instructions`` issue slots of plain computation."""

    instructions: int
    energy_class: EnergyClass = EnergyClass.ALU

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instruction count must be non-negative")


@dataclass
class SendWord:
    """Send a 32-bit word on a channel end (one ``out`` instruction).

    The yield's value is True once the word is buffered for
    transmission.  With ``timeout_cycles`` set, waiting longer than
    that for transmit-buffer space abandons the send and the yield's
    value is False — the escape hatch reliable channels need when the
    route ahead is severed and the buffer never drains (a plain send
    would block forever, a *silent stall*).
    """

    chanend: "Chanend"
    value: int
    timeout_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.timeout_cycles is not None and self.timeout_cycles < 1:
            raise ValueError("timeout must be at least one cycle")


@dataclass
class RecvWord:
    """Receive a 32-bit word; the word is the value of the ``yield``."""

    chanend: "Chanend"


@dataclass
class SendToken:
    """Send a single data token."""

    chanend: "Chanend"
    value: int


@dataclass
class RecvToken:
    """Receive a single data token; the token value is the yield's value."""

    chanend: "Chanend"


@dataclass
class SendCt:
    """Send a control token (e.g. ``CT_END`` to close a route).

    Supports ``timeout_cycles`` exactly like :class:`SendWord`.
    """

    chanend: "Chanend"
    code: int
    timeout_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.timeout_cycles is not None and self.timeout_cycles < 1:
            raise ValueError("timeout must be at least one cycle")


@dataclass
class CheckCt:
    """Consume an expected control token; traps on mismatch."""

    chanend: "Chanend"
    code: int


@dataclass
class SetDest:
    """Set a channel end's destination (one ``setd`` instruction)."""

    chanend: "Chanend"
    dest: ChanendAddress


@dataclass
class Sleep:
    """Pause the thread for ``cycles`` core cycles (timer wait)."""

    cycles: int


@dataclass
class RecvPacket:
    """Receive a whole packet: every data-token value up to the END.

    The yield's value is the list of 8-bit data-token values consumed
    before the closing END control token (the END itself is consumed
    but not returned).  With ``timeout_cycles`` set, waiting longer than
    that for the *next* token abandons the receive: any partial packet
    is discarded and the yield's value is ``None`` — the resync
    primitive reliable channels are built on, since a lossy or severed
    link may never deliver the END.

    Non-END control tokens inside the packet trap, like :class:`RecvWord`.
    """

    chanend: "Chanend"
    timeout_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.timeout_cycles is not None and self.timeout_cycles < 1:
            raise ValueError("timeout must be at least one cycle")


Operation = (
    Compute | SendWord | RecvWord | SendToken | RecvToken | SendCt | CheckCt
    | SetDest | Sleep | RecvPacket
)


class BehavioralThread(HardwareThread):
    """A hardware thread driven by a Python generator of operations."""

    def __init__(
        self,
        core: "XCore",
        generator: Generator,
        name: str | None = None,
    ):
        super().__init__(core, core.claim_tid(), name)
        self._generator = generator
        self._current: Operation | None = None
        self._compute_left = 0
        self._pending_result: object = None
        self._packet_accum: list[int] = []
        self._timeout_handle = None
        core.add_thread(self)

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Scheduling state plus the operation-level behavioural state.

        The generator frame itself is unserializable; what *is* captured
        is everything observable about the thread's progress — which the
        restore replay must reproduce exactly.
        """
        state = super().snapshot_state()
        state["kind"] = "behavioral"
        state["current_op"] = (
            type(self._current).__name__ if self._current is not None else None
        )
        state["compute_left"] = self._compute_left
        state["packet_accum"] = list(self._packet_accum)
        state["timeout_armed"] = self._timeout_handle is not None
        return state

    # -- generator pump -----------------------------------------------------

    def _fetch(self) -> bool:
        """Advance the generator to its next operation.  False at exhaustion."""
        try:
            result, self._pending_result = self._pending_result, None
            self._current = self._generator.send(result)
        except StopIteration:
            self._current = None
            return False
        if isinstance(self._current, Compute):
            self._compute_left = self._current.instructions
        return True

    def _complete(self) -> None:
        self._current = None

    # -- one issue slot -----------------------------------------------------

    def step(self) -> StepOutcome:
        """Consume one issue slot on the current operation."""
        if self._current is None:
            if not self._fetch():
                self.halt()
                return StepOutcome.HALTED
            if self._current is None:  # generator yielded None: free slot
                return self._count(EnergyClass.NOP)
        op = self._current
        if isinstance(op, Compute):
            if self._compute_left == 0:
                self._complete()
                return self.step()
            self._compute_left -= 1
            if self._compute_left == 0:
                self._complete()
            return self._count(op.energy_class)
        if isinstance(op, SendWord):
            return self._send_tokens(
                op.chanend, word_to_tokens(op.value), op.timeout_cycles
            )
        if isinstance(op, SendToken):
            return self._send_tokens(op.chanend, [data_token(op.value)])
        if isinstance(op, SendCt):
            return self._send_tokens(
                op.chanend, [control_token(op.code)], op.timeout_cycles
            )
        if isinstance(op, RecvWord):
            return self._recv_word(op.chanend)
        if isinstance(op, RecvToken):
            return self._recv_token(op.chanend)
        if isinstance(op, CheckCt):
            return self._check_ct(op.chanend, op.code)
        if isinstance(op, SetDest):
            op.chanend.set_dest(op.dest)
            self._complete()
            return self._count(EnergyClass.RESOURCE)
        if isinstance(op, Sleep):
            self._complete()
            delay = self.core.frequency.cycles_to_ps(op.cycles)
            self.core.sim.schedule(delay, self.resume)
            self.pause("sleep")
            return StepOutcome.PAUSED
        if isinstance(op, RecvPacket):
            return self._recv_packet(op)
        raise TrapError(f"{self.name}: unknown behavioural operation {op!r}")

    # -- operation implementations -------------------------------------------

    def _count(self, energy_class: EnergyClass) -> StepOutcome:
        self.instructions_executed += 1
        self.core.count_instruction(energy_class)
        return StepOutcome.ISSUED

    def _note_receive(self, chanend: "Chanend") -> None:
        """Record producer-span → this-span causality for a completed receive.

        The chanend remembers the span of the last span-tagged token it
        delivered; if both ends carry spans, one :class:`SpanMessage`
        lands in the recorder (and the mark is consumed, so one message
        is recorded per completed receive, not per token).
        """
        src = chanend.last_rx_span
        if src is None:
            return
        chanend.last_rx_span = None
        if self.span is None or self.span is src:
            return
        src.recorder.record_message(
            src, self.span, src.last_send_ps, self.core.sim.now
        )

    def _send_tokens(
        self,
        chanend: "Chanend",
        tokens: list,
        timeout_cycles: int | None = None,
    ) -> StepOutcome:
        if self._timeout_handle is not None:      # woken by space, not timeout
            self._timeout_handle.cancel()
            self._timeout_handle = None
        if chanend.tx_space() < len(tokens):
            chanend.wait_tx_space(self, len(tokens))
            if timeout_cycles is not None:
                delay = self.core.frequency.cycles_to_ps(timeout_cycles)
                self._timeout_handle = self.core.sim.schedule(
                    delay, lambda: self._send_timeout(chanend)
                )
            return StepOutcome.PAUSED
        chanend.push_tx(tokens)
        self._pending_result = True
        self._complete()
        return self._count(EnergyClass.COMM)

    def _send_timeout(self, chanend: "Chanend") -> None:
        """The armed send deadline passed with the buffer still full."""
        self._timeout_handle = None
        if not chanend.cancel_tx_wait(self):
            return                                # space won the race
        self._pending_result = False
        self._complete()
        self.resume()

    def _recv_word(self, chanend: "Chanend") -> StepOutcome:
        if chanend.rx_available() < TOKENS_PER_WORD:
            chanend.wait_rx(self, TOKENS_PER_WORD)
            return StepOutcome.PAUSED
        tokens = []
        for position in range(TOKENS_PER_WORD):
            token = chanend.rx[position]
            if token.is_control:
                raise TrapError(f"{self.name}: control token {token} in word data")
            tokens.append(token)
        for _ in range(TOKENS_PER_WORD):
            chanend.pop_rx()
        self._pending_result = tokens_to_word(tokens)
        self._note_receive(chanend)
        self._complete()
        return self._count(EnergyClass.COMM)

    def _recv_token(self, chanend: "Chanend") -> StepOutcome:
        if chanend.rx_available() < 1:
            chanend.wait_rx(self, 1)
            return StepOutcome.PAUSED
        token = chanend.rx[0]
        if token.is_control:
            raise TrapError(f"{self.name}: unexpected control token {token}")
        chanend.pop_rx()
        self._pending_result = token.value
        self._note_receive(chanend)
        self._complete()
        return self._count(EnergyClass.COMM)

    def _recv_packet(self, op: RecvPacket) -> StepOutcome:
        chanend = op.chanend
        if self._timeout_handle is not None:      # woken by data, not timeout
            self._timeout_handle.cancel()
            self._timeout_handle = None
        while chanend.rx_available() > 0:
            token = chanend.rx[0]
            if token.is_control and not token.is_end:
                raise TrapError(
                    f"{self.name}: unexpected control token {token} in packet"
                )
            chanend.pop_rx()
            if token.is_end:
                self._pending_result = self._packet_accum
                self._packet_accum = []
                self._note_receive(chanend)
                self._complete()
                return self._count(EnergyClass.COMM)
            self._packet_accum.append(token.value)
        chanend.wait_rx(self, 1)
        if op.timeout_cycles is not None:
            delay = self.core.frequency.cycles_to_ps(op.timeout_cycles)
            self._timeout_handle = self.core.sim.schedule(
                delay, lambda: self._recv_packet_timeout(chanend)
            )
        return StepOutcome.PAUSED

    def _recv_packet_timeout(self, chanend: "Chanend") -> None:
        """The armed receive deadline passed with the thread still waiting."""
        self._timeout_handle = None
        if not chanend.cancel_rx_wait(self):
            return                                # data won the race
        self._packet_accum = []                   # drop any partial packet
        self._pending_result = None
        self._complete()
        self.resume()

    def _check_ct(self, chanend: "Chanend", code: int) -> StepOutcome:
        if chanend.rx_available() < 1:
            chanend.wait_rx(self, 1)
            return StepOutcome.PAUSED
        token = chanend.rx[0]
        if not token.is_control or token.value != code:
            raise TrapError(
                f"{self.name}: expected control token {code:#x}, found {token}"
            )
        chanend.pop_rx()
        self._complete()
        return self._count(EnergyClass.COMM)
