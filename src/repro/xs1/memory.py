"""Single-cycle SRAM model.

Each XS1-L core carries 64 KiB of unified single-cycle SRAM and no cache —
one of the two pillars of Swallow's time determinism (the other being the
fixed-completion-time pipeline).  Every access completes in one cycle, so
the memory model only has to enforce bounds and alignment; timing lives in
the core's issue scheduler.
"""

from __future__ import annotations

from repro.xs1.errors import MemoryAccessError

#: SRAM size of an XS1-L core (bytes).
SRAM_BYTES = 64 * 1024


class Sram:
    """Byte-addressable SRAM with word/half/byte access, little-endian."""

    def __init__(self, size: int = SRAM_BYTES):
        if size <= 0 or size % 4 != 0:
            raise ValueError(f"SRAM size must be a positive multiple of 4, got {size}")
        self.size = size
        self._data = bytearray(size)
        self.loads = 0
        self.stores = 0

    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > self.size:
            raise MemoryAccessError(
                f"address {address:#x} (+{width}) outside SRAM of {self.size:#x} bytes"
            )
        if address % width != 0:
            raise MemoryAccessError(
                f"address {address:#x} misaligned for {width}-byte access"
            )

    def load_word(self, address: int) -> int:
        """Read a 32-bit little-endian word."""
        self._check(address, 4)
        self.loads += 1
        return int.from_bytes(self._data[address : address + 4], "little")

    def store_word(self, address: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        self._check(address, 4)
        self.stores += 1
        self._data[address : address + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")

    def load_half(self, address: int) -> int:
        """Read an unsigned 16-bit little-endian halfword."""
        self._check(address, 2)
        self.loads += 1
        return int.from_bytes(self._data[address : address + 2], "little")

    def store_half(self, address: int, value: int) -> None:
        """Write a 16-bit little-endian halfword."""
        self._check(address, 2)
        self.stores += 1
        self._data[address : address + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def load_byte(self, address: int) -> int:
        """Read an unsigned byte."""
        self._check(address, 1)
        self.loads += 1
        return self._data[address]

    def store_byte(self, address: int, value: int) -> None:
        """Write a byte."""
        self._check(address, 1)
        self.stores += 1
        self._data[address] = value & 0xFF

    def write_block(self, address: int, data: bytes) -> None:
        """Bulk write (program loading); byte-aligned."""
        if address < 0 or address + len(data) > self.size:
            raise MemoryAccessError(
                f"block [{address:#x}, +{len(data)}) outside SRAM"
            )
        self._data[address : address + len(data)] = data

    def read_block(self, address: int, length: int) -> bytes:
        """Bulk read; byte-aligned."""
        if address < 0 or address + length > self.size:
            raise MemoryAccessError(
                f"block [{address:#x}, +{length}) outside SRAM"
            )
        return bytes(self._data[address : address + length])

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical SRAM state: access counters plus a content digest.

        The digest (not the 64 KiB image) goes into checkpoint bundles;
        restore replays the workload, which rewrites the memory, and the
        digest proves the replayed image is byte-identical.
        """
        import hashlib

        return {
            "size": self.size,
            "loads": self.loads,
            "stores": self.stores,
            "sha256": hashlib.sha256(self._data).hexdigest(),
        }

    def restore_state(self, state: dict) -> None:
        """Verify replayed SRAM contents against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "sram")
