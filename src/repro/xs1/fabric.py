"""Fabric interface between cores and the interconnect.

Cores hand tokens to a *fabric*; the fabric carries them to the
destination channel end with whatever timing and contention its
implementation models.  Two implementations exist:

* :class:`LoopbackFabric` (here) — connects channel ends on the same
  fabric directly with a fixed small latency.  It serves single-core and
  single-node tests and models the core-local case of the paper's §V.D
  ("Core-local communication can sustain this data rate").
* :class:`repro.network.fabric.SwallowFabric` — the full token-level
  switch/link network with wormhole routing and credit flow control.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Protocol

from repro.network.header import ChanendAddress
from repro.sim import Frequency, Simulator
from repro.xs1.errors import ResourceError

if TYPE_CHECKING:
    from repro.xs1.chanend import Chanend


class Fabric(Protocol):
    """What a core requires of its interconnect."""

    def attach_chanend(self, chanend: "Chanend") -> None:
        """Register a channel end so it is addressable."""

    def notify_tx(self, chanend: "Chanend") -> None:
        """``chanend`` has tokens queued for transmission."""

    def notify_rx_space(self, chanend: "Chanend") -> None:
        """``chanend`` freed receive-buffer space (backpressure release)."""


class LoopbackFabric:
    """Direct chanend-to-chanend delivery with a fixed per-token latency.

    Models only the core-local path: one token moves from a transmit
    buffer to the destination's receive buffer every ``cycles_per_token``
    cycles of ``frequency``.  Destinations must be attached locally.
    """

    def __init__(
        self,
        sim: Simulator,
        frequency: Frequency | None = None,
        cycles_per_token: int = 1,
    ):
        self.sim = sim
        self.frequency = frequency or Frequency(500_000_000)
        self.cycles_per_token = cycles_per_token
        self._chanends: dict[ChanendAddress, "Chanend"] = {}
        self._active: deque["Chanend"] = deque()
        self._blocked: list["Chanend"] = []
        self._draining = False
        self.tokens_moved = 0

    def attach_chanend(self, chanend: "Chanend") -> None:
        """Register a channel end for local delivery."""
        self._chanends[chanend.address] = chanend

    def notify_tx(self, chanend: "Chanend") -> None:
        """Queue the chanend for draining."""
        if chanend not in self._active:
            self._active.append(chanend)
        self._schedule_drain()

    def notify_rx_space(self, chanend: "Chanend") -> None:
        """Retry senders that were blocked on a full receive buffer."""
        if self._blocked:
            for src in self._blocked:
                if src not in self._active:
                    self._active.append(src)
            self._blocked.clear()
            self._schedule_drain()

    def _schedule_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        delay = self.frequency.cycles_to_ps(self.cycles_per_token)
        self.sim.schedule(delay, self._drain)

    def _drain(self) -> None:
        self._draining = False
        # Move one token from each active chanend per drain tick.
        for _ in range(len(self._active)):
            src = self._active.popleft()
            if src.peek_tx() is None:
                continue
            if src.dest is None:
                raise ResourceError(f"{src.address}: token without destination")
            dest = self._chanends.get(src.dest)
            if dest is None:
                raise ResourceError(
                    f"{src.address}: destination {src.dest} not attached to "
                    "loopback fabric (use the network fabric for off-core sends)"
                )
            if dest.rx_space() <= 0:
                # Leave the token queued; retry when the receiver drains
                # (notify_rx_space) so backpressure reaches the sender.
                self._blocked.append(src)
                continue
            dest.deliver(src.pull_tx())
            self.tokens_moved += 1
            if src.peek_tx() is not None:
                self._active.append(src)
        if self._active:
            self._schedule_drain()
