"""Instruction execution semantics.

``execute`` carries out one instruction on behalf of a thread occupying an
issue slot.  Every instruction completes in that single slot (the XS1's
fixed completion time) except communication/lock instructions, which may
*pause* the thread; a paused instruction re-issues in full when the thread
is woken, so handlers must be written to retry idempotently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.network.header import CHANEND_TYPE, ChanendAddress
from repro.network.token import Token, control_token, data_token, tokens_to_word, word_to_tokens
from repro.xs1.errors import ResourceError, TrapError
from repro.xs1.isa import (
    RES_TYPE_CHANEND,
    RES_TYPE_LOCK,
    RES_TYPE_TIMER,
    Instruction,
)
from repro.xs1.registers import s32, u32
from repro.xs1.resources import TimerResource
from repro.xs1.thread import StepOutcome

if TYPE_CHECKING:
    from repro.xs1.chanend import Chanend
    from repro.xs1.core import XCore
    from repro.xs1.thread import IsaThread

_Handler = Callable[["XCore", "IsaThread", tuple[int, ...]], StepOutcome]
_HANDLERS: dict[str, _Handler] = {}


def _handler(mnemonic: str) -> Callable[[_Handler], _Handler]:
    def register(func: _Handler) -> _Handler:
        _HANDLERS[mnemonic] = func
        return func

    return register


def execute(core: "XCore", thread: "IsaThread", instruction: Instruction) -> StepOutcome:
    """Execute ``instruction`` for ``thread``; returns the slot outcome."""
    handler = _HANDLERS.get(instruction.mnemonic)
    if handler is None:
        raise TrapError(f"{thread.name}: unimplemented mnemonic {instruction.mnemonic!r}")
    outcome = handler(core, thread, instruction.args)
    if outcome is not StepOutcome.PAUSED:  # issued or halting both retire
        thread.instructions_executed += 1
        core.count_instruction(instruction.energy_class)
    return outcome


def _advance(thread: "IsaThread") -> StepOutcome:
    thread.pc += 1
    return StepOutcome.ISSUED


# ---------------------------------------------------------------------------
# ALU
# ---------------------------------------------------------------------------

def _binop(operation: Callable[[int, int], int]) -> _Handler:
    def run(core: "XCore", thread: "IsaThread", args: tuple[int, ...]) -> StepOutcome:
        rd, ra, rb = args
        thread.regs.write(rd, operation(thread.regs.read(ra), thread.regs.read(rb)))
        return _advance(thread)

    return run


def _binop_imm(operation: Callable[[int, int], int]) -> _Handler:
    def run(core: "XCore", thread: "IsaThread", args: tuple[int, ...]) -> StepOutcome:
        rd, ra, imm = args
        thread.regs.write(rd, operation(thread.regs.read(ra), imm))
        return _advance(thread)

    return run


_HANDLERS["add"] = _binop(lambda a, b: a + b)
_HANDLERS["sub"] = _binop(lambda a, b: a - b)
_HANDLERS["mul"] = _binop(lambda a, b: a * b)
_HANDLERS["and"] = _binop(lambda a, b: a & b)
_HANDLERS["or"] = _binop(lambda a, b: a | b)
_HANDLERS["xor"] = _binop(lambda a, b: a ^ b)
_HANDLERS["shl"] = _binop(lambda a, b: a << (b & 31))
_HANDLERS["shr"] = _binop(lambda a, b: a >> (b & 31))
_HANDLERS["ashr"] = _binop(lambda a, b: s32(a) >> (b & 31))
_HANDLERS["eq"] = _binop(lambda a, b: int(a == b))
_HANDLERS["lss"] = _binop(lambda a, b: int(s32(a) < s32(b)))
_HANDLERS["lsu"] = _binop(lambda a, b: int(a < b))
_HANDLERS["addi"] = _binop_imm(lambda a, imm: a + imm)
_HANDLERS["subi"] = _binop_imm(lambda a, imm: a - imm)
_HANDLERS["shli"] = _binop_imm(lambda a, imm: a << (imm & 31))
_HANDLERS["shri"] = _binop_imm(lambda a, imm: a >> (imm & 31))
_HANDLERS["eqi"] = _binop_imm(lambda a, imm: int(a == u32(imm)))


@_handler("divu")
def _divu(core, thread, args):
    rd, ra, rb = args
    divisor = thread.regs.read(rb)
    if divisor == 0:
        raise TrapError(f"{thread.name}: division by zero")
    thread.regs.write(rd, thread.regs.read(ra) // divisor)
    return _advance(thread)


@_handler("remu")
def _remu(core, thread, args):
    rd, ra, rb = args
    divisor = thread.regs.read(rb)
    if divisor == 0:
        raise TrapError(f"{thread.name}: remainder by zero")
    thread.regs.write(rd, thread.regs.read(ra) % divisor)
    return _advance(thread)


@_handler("ldc")
def _ldc(core, thread, args):
    rd, imm = args
    thread.regs.write(rd, imm)
    return _advance(thread)


@_handler("mov")
def _mov(core, thread, args):
    rd, rs = args
    thread.regs.write(rd, thread.regs.read(rs))
    return _advance(thread)


@_handler("mkmsk")
def _mkmsk(core, thread, args):
    rd, imm = args
    thread.regs.write(rd, (1 << (imm & 31)) - 1 if imm < 32 else 0xFFFF_FFFF)
    return _advance(thread)


@_handler("neg")
def _neg(core, thread, args):
    rd, rs = args
    thread.regs.write(rd, -thread.regs.read(rs))
    return _advance(thread)


@_handler("not")
def _not(core, thread, args):
    rd, rs = args
    thread.regs.write(rd, ~thread.regs.read(rs))
    return _advance(thread)


@_handler("sext")
def _sext(core, thread, args):
    rd, bits = args
    if not 1 <= bits <= 32:
        raise TrapError(f"{thread.name}: sext width {bits} outside 1..32")
    value = thread.regs.read(rd) & ((1 << bits) - 1)
    if value & (1 << (bits - 1)):
        value |= ~((1 << bits) - 1)
    thread.regs.write(rd, value)
    return _advance(thread)


@_handler("zext")
def _zext(core, thread, args):
    rd, bits = args
    if not 1 <= bits <= 32:
        raise TrapError(f"{thread.name}: zext width {bits} outside 1..32")
    thread.regs.write(rd, thread.regs.read(rd) & ((1 << bits) - 1))
    return _advance(thread)


@_handler("andnot")
def _andnot(core, thread, args):
    rd, rs = args
    thread.regs.write(rd, thread.regs.read(rd) & ~thread.regs.read(rs))
    return _advance(thread)


@_handler("clz")
def _clz(core, thread, args):
    rd, rs = args
    value = thread.regs.read(rs)
    thread.regs.write(rd, 32 - value.bit_length())
    return _advance(thread)


@_handler("byterev")
def _byterev(core, thread, args):
    rd, rs = args
    value = thread.regs.read(rs)
    thread.regs.write(rd, int.from_bytes(value.to_bytes(4, "little"), "big"))
    return _advance(thread)


@_handler("bitrev")
def _bitrev(core, thread, args):
    rd, rs = args
    value = thread.regs.read(rs)
    reversed_bits = 0
    for _ in range(32):
        reversed_bits = (reversed_bits << 1) | (value & 1)
        value >>= 1
    thread.regs.write(rd, reversed_bits)
    return _advance(thread)


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

@_handler("ldw")
def _ldw(core, thread, args):
    rd, ra, imm = args
    thread.regs.write(rd, core.memory.load_word(u32(thread.regs.read(ra) + imm * 4)))
    return _advance(thread)


@_handler("stw")
def _stw(core, thread, args):
    rs, ra, imm = args
    core.memory.store_word(u32(thread.regs.read(ra) + imm * 4), thread.regs.read(rs))
    return _advance(thread)


@_handler("ldb")
def _ldb(core, thread, args):
    rd, ra, imm = args
    thread.regs.write(rd, core.memory.load_byte(u32(thread.regs.read(ra) + imm)))
    return _advance(thread)


@_handler("stb")
def _stb(core, thread, args):
    rs, ra, imm = args
    core.memory.store_byte(u32(thread.regs.read(ra) + imm), thread.regs.read(rs))
    return _advance(thread)


@_handler("ldaw")
def _ldaw(core, thread, args):
    rd, ra, imm = args
    thread.regs.write(rd, thread.regs.read(ra) + imm * 4)
    return _advance(thread)


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------

@_handler("bu")
def _bu(core, thread, args):
    thread.pc = args[0]
    return StepOutcome.ISSUED


@_handler("bt")
def _bt(core, thread, args):
    rs, target = args
    if thread.regs.read(rs) != 0:
        thread.pc = target
        return StepOutcome.ISSUED
    return _advance(thread)


@_handler("bf")
def _bf(core, thread, args):
    rs, target = args
    if thread.regs.read(rs) == 0:
        thread.pc = target
        return StepOutcome.ISSUED
    return _advance(thread)


@_handler("bl")
def _bl(core, thread, args):
    thread.regs.write_named("lr", thread.pc + 1)
    thread.pc = args[0]
    return StepOutcome.ISSUED


@_handler("bru")
def _bru(core, thread, args):
    thread.pc = thread.regs.read(args[0])
    return StepOutcome.ISSUED


@_handler("ret")
def _ret(core, thread, args):
    thread.pc = thread.regs.read_named("lr")
    return StepOutcome.ISSUED


# ---------------------------------------------------------------------------
# Resources & communication
# ---------------------------------------------------------------------------

def _local_chanend(core: "XCore", resource_id: int, thread: "IsaThread") -> "Chanend":
    if resource_id & 0xFF != CHANEND_TYPE:
        raise TrapError(
            f"{thread.name}: resource {resource_id:#010x} is not a channel end"
        )
    address = ChanendAddress.decode(resource_id)
    if address.node != core.node_id:
        raise TrapError(
            f"{thread.name}: chanend {address} is not on node {core.node_id}"
        )
    chanend = core.chanend(address.index)
    if not chanend.allocated:
        raise TrapError(f"{thread.name}: chanend {address} not allocated")
    return chanend


@_handler("getr")
def _getr(core, thread, args):
    rd, res_type = args
    thread.regs.write(rd, core.allocate_resource(res_type))
    return _advance(thread)


@_handler("freer")
def _freer(core, thread, args):
    core.free_resource(thread.regs.read(args[0]))
    return _advance(thread)


@_handler("setd")
def _setd(core, thread, args):
    rs, rd = args
    chanend = _local_chanend(core, thread.regs.read(rs), thread)
    chanend.set_dest(ChanendAddress.decode(thread.regs.read(rd)))
    return _advance(thread)


@_handler("out")
def _out(core, thread, args):
    rs, rd = args
    resource_id = thread.regs.read(rs)
    if resource_id & 0xFF == RES_TYPE_LOCK:
        core.lock_for(resource_id, thread).release(thread)
        return _advance(thread)
    chanend = _local_chanend(core, resource_id, thread)
    tokens = word_to_tokens(thread.regs.read(rd))
    if chanend.tx_space() < len(tokens):
        chanend.wait_tx_space(thread, len(tokens))
        return StepOutcome.PAUSED
    chanend.push_tx(tokens)
    return _advance(thread)


@_handler("outt")
def _outt(core, thread, args):
    rs, rd = args
    chanend = _local_chanend(core, thread.regs.read(rs), thread)
    if chanend.tx_space() < 1:
        chanend.wait_tx_space(thread, 1)
        return StepOutcome.PAUSED
    chanend.push_tx([data_token(thread.regs.read(rd))])
    return _advance(thread)


@_handler("outct")
def _outct(core, thread, args):
    rs, code = args
    chanend = _local_chanend(core, thread.regs.read(rs), thread)
    if chanend.tx_space() < 1:
        chanend.wait_tx_space(thread, 1)
        return StepOutcome.PAUSED
    chanend.push_tx([control_token(code)])
    return _advance(thread)


def _in_chanend_word(chanend: "Chanend", thread: "IsaThread", rd: int) -> StepOutcome:
    from repro.network.token import TOKENS_PER_WORD

    if chanend.rx_available() < TOKENS_PER_WORD:
        chanend.wait_rx(thread, TOKENS_PER_WORD)
        return StepOutcome.PAUSED
    tokens: list[Token] = []
    for position in range(TOKENS_PER_WORD):
        head = chanend.rx[position]
        if head.is_control:
            raise TrapError(
                f"{thread.name}: control token {head} while receiving word data"
            )
        tokens.append(head)
    for _ in range(TOKENS_PER_WORD):
        chanend.pop_rx()
    thread.regs.write(rd, tokens_to_word(tokens))
    thread.pc += 1
    return StepOutcome.ISSUED


@_handler("in")
def _in(core, thread, args):
    rd, rs = args
    resource_id = thread.regs.read(rs)
    res_type = resource_id & 0xFF
    if res_type == RES_TYPE_CHANEND:
        return _in_chanend_word(_local_chanend(core, resource_id, thread), thread, rd)
    if res_type == RES_TYPE_TIMER:
        core.check_timer(resource_id, thread)
        thread.regs.write(rd, TimerResource.read(core.sim.now))
        return _advance(thread)
    if res_type == RES_TYPE_LOCK:
        lock = core.lock_for(resource_id, thread)
        if lock.try_acquire(thread):
            return _advance(thread)
        thread.pause(f"lock {lock.index}")
        return StepOutcome.PAUSED
    raise TrapError(f"{thread.name}: in from unsupported resource type {res_type}")


@_handler("intt")
def _intt(core, thread, args):
    rd, rs = args
    chanend = _local_chanend(core, thread.regs.read(rs), thread)
    if chanend.rx_available() < 1:
        chanend.wait_rx(thread, 1)
        return StepOutcome.PAUSED
    head = chanend.rx[0]
    if head.is_control:
        raise TrapError(f"{thread.name}: control token {head} on intt")
    chanend.pop_rx()
    thread.regs.write(rd, head.value)
    return _advance(thread)


@_handler("chkct")
def _chkct(core, thread, args):
    rs, code = args
    chanend = _local_chanend(core, thread.regs.read(rs), thread)
    if chanend.rx_available() < 1:
        chanend.wait_rx(thread, 1)
        return StepOutcome.PAUSED
    head = chanend.rx[0]
    if not head.is_control or head.value != code:
        raise TrapError(
            f"{thread.name}: chkct expected control token {code:#x}, found {head}"
        )
    chanend.pop_rx()
    return _advance(thread)


# ---------------------------------------------------------------------------
# Timing / misc
# ---------------------------------------------------------------------------

@_handler("gettime")
def _gettime(core, thread, args):
    thread.regs.write(args[0], core.cycle & 0xFFFF_FFFF)
    return _advance(thread)


@_handler("nop")
def _nop(core, thread, args):
    return _advance(thread)


@_handler("freet")
def _freet(core, thread, args):
    thread.halt()
    return StepOutcome.HALTED


# ---------------------------------------------------------------------------
# Events (XS1 event-driven I/O)
# ---------------------------------------------------------------------------

def _event_resource(core: "XCore", resource_id: int, thread: "IsaThread"):
    """The event-capable resource behind ``resource_id`` (chanend/timer)."""
    res_type = resource_id & 0xFF
    if res_type == RES_TYPE_CHANEND:
        return _local_chanend(core, resource_id, thread)
    if res_type == RES_TYPE_TIMER:
        return core.check_timer(resource_id, thread)
    raise TrapError(
        f"{thread.name}: resource type {res_type} does not support events"
    )


@_handler("setv")
def _setv(core, thread, args):
    rs, vector = args
    resource = _event_resource(core, thread.regs.read(rs), thread)
    resource.event_vector = vector
    return _advance(thread)


@_handler("eeu")
def _eeu(core, thread, args):
    resource = _event_resource(core, thread.regs.read(args[0]), thread)
    resource.event_enabled = True
    resource.event_thread = thread
    if resource not in thread.event_resources:
        thread.event_resources.append(resource)
    return _advance(thread)


@_handler("edu")
def _edu(core, thread, args):
    resource = _event_resource(core, thread.regs.read(args[0]), thread)
    resource.event_enabled = False
    if resource in thread.event_resources:
        thread.event_resources.remove(resource)
    return _advance(thread)


@_handler("clre")
def _clre(core, thread, args):
    for resource in thread.event_resources:
        resource.event_enabled = False
        resource.event_thread = None
    thread.event_resources.clear()
    return _advance(thread)


@_handler("tsetafter")
def _tsetafter(core, thread, args):
    rs, rd = args
    timer = core.check_timer(thread.regs.read(rs), thread)
    timer.after_ticks = thread.regs.read(rd)
    return _advance(thread)


def _ready_event(core: "XCore", thread: "IsaThread"):
    """The first enabled, ready event resource, if any."""
    from repro.xs1.chanend import Chanend
    from repro.xs1.resources import TimerResource

    for resource in thread.event_resources:
        if not resource.event_enabled:
            continue
        if isinstance(resource, Chanend) and resource.event_ready:
            return resource
        if isinstance(resource, TimerResource) and resource.event_ready(core.sim.now):
            return resource
    return None


@_handler("waiteu")
def _waiteu(core, thread, args):
    if not thread.event_resources:
        # Bare waiteu with no events: park until externally resumed
        # (kept for host-driven tests and legacy uses).
        thread.pc += 1
        thread.pause("waiteu")
        return StepOutcome.PAUSED
    ready = _ready_event(core, thread)
    if ready is not None:
        if ready.event_vector is None:
            raise TrapError(f"{thread.name}: event fired with no vector set")
        thread.pc = ready.event_vector
        return StepOutcome.ISSUED
    thread.pause("waiteu")
    thread.waiting_for_event = True
    from repro.xs1.resources import TimerResource

    for resource in thread.event_resources:
        if isinstance(resource, TimerResource):
            resource.schedule_event_wake(core.sim)
    return StepOutcome.PAUSED
