"""The XS1-L core model.

A core owns 64 KiB of single-cycle SRAM, up to eight hardware threads, and
a pool of channel-end/timer/lock resources.  Its scheduler reproduces the
four-stage pipeline behaviour behind the paper's Eq. 2: in each clock
cycle at most one thread issues, a given thread can issue at most once
every four cycles, and paused threads consume no slots.  Consequently

    IPS_thread = f / max(4, N_active)      IPS_core = f * min(4, N_active) / 4

emerge from the mechanism rather than being asserted — the Eq. 2 bench
measures them.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.network.header import CHANEND_TYPE, ChanendAddress
from repro.sim import Frequency, NullTracer, Simulator, TraceRecorder
from repro.xs1.assembler import Program
from repro.xs1.chanend import Chanend
from repro.xs1.errors import ResourceError, TrapError
from repro.xs1.fabric import Fabric
from repro.xs1.isa import (
    RES_TYPE_CHANEND,
    RES_TYPE_LOCK,
    RES_TYPE_TIMER,
    EnergyClass,
)
from repro.xs1.memory import Sram
from repro.xs1.resources import LockResource, TimerResource
from repro.xs1.thread import HardwareThread, IsaThread, StepOutcome, ThreadState


@dataclass
class CoreConfig:
    """Static configuration of one core."""

    frequency: Frequency = field(default_factory=lambda: Frequency(500_000_000))
    max_threads: int = 8
    num_chanends: int = 32
    num_timers: int = 10
    num_locks: int = 4
    sram_bytes: int = 64 * 1024


@dataclass
class CoreStats:
    """Execution statistics used by the energy model and the benches."""

    instructions: Counter = field(default_factory=Counter)
    slots_issued: int = 0
    slots_bubble: int = 0

    @property
    def total_instructions(self) -> int:
        """Total completed instructions across all energy classes."""
        return sum(self.instructions.values())


class XCore:
    """One XS1-L core: SRAM + threads + resources + issue scheduler."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        fabric: Fabric,
        config: CoreConfig | None = None,
        name: str | None = None,
        tracer: TraceRecorder | None = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.fabric = fabric
        self.config = config or CoreConfig()
        self.name = name or f"core{node_id}"
        self.tracer = tracer or NullTracer()
        self.memory = Sram(self.config.sram_bytes)
        self.threads: list[HardwareThread] = []
        self._chanends = [Chanend(self, i) for i in range(self.config.num_chanends)]
        self._timers = [TimerResource(i) for i in range(self.config.num_timers)]
        self._locks = [LockResource(i) for i in range(self.config.num_locks)]
        for chanend in self._chanends:
            fabric.attach_chanend(chanend)
        self.stats = CoreStats()
        self._rotation: deque[HardwareThread] = deque()
        self._ticking = False
        self._frequency = self.config.frequency
        self._voltage = 1.0
        self._cycle_anchor = 0
        self._anchor_time = sim.now
        self._loaded_programs: set[int] = set()
        self._next_tid = 0
        self.on_halt_callbacks: list[Callable[[HardwareThread], None]] = []
        self.frequency_listeners: list[Callable[["XCore"], None]] = []
        #: The thread currently holding the issue slot (set around each
        #: ``step()``), so resources it touches — chanends, the
        #: instruction counter — can attribute work to its causal span.
        self.current_thread: HardwareThread | None = None
        #: True once the core has been killed by a fault injection; a
        #: failed core accepts no new threads and runs no further slots.
        self.failed = False

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------

    @property
    def frequency(self) -> Frequency:
        """Current core clock."""
        return self._frequency

    def set_frequency(self, frequency: Frequency) -> None:
        """Dynamic frequency scaling (paper §III.B); takes effect now.

        Listeners in :attr:`frequency_listeners` (e.g. energy accounting)
        are notified *before* the change so they can close their current
        integration window at the old frequency.
        """
        for listener in self.frequency_listeners:
            listener(self)
        self._cycle_anchor = self.cycle
        self._anchor_time = self.sim.now
        self._frequency = frequency

    @property
    def voltage(self) -> float:
        """Current supply voltage (1.0 V on original Swallow boards)."""
        return self._voltage

    def set_voltage(self, voltage: float) -> None:
        """Voltage scaling — the full-DVFS extension of newer xCORE parts
        (paper §III.B).  Power scales with V^2 in the energy model; the
        caller is responsible for keeping V >= Vmin(f)
        (:func:`repro.energy.dvfs.min_voltage`)."""
        if voltage <= 0:
            raise ValueError(f"voltage must be positive, got {voltage}")
        for listener in self.frequency_listeners:
            listener(self)
        self._voltage = voltage

    def set_dvfs_operating_point(self, frequency: Frequency, voltage: float) -> None:
        """Atomically change frequency and voltage (one ledger window)."""
        if voltage <= 0:
            raise ValueError(f"voltage must be positive, got {voltage}")
        self.set_frequency(frequency)
        self._voltage = voltage

    @property
    def cycle(self) -> int:
        """Core clock cycles elapsed since construction."""
        elapsed = self.sim.now - self._anchor_time
        return self._cycle_anchor + elapsed // self._frequency.period_ps

    def _next_cycle_boundary(self) -> int:
        """Absolute time of the next clock edge strictly after now."""
        period = self._frequency.period_ps
        elapsed = self.sim.now - self._anchor_time
        return self._anchor_time + (elapsed // period + 1) * period

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------

    @property
    def active_threads(self) -> int:
        """Number of currently runnable threads (the N of Eq. 2)."""
        return sum(1 for t in self.threads if t.runnable)

    @property
    def live_threads(self) -> int:
        """Threads that have not halted."""
        return sum(1 for t in self.threads if not t.halted)

    @property
    def all_halted(self) -> bool:
        """True when every spawned thread has finished."""
        return all(t.halted for t in self.threads)

    def load_program(self, program: Program) -> None:
        """Copy a program's ``.data`` blocks into SRAM (once per program)."""
        if id(program) in self._loaded_programs:
            return
        for address, data in program.data_blocks:
            self.memory.write_block(address, data)
        self._loaded_programs.add(id(program))

    def fail(self) -> None:
        """Kill the core mid-run (fault injection, see :mod:`repro.faults`).

        Every live hardware thread halts immediately — whatever it was
        computing is lost — and the core refuses new work.  Tokens
        already delivered into its chanends stay buffered (nobody will
        read them); tasks managed by :class:`~repro.core.nos.NanoOS`
        should be re-placed *before* calling this (the runtime's
        ``handle_core_failure`` does both in the right order).
        Idempotent.
        """
        if self.failed:
            return
        self.failed = True
        for thread in self.threads:
            thread.halt()

    def spawn(
        self,
        program: Program,
        entry: str | int = "start",
        name: str | None = None,
        regs: dict[str, int] | None = None,
    ) -> IsaThread:
        """Start a hardware thread running ``program`` from ``entry``."""
        if self.failed:
            raise ResourceError(f"{self.name}: core has failed")
        if self.live_threads >= self.config.max_threads:
            raise ResourceError(
                f"{self.name}: all {self.config.max_threads} hardware threads in use"
            )
        self.load_program(program)
        pc = program.entry(entry) if isinstance(entry, str) else entry
        thread = IsaThread(self, self._next_tid, program, entry=pc, name=name)
        self._next_tid += 1
        for reg_name, value in (regs or {}).items():
            thread.regs.write_named(reg_name, value)
        self.threads.append(thread)
        self.on_thread_runnable(thread)
        return thread

    def add_thread(self, thread: HardwareThread) -> None:
        """Attach an externally built thread (behavioural threads use this)."""
        if self.failed:
            raise ResourceError(f"{self.name}: core has failed")
        if self.live_threads >= self.config.max_threads:
            raise ResourceError(
                f"{self.name}: all {self.config.max_threads} hardware threads in use"
            )
        self.threads.append(thread)
        self.on_thread_runnable(thread)

    def claim_tid(self) -> int:
        """Allocate the next thread id (for external thread constructors)."""
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- scheduler callbacks ------------------------------------------------

    def on_thread_runnable(self, thread: HardwareThread) -> None:
        """A thread became runnable; ensure the core is ticking."""
        if thread not in self._rotation:
            self._rotation.append(thread)
        self._ensure_ticking()

    def on_thread_paused(self, thread: HardwareThread) -> None:
        """A thread paused; drop it from the issue rotation."""
        try:
            self._rotation.remove(thread)
        except ValueError:
            pass

    def on_thread_halted(self, thread: HardwareThread) -> None:
        """A thread halted; drop it and fire completion callbacks."""
        try:
            self._rotation.remove(thread)
        except ValueError:
            pass
        for callback in self.on_halt_callbacks:
            callback(thread)

    def _ensure_ticking(self) -> None:
        if self._ticking or not self._rotation:
            return
        self._ticking = True
        self.sim.schedule_at(self._next_cycle_boundary(), self._tick)

    def _tick(self) -> None:
        self._ticking = False
        if not self._rotation:
            return
        issued = False
        cycle = self.cycle
        for _ in range(len(self._rotation)):
            thread = self._rotation[0]
            self._rotation.rotate(-1)
            if thread.next_issue_cycle > cycle:
                continue
            self.current_thread = thread
            try:
                outcome = thread.step()
            finally:
                self.current_thread = None
            if outcome is not StepOutcome.PAUSED:  # issued or retired-and-halted
                thread.next_issue_cycle = cycle + HardwareThread.PIPELINE_DEPTH
                self.stats.slots_issued += 1
                self.tracer.record(self.sim.now, self.name, "issue", thread.name)
            issued = True
            break
        if not issued:
            self.stats.slots_bubble += 1
        self._ensure_ticking()

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------

    def chanend(self, index: int) -> Chanend:
        """The channel end with local index ``index``."""
        try:
            return self._chanends[index]
        except IndexError:
            raise ResourceError(f"{self.name}: no chanend {index}") from None

    def chanends(self) -> Iterable[Chanend]:
        """All channel ends (allocated or not)."""
        return iter(self._chanends)

    def allocate_chanend(self) -> Chanend:
        """Claim a free channel end (host-level helper and ``getr`` backend)."""
        for chanend in self._chanends:
            if not chanend.allocated:
                chanend.allocated = True
                return chanend
        raise ResourceError(f"{self.name}: out of channel ends")

    def allocate_resource(self, res_type: int) -> int:
        """``getr``: claim a resource, returning its 32-bit identifier."""
        if res_type == RES_TYPE_CHANEND:
            return self.allocate_chanend().address.encode()
        if res_type == RES_TYPE_TIMER:
            for timer in self._timers:
                if not timer.allocated:
                    timer.allocated = True
                    return self._encode_resource(timer.index, RES_TYPE_TIMER)
            raise ResourceError(f"{self.name}: out of timers")
        if res_type == RES_TYPE_LOCK:
            for lock in self._locks:
                if not lock.allocated:
                    lock.allocated = True
                    return self._encode_resource(lock.index, RES_TYPE_LOCK)
            raise ResourceError(f"{self.name}: out of locks")
        raise TrapError(f"{self.name}: getr of unsupported resource type {res_type}")

    def free_resource(self, resource_id: int) -> None:
        """``freer``: release a previously allocated resource."""
        res_type = resource_id & 0xFF
        index = (resource_id >> 8) & 0xFF
        if res_type == RES_TYPE_CHANEND:
            chanend = self.chanend(index)
            chanend.allocated = False
            chanend.reset()
        elif res_type == RES_TYPE_TIMER:
            self._timer_at(index).allocated = False
        elif res_type == RES_TYPE_LOCK:
            lock = self._lock_at(index)
            lock.allocated = False
            lock.holder = None
            lock.waiters.clear()
        else:
            raise TrapError(f"{self.name}: freer of unsupported resource {resource_id:#x}")

    def _encode_resource(self, index: int, res_type: int) -> int:
        return (self.node_id << 16) | (index << 8) | res_type

    def _timer_at(self, index: int) -> TimerResource:
        try:
            return self._timers[index]
        except IndexError:
            raise ResourceError(f"{self.name}: no timer {index}") from None

    def _lock_at(self, index: int) -> LockResource:
        try:
            return self._locks[index]
        except IndexError:
            raise ResourceError(f"{self.name}: no lock {index}") from None

    def check_timer(self, resource_id: int, thread: HardwareThread) -> TimerResource:
        """Validate a timer resource id for ``in``; returns the timer."""
        timer = self._timer_at((resource_id >> 8) & 0xFF)
        if not timer.allocated:
            raise TrapError(f"{thread.name}: timer {timer.index} not allocated")
        return timer

    def lock_for(self, resource_id: int, thread: HardwareThread) -> LockResource:
        """Validate a lock resource id; returns the lock."""
        lock = self._lock_at((resource_id >> 8) & 0xFF)
        if not lock.allocated:
            raise TrapError(f"{thread.name}: lock {lock.index} not allocated")
        return lock

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def count_instruction(self, energy_class: EnergyClass) -> None:
        """Record one completed instruction for the energy model."""
        self.stats.instructions[energy_class] += 1
        thread = self.current_thread
        if thread is not None and thread.span is not None:
            thread.span.count_instruction(self.node_id)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.checkpoint)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Canonical core state for a checkpoint bundle.

        Covers clocking, failure status, execution statistics, every
        spawned thread (delegated to the thread's own hook), the SRAM
        digest, and every *active* chanend — allocated, buffering, or
        counting traffic; untouched chanends are omitted to keep bundles
        proportional to activity, and their absence is itself verified
        (an extra active chanend after replay fails the comparison).
        """
        return {
            "node": self.node_id,
            "name": self.name,
            "failed": self.failed,
            "frequency_hz": self._frequency.hz,
            "voltage": self._voltage,
            "next_tid": self._next_tid,
            "ticking": self._ticking,
            "stats": {
                "slots_issued": self.stats.slots_issued,
                "slots_bubble": self.stats.slots_bubble,
                "instructions": {
                    cls.value: self.stats.instructions[cls]
                    for cls in sorted(self.stats.instructions,
                                      key=lambda c: c.value)
                },
            },
            "memory": self.memory.snapshot_state(),
            "threads": [thread.snapshot_state() for thread in self.threads],
            "chanends": {
                str(ce.index): ce.snapshot_state()
                for ce in self._chanends
                if ce.allocated or ce.rx or ce.tx
                or ce.tokens_sent or ce.tokens_received
            },
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed core against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, self.name)

    def register_metrics(self, registry) -> None:
        """Publish this core's execution series (lazily collected).

        One ``core.instructions{node=...,opcode_class=...}`` series per
        energy class actually executed, plus issue-slot counters
        (``core.slots_issued``, ``core.slots_bubble``), the scheduler
        gauges (``core.active_threads``, ``core.live_threads``) and the
        blocking counter ``core.thread_pauses``.
        """
        node = str(self.node_id)

        def _collect(emit) -> None:
            labels = {"node": node}
            for energy_class in sorted(self.stats.instructions,
                                       key=lambda c: c.value):
                emit(
                    "core.instructions",
                    {"node": node, "opcode_class": energy_class.value},
                    self.stats.instructions[energy_class],
                )
            emit("core.slots_issued", labels, self.stats.slots_issued)
            emit("core.slots_bubble", labels, self.stats.slots_bubble)
            emit("core.active_threads", labels, self.active_threads)
            emit("core.live_threads", labels, self.live_threads)
            emit("core.thread_pauses", labels,
                 sum(thread.pauses for thread in self.threads))
            emit("core.frequency_hz", labels, self._frequency.hz)

        registry.register_collector(_collect)

    def __repr__(self) -> str:
        return (
            f"<XCore {self.name} node={self.node_id} f={self._frequency} "
            f"threads={len(self.threads)}>"
        )
