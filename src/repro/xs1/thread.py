"""Hardware threads.

An XS1-L core schedules up to eight hardware threads with zero
context-switch overhead; a thread occupies a pipeline issue slot only when
it is runnable, and a *paused* thread (blocked on channel input/output, a
lock, or an explicit wait) costs nothing.  This gives the paper's Eq. 2:

    IPS_thread = f / max(4, N_active)
    IPS_core   = f * min(4, N_active) / 4

The base class carries scheduling state; :class:`IsaThread` executes
assembled programs and :class:`~repro.xs1.behavioral.BehavioralThread`
executes Python coroutines with the same timing rules.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

from repro.xs1.errors import TrapError
from repro.xs1.registers import RegisterFile

if TYPE_CHECKING:
    from repro.xs1.assembler import Program
    from repro.xs1.core import XCore


class ThreadState(Enum):
    """Lifecycle states of a hardware thread."""

    RUNNABLE = "runnable"
    PAUSED = "paused"
    HALTED = "halted"


class StepOutcome(Enum):
    """Result of giving a thread one issue slot."""

    ISSUED = "issued"      # an instruction issued; pc already updated
    PAUSED = "paused"      # the instruction blocked; it will re-issue on wake
    HALTED = "halted"      # the thread has finished


class HardwareThread:
    """Scheduling state common to ISA and behavioural threads."""

    #: Minimum cycles between issues of the same thread (4-stage pipeline).
    PIPELINE_DEPTH = 4

    def __init__(self, core: "XCore", tid: int, name: str | None = None):
        self.core = core
        self.tid = tid
        self.name = name or f"{core.name}.t{tid}"
        self.state = ThreadState.RUNNABLE
        self.regs = RegisterFile()
        self.next_issue_cycle = 0
        self.instructions_executed = 0
        self.pause_reason: str | None = None
        #: Times this thread blocked (channel, lock, wait) — an
        #: observability counter surfaced as ``core.thread_pauses``.
        self.pauses = 0
        #: True while blocked in ``waiteu`` awaiting an enabled event.
        self.waiting_for_event = False
        #: Resources whose events this thread has enabled (``eeu``).
        self.event_resources: list = []
        #: Active causal span (:mod:`repro.obs.spans`); instructions this
        #: thread issues and tokens it sends are charged to it.
        self.span = None

    @property
    def runnable(self) -> bool:
        """True when the thread may be given issue slots."""
        return self.state is ThreadState.RUNNABLE

    @property
    def halted(self) -> bool:
        """True once the thread has finished."""
        return self.state is ThreadState.HALTED

    def pause(self, reason: str) -> None:
        """Block the thread; it stops consuming issue slots."""
        if self.state is ThreadState.HALTED:
            raise TrapError(f"{self.name}: cannot pause a halted thread")
        self.state = ThreadState.PAUSED
        self.pause_reason = reason
        self.pauses += 1
        self.core.on_thread_paused(self)

    def resume(self) -> None:
        """Make the thread runnable again (idempotent for runnable threads)."""
        if self.state is ThreadState.HALTED:
            return
        if self.state is ThreadState.RUNNABLE:
            return
        self.state = ThreadState.RUNNABLE
        self.pause_reason = None
        self.core.on_thread_runnable(self)

    def halt(self) -> None:
        """Finish the thread permanently."""
        if self.state is ThreadState.HALTED:
            return
        self.state = ThreadState.HALTED
        self.pause_reason = None
        if self.span is not None:
            self.span.finish(self.core.sim.now)
        self.core.on_thread_halted(self)

    def take_event(self, vector: int | None) -> None:
        """An enabled event fired while waiting: dispatch to its vector."""
        if not self.waiting_for_event:
            return
        self.waiting_for_event = False
        self.resume()

    def step(self) -> StepOutcome:
        """Consume one issue slot.  Implemented by subclasses."""
        raise NotImplementedError

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical scheduling state for a checkpoint bundle.

        Subclasses extend this with their program state; behavioural
        threads cannot serialize their generator frame, which is exactly
        why restore replays the workload instead of unpickling it — the
        replayed thread must then match this dict field for field.
        """
        return {
            "kind": "thread",
            "tid": self.tid,
            "name": self.name,
            "state": self.state.value,
            "pause_reason": self.pause_reason,
            "instructions_executed": self.instructions_executed,
            "pauses": self.pauses,
            "next_issue_cycle": self.next_issue_cycle,
            "waiting_for_event": self.waiting_for_event,
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed thread against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, self.name)


class IsaThread(HardwareThread):
    """A hardware thread executing an assembled :class:`Program`."""

    def __init__(
        self,
        core: "XCore",
        tid: int,
        program: "Program",
        entry: int = 0,
        name: str | None = None,
    ):
        super().__init__(core, tid, name)
        self.program = program
        self.pc = entry

    def take_event(self, vector: int | None) -> None:
        """Dispatch to the event vector: the next issue starts there."""
        if not self.waiting_for_event:
            return
        if vector is None:
            raise TrapError(f"{self.name}: event fired with no vector set")
        self.pc = vector
        super().take_event(vector)

    def snapshot_state(self) -> dict:
        """Scheduling state plus the architectural state: pc + registers."""
        state = super().snapshot_state()
        state["kind"] = "isa"
        state["pc"] = self.pc
        state["program"] = self.program.name
        state["regs"] = self.regs.snapshot()
        return state

    def step(self) -> StepOutcome:
        """Fetch and execute the instruction at ``pc``."""
        from repro.xs1.executor import execute

        if self.pc < 0 or self.pc >= len(self.program.instructions):
            raise TrapError(
                f"{self.name}: pc {self.pc} outside program "
                f"{self.program.name!r} of {len(self.program.instructions)} instructions"
            )
        instruction = self.program.instructions[self.pc]
        return execute(self.core, self, instruction)
