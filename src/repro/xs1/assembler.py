"""Two-pass assembler for the XS1-style instruction subset.

Source syntax::

    # comment               ; also a comment
    .equ  N, 16             # named constant
    .data 0x100             # set the data cursor (byte address in SRAM)
    .word 1, 2, 3           # emit 32-bit words at the data cursor
    .space 64               # reserve zeroed bytes

    start:                  # label (instruction index)
        ldc   r0, N
    loop:
        subi  r0, r0, 1
        bt    r0, loop
        freet

Labels resolve to instruction indices (the model's program counter is an
instruction index, not a byte address); the ``.data`` section assembles
into SRAM initialisation blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xs1.errors import AssemblerError
from repro.xs1.isa import INSTRUCTION_SET, Instruction, Operand
from repro.xs1.registers import REGISTER_INDEX


@dataclass
class Program:
    """An assembled program: instructions, symbols, and SRAM data blocks."""

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)
    data_blocks: list[tuple[int, bytes]] = field(default_factory=list)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def entry(self, label: str = "start") -> int:
        """Instruction index of ``label`` (defaults to ``start``, else 0)."""
        if label in self.labels:
            return self.labels[label]
        if label == "start":
            return 0
        raise AssemblerError(f"unknown entry label {label!r}")

    def disassemble(self) -> str:
        """Human-readable listing with labels re-inserted."""
        by_index: dict[int, list[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines = []
        for i, instr in enumerate(self.instructions):
            for name in sorted(by_index.get(i, [])):
                lines.append(f"{name}:")
            lines.append(f"    {instr}")
        return "\n".join(lines)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> list[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",")]


class Assembler:
    """Two-pass assembler producing :class:`Program` objects."""

    def __init__(self) -> None:
        self._constants: dict[str, int] = {}

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        self._constants = {}
        statements = self._first_pass(source)
        labels = {lbl: idx for lbl, idx in statements["labels"].items()}
        instructions = [
            self._encode(mnemonic, operands, labels, line_no)
            for mnemonic, operands, line_no in statements["code"]
        ]
        return Program(
            instructions=instructions,
            labels=labels,
            constants=dict(self._constants),
            data_blocks=statements["data"],
            name=name,
        )

    # -- pass 1: labels, directives, raw statements ----------------------

    def _first_pass(self, source: str) -> dict:
        labels: dict[str, int] = {}
        code: list[tuple[str, list[str], int]] = []
        data: list[tuple[int, bytes]] = []
        data_cursor: int | None = None
        pending: bytearray = bytearray()
        pending_base = 0

        def flush_data() -> None:
            nonlocal pending, pending_base
            if pending:
                data.append((pending_base, bytes(pending)))
                pending = bytearray()

        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            while ":" in line.split()[0] if line else False:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblerError(f"invalid label {label!r}", line_no)
                if label in labels:
                    raise AssemblerError(f"duplicate label {label!r}", line_no)
                labels[label] = len(code)
                line = rest.strip()
                if not line:
                    break
            if not line:
                continue
            parts = line.split(None, 1)
            head = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""
            if head == ".equ":
                operands = _split_operands(rest)
                if len(operands) != 2:
                    raise AssemblerError(".equ expects: .equ NAME, value", line_no)
                name, value = operands
                if not name.isidentifier():
                    raise AssemblerError(f"invalid constant name {name!r}", line_no)
                self._constants[name] = self._parse_int(value, line_no)
            elif head == ".data":
                flush_data()
                data_cursor = self._parse_int(rest.strip(), line_no)
                pending_base = data_cursor
            elif head == ".word":
                if data_cursor is None:
                    raise AssemblerError(".word before .data directive", line_no)
                for item in _split_operands(rest):
                    value = self._parse_int(item, line_no)
                    pending.extend((value & 0xFFFF_FFFF).to_bytes(4, "little"))
                    data_cursor += 4
            elif head == ".space":
                if data_cursor is None:
                    raise AssemblerError(".space before .data directive", line_no)
                count = self._parse_int(rest.strip(), line_no)
                if count < 0:
                    raise AssemblerError(".space count must be non-negative", line_no)
                pending.extend(bytes(count))
                data_cursor += count
            elif head == ".byte":
                if data_cursor is None:
                    raise AssemblerError(".byte before .data directive", line_no)
                for item in _split_operands(rest):
                    pending.append(self._parse_int(item, line_no) & 0xFF)
                    data_cursor += 1
            elif head == ".ascii":
                if data_cursor is None:
                    raise AssemblerError(".ascii before .data directive", line_no)
                text = rest.strip()
                if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                    raise AssemblerError('.ascii expects a "quoted" string', line_no)
                encoded = text[1:-1].encode("ascii")
                pending.extend(encoded)
                data_cursor += len(encoded)
            elif head.startswith("."):
                raise AssemblerError(f"unknown directive {head!r}", line_no)
            else:
                code.append((head, _split_operands(rest), line_no))
        flush_data()
        return {"labels": labels, "code": code, "data": data}

    # -- pass 2: encode ----------------------------------------------------

    def _encode(
        self,
        mnemonic: str,
        operands: list[str],
        labels: dict[str, int],
        line_no: int,
    ) -> Instruction:
        spec = INSTRUCTION_SET.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
        if len(operands) != len(spec.operands):
            raise AssemblerError(
                f"{mnemonic} expects {len(spec.operands)} operands, got {len(operands)}",
                line_no,
            )
        args = []
        for kind, text in zip(spec.operands, operands):
            if kind is Operand.REG:
                index = REGISTER_INDEX.get(text.lower())
                if index is None:
                    raise AssemblerError(f"unknown register {text!r}", line_no)
                args.append(index)
            elif kind is Operand.LABEL:
                if text not in labels:
                    raise AssemblerError(f"unknown label {text!r}", line_no)
                args.append(labels[text])
            else:
                args.append(self._parse_int(text, line_no))
        return Instruction(spec, tuple(args))

    def _parse_int(self, text: str, line_no: int) -> int:
        text = text.strip()
        if not text:
            raise AssemblerError("empty operand", line_no)
        if text in self._constants:
            return self._constants[text]
        if len(text) == 3 and text[0] == text[2] == "'":
            return ord(text[1])
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblerError(f"cannot parse integer {text!r}", line_no) from None


def assemble(source: str, name: str = "program") -> Program:
    """Convenience one-shot assembly of ``source``."""
    return Assembler().assemble(source, name=name)
