"""Instruction-set definition for the XS1-style core model.

This is a faithful *subset* of the XS1 ISA: three-operand register
arithmetic, single-cycle loads/stores, branches, and the ISA-level
networking primitives (``getr``/``setd``/``out``/``in``/``outt``/``intt``/
``outct``/``chkct``) that the Swallow paper highlights as a key
characteristic of the architecture.

Instructions are kept as structured objects rather than encoded binaries;
the program counter is an instruction index.  Every instruction issues in
exactly one pipeline slot (fixed completion time — the property Eq. 2 of
the paper relies on); communication instructions may *pause* the issuing
thread, during which it occupies no slots.

Each mnemonic carries an energy class used by the instruction-level energy
model (:mod:`repro.energy.instruction_energy`), following the per-class
profiling approach of Kerrison & Eder (paper ref. [4]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.xs1.errors import AssemblerError


class Operand(Enum):
    """Operand kinds accepted by the assembler."""

    REG = "reg"        # register name, e.g. r3 / sp / lr
    IMM = "imm"        # integer immediate (decimal, hex, or char)
    LABEL = "label"    # code label, resolved to an instruction index


class EnergyClass(Enum):
    """Instruction energy classes for the Kerrison-style energy model."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"
    BRANCH = "branch"
    COMM = "comm"
    RESOURCE = "resource"
    NOP = "nop"


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    operands: tuple[Operand, ...]
    energy_class: EnergyClass
    description: str


def _spec(mnemonic: str, operands: tuple[Operand, ...], energy: EnergyClass,
          description: str) -> InstructionSpec:
    return InstructionSpec(mnemonic, operands, energy, description)


_R = Operand.REG
_I = Operand.IMM
_L = Operand.LABEL

#: The instruction registry: mnemonic -> spec.
INSTRUCTION_SET: dict[str, InstructionSpec] = {
    spec.mnemonic: spec
    for spec in [
        # -- data movement / constants ---------------------------------
        _spec("ldc", (_R, _I), EnergyClass.ALU, "rd = imm"),
        _spec("mov", (_R, _R), EnergyClass.ALU, "rd = rs"),
        _spec("mkmsk", (_R, _I), EnergyClass.ALU, "rd = (1 << imm) - 1"),
        # -- arithmetic / logic -----------------------------------------
        _spec("add", (_R, _R, _R), EnergyClass.ALU, "rd = ra + rb"),
        _spec("sub", (_R, _R, _R), EnergyClass.ALU, "rd = ra - rb"),
        _spec("mul", (_R, _R, _R), EnergyClass.MUL, "rd = ra * rb (low 32)"),
        _spec("divu", (_R, _R, _R), EnergyClass.DIV, "rd = ra / rb (unsigned; traps on 0)"),
        _spec("remu", (_R, _R, _R), EnergyClass.DIV, "rd = ra % rb (unsigned; traps on 0)"),
        _spec("and", (_R, _R, _R), EnergyClass.ALU, "rd = ra & rb"),
        _spec("or", (_R, _R, _R), EnergyClass.ALU, "rd = ra | rb"),
        _spec("xor", (_R, _R, _R), EnergyClass.ALU, "rd = ra ^ rb"),
        _spec("shl", (_R, _R, _R), EnergyClass.ALU, "rd = ra << (rb & 31)"),
        _spec("shr", (_R, _R, _R), EnergyClass.ALU, "rd = ra >> (rb & 31) logical"),
        _spec("ashr", (_R, _R, _R), EnergyClass.ALU, "rd = ra >> (rb & 31) arithmetic"),
        _spec("addi", (_R, _R, _I), EnergyClass.ALU, "rd = ra + imm"),
        _spec("subi", (_R, _R, _I), EnergyClass.ALU, "rd = ra - imm"),
        _spec("shli", (_R, _R, _I), EnergyClass.ALU, "rd = ra << imm"),
        _spec("shri", (_R, _R, _I), EnergyClass.ALU, "rd = ra >> imm logical"),
        _spec("neg", (_R, _R), EnergyClass.ALU, "rd = -rs"),
        _spec("not", (_R, _R), EnergyClass.ALU, "rd = ~rs"),
        _spec("sext", (_R, _I), EnergyClass.ALU, "sign-extend rd from bit imm"),
        _spec("zext", (_R, _I), EnergyClass.ALU, "zero-extend rd from bit imm"),
        _spec("andnot", (_R, _R), EnergyClass.ALU, "rd = rd & ~rs"),
        _spec("clz", (_R, _R), EnergyClass.ALU, "rd = count leading zeros of rs"),
        _spec("byterev", (_R, _R), EnergyClass.ALU, "rd = byte-reversed rs"),
        _spec("bitrev", (_R, _R), EnergyClass.ALU, "rd = bit-reversed rs"),
        # -- comparisons --------------------------------------------------
        _spec("eq", (_R, _R, _R), EnergyClass.ALU, "rd = (ra == rb)"),
        _spec("eqi", (_R, _R, _I), EnergyClass.ALU, "rd = (ra == imm)"),
        _spec("lss", (_R, _R, _R), EnergyClass.ALU, "rd = (ra < rb) signed"),
        _spec("lsu", (_R, _R, _R), EnergyClass.ALU, "rd = (ra < rb) unsigned"),
        # -- memory (single-cycle SRAM) -----------------------------------
        _spec("ldw", (_R, _R, _I), EnergyClass.MEM_LOAD, "rd = mem[ra + imm*4]"),
        _spec("stw", (_R, _R, _I), EnergyClass.MEM_STORE, "mem[ra + imm*4] = rs"),
        _spec("ldb", (_R, _R, _I), EnergyClass.MEM_LOAD, "rd = mem8[ra + imm]"),
        _spec("stb", (_R, _R, _I), EnergyClass.MEM_STORE, "mem8[ra + imm] = rs"),
        _spec("ldaw", (_R, _R, _I), EnergyClass.ALU, "rd = ra + imm*4 (address of word)"),
        # -- control flow --------------------------------------------------
        _spec("bu", (_L,), EnergyClass.BRANCH, "pc = label"),
        _spec("bt", (_R, _L), EnergyClass.BRANCH, "if rs != 0: pc = label"),
        _spec("bf", (_R, _L), EnergyClass.BRANCH, "if rs == 0: pc = label"),
        _spec("bl", (_L,), EnergyClass.BRANCH, "lr = pc + 1; pc = label"),
        _spec("bru", (_R,), EnergyClass.BRANCH, "pc = rs (computed branch)"),
        _spec("ret", (), EnergyClass.BRANCH, "pc = lr"),
        # -- resources & networking (ISA-level primitives, paper SIV-A) ----
        _spec("getr", (_R, _I), EnergyClass.RESOURCE, "rd = id of fresh resource of type imm"),
        _spec("freer", (_R,), EnergyClass.RESOURCE, "release resource rs"),
        _spec("setd", (_R, _R), EnergyClass.RESOURCE, "set destination of chanend rs to rd"),
        _spec("out", (_R, _R), EnergyClass.COMM, "output 32-bit word rd via chanend rs"),
        _spec("in", (_R, _R), EnergyClass.COMM, "input 32-bit word into rd via chanend rs"),
        _spec("outt", (_R, _R), EnergyClass.COMM, "output one data token (rd & 0xff)"),
        _spec("intt", (_R, _R), EnergyClass.COMM, "input one data token into rd"),
        _spec("outct", (_R, _I), EnergyClass.COMM, "output control token imm"),
        _spec("chkct", (_R, _I), EnergyClass.COMM, "consume expected control token imm"),
        # -- events (XS1 event-driven I/O) -----------------------------------
        _spec("setv", (_R, _L), EnergyClass.RESOURCE, "set event vector of resource rs"),
        _spec("eeu", (_R,), EnergyClass.RESOURCE, "enable events on resource rs"),
        _spec("edu", (_R,), EnergyClass.RESOURCE, "disable events on resource rs"),
        _spec("clre", (), EnergyClass.RESOURCE, "disable all of the thread's events"),
        _spec("tsetafter", (_R, _R), EnergyClass.RESOURCE,
              "arm timer rs to fire once the reference clock reaches rd"),
        _spec("waiteu", (), EnergyClass.NOP,
              "wait for an enabled event; dispatch to its vector"),
        # -- timing ---------------------------------------------------------
        _spec("gettime", (_R,), EnergyClass.RESOURCE, "rd = core cycle counter (low 32)"),
        # -- threads / misc --------------------------------------------------
        _spec("freet", (), EnergyClass.NOP, "halt the executing thread"),
        _spec("nop", (), EnergyClass.NOP, "no operation"),
    ]
}


#: Resource type codes used by ``getr`` (matching XS1 conventions).
RES_TYPE_PORT = 0
RES_TYPE_TIMER = 1
RES_TYPE_CHANEND = 2
RES_TYPE_LOCK = 3

#: Control-token codes (XS1 conventions).  END closes a network route.
CT_END = 0x01
CT_PAUSE = 0x02
CT_ACK = 0x03
CT_NACK = 0x04


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: a spec plus resolved operand values.

    Register operands hold register-file indices; label operands hold the
    resolved target instruction index; immediates hold their value.
    """

    spec: InstructionSpec
    args: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.args) != len(self.spec.operands):
            raise AssemblerError(
                f"{self.spec.mnemonic} expects {len(self.spec.operands)} operands, "
                f"got {len(self.args)}"
            )

    @property
    def mnemonic(self) -> str:
        """The instruction mnemonic."""
        return self.spec.mnemonic

    @property
    def energy_class(self) -> EnergyClass:
        """Energy class for the instruction energy model."""
        return self.spec.energy_class

    def __str__(self) -> str:
        parts = []
        for kind, value in zip(self.spec.operands, self.args):
            if kind is Operand.REG:
                from repro.xs1.registers import REGISTER_NAME

                parts.append(REGISTER_NAME.get(value, f"r?{value}"))
            else:
                parts.append(str(value))
        return f"{self.mnemonic} {', '.join(parts)}".strip()
