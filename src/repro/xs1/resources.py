"""Timer and lock resources.

XS1 cores expose hardware resources through the same ``getr``/``freer``/
``in``/``out`` instructions as channels.  We model the two Swallow
programs actually need:

* **timers** — reading one returns the 100 MHz reference-clock count, the
  architecture's time base (reads are non-blocking);
* **locks** — ``in`` acquires (pausing the thread while held elsewhere),
  ``out`` releases, waking waiters FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim import PS_PER_S
from repro.xs1.errors import ResourceError

if TYPE_CHECKING:
    from repro.xs1.thread import HardwareThread

#: XS1 reference clock (100 MHz) — the timebase returned by timer reads.
REF_CLOCK_HZ = 100_000_000
_REF_TICK_PS = PS_PER_S // REF_CLOCK_HZ


class TimerResource:
    """A free-running 32-bit timer on the 100 MHz reference clock.

    Supports XS1-style events: arm a compare value with ``tsetafter``,
    enable with ``eeu``, and ``waiteu`` dispatches to the vector once the
    reference clock passes the compare value.
    """

    def __init__(self, index: int):
        self.index = index
        self.allocated = False
        self.event_vector: int | None = None
        self.event_enabled = False
        self.event_thread = None
        self.after_ticks: int | None = None

    @staticmethod
    def read(time_ps: int) -> int:
        """Reference-clock ticks at simulation time ``time_ps`` (low 32 bits)."""
        return (time_ps // _REF_TICK_PS) & 0xFFFF_FFFF

    @staticmethod
    def ticks_to_ps(ticks: int) -> int:
        """Simulation time at which the reference clock reads ``ticks``."""
        return ticks * _REF_TICK_PS

    def event_ready(self, time_ps: int) -> bool:
        """True once the reference clock has reached the compare value."""
        if self.after_ticks is None:
            return False
        return self.read(time_ps) >= self.after_ticks

    def schedule_event_wake(self, sim) -> None:
        """Arrange a wake-up at the compare time (if armed and future)."""
        if self.after_ticks is None or not self.event_enabled:
            return
        target_ps = self.ticks_to_ps(self.after_ticks)
        delay = max(0, target_ps - sim.now)
        sim.schedule(delay, self._maybe_fire)

    def _maybe_fire(self) -> None:
        thread = self.event_thread
        if (
            self.event_enabled
            and thread is not None
            and getattr(thread, "waiting_for_event", False)
            and self.event_ready(thread.core.sim.now)
        ):
            thread.take_event(self.event_vector)


class LockResource:
    """A hardware lock: ``in`` acquires, ``out`` releases, FIFO waiters."""

    def __init__(self, index: int):
        self.index = index
        self.allocated = False
        self.holder: "HardwareThread | None" = None
        self.waiters: deque["HardwareThread"] = deque()
        self.acquisitions = 0

    def try_acquire(self, thread: "HardwareThread") -> bool:
        """Acquire if free (or already held by ``thread``); else queue."""
        if self.holder is None or self.holder is thread:
            first_acquire = self.holder is None
            self.holder = thread
            if first_acquire:
                self.acquisitions += 1
            return True
        if thread not in self.waiters:
            self.waiters.append(thread)
        return False

    def release(self, thread: "HardwareThread") -> None:
        """Release; the oldest waiter (if any) becomes the holder."""
        if self.holder is not thread:
            raise ResourceError(
                f"lock {self.index}: released by {thread.name} but held by "
                f"{self.holder.name if self.holder else 'nobody'}"
            )
        if self.waiters:
            next_holder = self.waiters.popleft()
            self.holder = next_holder
            self.acquisitions += 1
            next_holder.resume()
        else:
            self.holder = None
