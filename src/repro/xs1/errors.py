"""Exception types for the XS1 processor model."""

from __future__ import annotations


class XS1Error(Exception):
    """Base class for all XS1 model errors."""


class AssemblerError(XS1Error):
    """Raised for syntactically or semantically invalid assembly source."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class MemoryAccessError(XS1Error):
    """Raised for out-of-range or misaligned SRAM accesses.

    The XS1-L traps these in hardware; the simulator raises instead, which
    in a time-deterministic system is the analogous observable behaviour.
    """


class ResourceError(XS1Error):
    """Raised for invalid resource (chanend/timer/lock) operations."""


class TrapError(XS1Error):
    """Raised when a thread executes an illegal or unimplemented operation."""
