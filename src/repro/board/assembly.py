"""Physical assembly: chips, slices and multi-board machines.

Builds the pieces the paper photographs: an XS1-L2A package is two cores
on adjacent nodes; a slice is sixteen cores with five measured power
rails; a machine is a grid (or Fig. 1-style stack) of slices joined by
ribbon cables.  The network side lives in
:class:`repro.network.topology.SwallowTopology`; this module instantiates
the cores and the measurement hardware on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.accounting import EnergyAccounting
from repro.energy.measurement import MeasurementBoard, build_slice_rails
from repro.network.topology import SwallowTopology
from repro.sim import Frequency, Simulator
from repro.xs1.core import CoreConfig, XCore


@dataclass
class ChipAssembly:
    """One XS1-L2A package: two cores sharing a die."""

    x: int
    y: int
    vertical_core: XCore
    horizontal_core: XCore

    @property
    def cores(self) -> list[XCore]:
        """Both cores of the package."""
        return [self.vertical_core, self.horizontal_core]


@dataclass
class SliceAssembly:
    """One populated Swallow board."""

    sx: int
    sy: int
    chips: list[ChipAssembly]
    measurement: MeasurementBoard

    @property
    def cores(self) -> list[XCore]:
        """All sixteen cores, chip by chip."""
        return [core for chip in self.chips for core in chip.cores]


@dataclass
class MachineAssembly:
    """A full machine: topology + cores + per-slice measurement boards."""

    sim: Simulator
    topology: SwallowTopology
    accounting: EnergyAccounting
    slices: list[SliceAssembly] = field(default_factory=list)

    @property
    def cores(self) -> list[XCore]:
        """Every core in the machine, slice by slice."""
        return [core for board in self.slices for core in board.cores]

    def core_at_node(self, node_id: int) -> XCore:
        """The core occupying network node ``node_id``."""
        for core in self.cores:
            if core.node_id == node_id:
                return core
        raise KeyError(f"no core at node {node_id}")

    def slice_board(self, sx: int, sy: int) -> SliceAssembly:
        """The slice at grid position (sx, sy)."""
        for board in self.slices:
            if (board.sx, board.sy) == (sx, sy):
                return board
        raise KeyError(f"no slice at ({sx}, {sy})")

    def register_metrics(self, registry) -> None:
        """Publish every component's series on one registry.

        Covers all cores, the whole network fabric (switches, links,
        per-class rollups), the energy ledger and every slice's
        measurement board — the one call
        :class:`~repro.core.platform.SwallowSystem` makes to light up
        ``system.metrics``.
        """
        for core in self.cores:
            core.register_metrics(registry)
        self.topology.fabric.register_metrics(registry)
        self.accounting.register_metrics(registry)
        for board in self.slices:
            board.measurement.register_metrics(
                registry, slice=f"{board.sx},{board.sy}"
            )

    def set_tracer(self, tracer) -> None:
        """Attach one trace recorder to every traceable component."""
        from repro.sim import NullTracer

        for core in self.cores:
            core.tracer = tracer if tracer is not None else NullTracer()
        self.topology.fabric.set_tracer(tracer)
        for board in self.slices:
            board.measurement.tracer = tracer


def build_machine(
    sim: Simulator,
    slices_x: int = 1,
    slices_y: int = 1,
    frequency: Frequency | None = None,
    core_config: CoreConfig | None = None,
    **topology_kwargs,
) -> MachineAssembly:
    """Assemble a machine of ``slices_x`` x ``slices_y`` boards.

    Every node of the topology gets a core; each slice gets the five-rail
    measurement board of §II; one :class:`EnergyAccounting` ledger spans
    the machine (the real system's per-slice data can be aggregated the
    same way over Ethernet).
    """
    frequency = frequency or Frequency(500_000_000)
    topology = SwallowTopology(
        sim, slices_x=slices_x, slices_y=slices_y,
        frequency=frequency, **topology_kwargs,
    )
    config = core_config or CoreConfig(frequency=frequency)
    cores_by_node: dict[int, XCore] = {}
    for node_id in topology.node_ids():
        cores_by_node[node_id] = XCore(
            sim, node_id, topology.fabric, config=config,
        )
    accounting = EnergyAccounting(
        sim, list(cores_by_node.values()), fabric=topology.fabric,
    )
    machine = MachineAssembly(sim=sim, topology=topology, accounting=accounting)
    from repro.network.routing import Layer
    from repro.network.topology import SLICE_PACKAGES_X, SLICE_PACKAGES_Y

    for sy in range(slices_y):
        for sx in range(slices_x):
            chips = []
            for local_y in range(SLICE_PACKAGES_Y):
                for local_x in range(SLICE_PACKAGES_X):
                    x = sx * SLICE_PACKAGES_X + local_x
                    y = sy * SLICE_PACKAGES_Y + local_y
                    chips.append(
                        ChipAssembly(
                            x=x,
                            y=y,
                            vertical_core=cores_by_node[
                                topology.node_at(x, y, Layer.VERTICAL)
                            ],
                            horizontal_core=cores_by_node[
                                topology.node_at(x, y, Layer.HORIZONTAL)
                            ],
                        )
                    )
            slice_cores = [core for chip in chips for core in chip.cores]
            board = SliceAssembly(
                sx=sx,
                sy=sy,
                chips=chips,
                measurement=MeasurementBoard(
                    sim, accounting, build_slice_rails(slice_cores),
                    name=f"adc{sx},{sy}",
                ),
            )
            machine.slices.append(board)
    return machine


def build_stack(sim: Simulator, boards: int = 8, **kwargs) -> MachineAssembly:
    """A Fig. 1-style vertical stack: ``boards`` slices in one column."""
    return build_machine(sim, slices_x=1, slices_y=boards, **kwargs)
