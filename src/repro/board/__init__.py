"""Physical boards: power tree, assembly, manufacturing yield."""

from repro.board.assembly import (
    ChipAssembly,
    MachineAssembly,
    SliceAssembly,
    build_machine,
    build_stack,
)
from repro.board.power import (
    CORES_PER_SLICE,
    SLICE_HEIGHT_MM,
    SLICE_INPUT_VOLTAGE,
    SLICE_MAX_POWER_W,
    SLICE_WIDTH_MM,
    SMPS_EFFICIENCY,
    SUPPORT_W_PER_SLICE,
    SlicePowerReport,
    headline_figures,
    slice_power,
    system_power_w,
)
from repro.board.yieldmodel import (
    CONNECTOR_FAILURE_P,
    MANUFACTURED_SLICES,
    USABLE_SLICES,
    SliceYield,
    expected_usable,
    largest_machine_cores,
    manufacturing_run,
    usable_slices,
)

__all__ = [
    "CONNECTOR_FAILURE_P",
    "CORES_PER_SLICE",
    "ChipAssembly",
    "MANUFACTURED_SLICES",
    "MachineAssembly",
    "SLICE_HEIGHT_MM",
    "SLICE_INPUT_VOLTAGE",
    "SLICE_MAX_POWER_W",
    "SLICE_WIDTH_MM",
    "SMPS_EFFICIENCY",
    "SUPPORT_W_PER_SLICE",
    "SliceAssembly",
    "SlicePowerReport",
    "SliceYield",
    "USABLE_SLICES",
    "build_machine",
    "build_stack",
    "expected_usable",
    "headline_figures",
    "largest_machine_cores",
    "manufacturing_run",
    "slice_power",
    "system_power_w",
    "usable_slices",
]
