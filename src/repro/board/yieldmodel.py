"""Manufacturing-yield model (paper §IV-B).

Forty slices were manufactured (enough for 640 cores), but "yield issues,
mostly with edge connectors, mean that the largest machine we have been
able to build and test is 480 cores" — i.e. 30 of 40 boards usable.

The model is deterministic given a seed: each slice has a number of edge
connectors, each failing independently; a slice is usable when every
connector needed for its grid position works.  The default failure rate
is calibrated so the expected usable count of a 40-board run matches the
paper's 30.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.network.topology import SLICE_EDGE_PORTS

#: Manufactured boards in the real project.
MANUFACTURED_SLICES = 40
#: Boards that made it into the largest tested machine.
USABLE_SLICES = 30

#: Per-connector failure probability, calibrated so that
#: P(all 12 connectors fine) ~= 30/40 = 0.75  ->  p = 1 - 0.75^(1/12).
CONNECTOR_FAILURE_P = 1.0 - (USABLE_SLICES / MANUFACTURED_SLICES) ** (
    1.0 / SLICE_EDGE_PORTS
)


@dataclass(frozen=True)
class SliceYield:
    """Outcome of testing one manufactured slice."""

    index: int
    failed_connectors: tuple[int, ...]

    @property
    def usable(self) -> bool:
        """A slice is usable when all its edge connectors test good."""
        return not self.failed_connectors


def manufacturing_run(
    slices: int = MANUFACTURED_SLICES,
    failure_p: float = CONNECTOR_FAILURE_P,
    seed: int = 2015,
) -> list[SliceYield]:
    """Simulate testing a batch of manufactured slices."""
    if slices < 0:
        raise ValueError("slice count must be non-negative")
    if not 0 <= failure_p <= 1:
        raise ValueError(f"failure probability {failure_p} outside [0, 1]")
    rng = random.Random(seed)
    outcomes = []
    for index in range(slices):
        failed = tuple(
            connector
            for connector in range(SLICE_EDGE_PORTS)
            if rng.random() < failure_p
        )
        outcomes.append(SliceYield(index=index, failed_connectors=failed))
    return outcomes


def usable_slices(outcomes: list[SliceYield]) -> int:
    """Boards that can join a machine."""
    return sum(1 for outcome in outcomes if outcome.usable)


def largest_machine_cores(outcomes: list[SliceYield], cores_per_slice: int = 16) -> int:
    """Cores in the largest machine buildable from a batch."""
    return usable_slices(outcomes) * cores_per_slice


def expected_usable(slices: int = MANUFACTURED_SLICES,
                    failure_p: float = CONNECTOR_FAILURE_P) -> float:
    """Expected usable boards of a batch (analytic)."""
    return slices * (1.0 - failure_p) ** SLICE_EDGE_PORTS
