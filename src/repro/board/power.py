"""Board-level power tree (paper §III.A).

The paper's roll-up: 193 mW/core maximum -> 3.1 W of core power per
16-core slice; switch-mode conversion losses and support logic raise that
to ~4.5 W/slice (260 mW/core system view), so the full 480-core, 30-slice
machine draws 134 W.

We model the tree explicitly: slice power = (sum of core powers) / SMPS
efficiency + per-slice support.  The efficiency and support constants are
calibrated so the paper's three headline numbers (3.1 W, 4.5 W, 134 W)
fall out; both are overridable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.power_model import active_power_mw, core_power_mw

#: Cores per slice (16 across 8 dual-core chips).
CORES_PER_SLICE = 16

#: Switch-mode supply efficiency (calibrated to the §III.A roll-up).
SMPS_EFFICIENCY = 0.82

#: Support logic + I/O per slice, W (calibrated to the §III.A roll-up).
SUPPORT_W_PER_SLICE = 0.72

#: Board input voltage and maximum operating power (paper §IV-B).
SLICE_INPUT_VOLTAGE = 12.0
SLICE_MAX_POWER_W = 5.0

#: Board dimensions, mm (paper §IV-B).
SLICE_WIDTH_MM = 105.0
SLICE_HEIGHT_MM = 140.0


@dataclass(frozen=True)
class SlicePowerReport:
    """Power roll-up of one slice."""

    core_power_w: float
    conversion_loss_w: float
    support_w: float

    @property
    def total_w(self) -> float:
        """Board input power."""
        return self.core_power_w + self.conversion_loss_w + self.support_w

    @property
    def per_core_mw(self) -> float:
        """The paper's "mW/core equivalent" system view."""
        return self.total_w / CORES_PER_SLICE * 1e3


def slice_power(
    f_mhz: float = 500.0,
    utilization: float = 1.0,
    active_cores: int = CORES_PER_SLICE,
    smps_efficiency: float = SMPS_EFFICIENCY,
    support_w: float = SUPPORT_W_PER_SLICE,
) -> SlicePowerReport:
    """Power of one slice with ``active_cores`` at the given load.

    Inactive cores idle (utilization 0) rather than disappearing — there
    is no per-core power gating on Swallow.
    """
    if not 0 <= active_cores <= CORES_PER_SLICE:
        raise ValueError(f"active cores {active_cores} outside slice of {CORES_PER_SLICE}")
    if not 0 < smps_efficiency <= 1:
        raise ValueError(f"efficiency {smps_efficiency} outside (0, 1]")
    active = core_power_mw(f_mhz, utilization) * active_cores
    idle = core_power_mw(f_mhz, 0.0) * (CORES_PER_SLICE - active_cores)
    core_w = (active + idle) * 1e-3
    input_w = core_w / smps_efficiency
    return SlicePowerReport(
        core_power_w=core_w,
        conversion_loss_w=input_w - core_w,
        support_w=support_w,
    )


def system_power_w(
    slices: int,
    f_mhz: float = 500.0,
    utilization: float = 1.0,
) -> float:
    """Total power of a machine of ``slices`` fully populated boards."""
    if slices < 1:
        raise ValueError("need at least one slice")
    return slices * slice_power(f_mhz, utilization).total_w


def headline_figures() -> dict[str, float]:
    """The §III.A numbers: per-core, per-slice, losses and full system."""
    report = slice_power()
    return {
        "core_max_mw": active_power_mw(500.0),
        "slice_core_power_w": report.core_power_w,
        "slice_total_w": report.total_w,
        "per_core_system_mw": report.per_core_mw,
        "system_480_cores_w": system_power_w(30),
    }
