"""Analysis: Eq. 2 throughput, E/C ratios, bisection, survey tables."""

from repro.analysis.bisection import (
    horizontal_bisection_bps,
    min_cut_bps,
    vertical_bisection_bps,
)
from repro.analysis.comparison import (
    TABLE_II,
    TABLE_III,
    CandidateProcessor,
    Determinism,
    ManyCoreSystem,
    qualifying_processors,
    swallow_power_rank,
    table_iii_by_power,
)
from repro.analysis.ec_ratio import (
    BITS_PER_INSTRUCTION,
    RELATED_WORK_EC_RANGE,
    EcScenario,
    ec_ratio,
    execution_rate_bps,
    measured_ec,
    paper_scenarios,
    thread_execution_rate_bps,
)
from repro.analysis.throughput import (
    PEAK_CORE_MIPS,
    PIPELINE_DEPTH,
    ips_per_core,
    ips_per_thread,
    measured_core_ips,
    single_thread_mips,
    system_gips,
)

__all__ = [
    "BITS_PER_INSTRUCTION",
    "CandidateProcessor",
    "Determinism",
    "EcScenario",
    "ManyCoreSystem",
    "PEAK_CORE_MIPS",
    "PIPELINE_DEPTH",
    "RELATED_WORK_EC_RANGE",
    "TABLE_II",
    "TABLE_III",
    "ec_ratio",
    "execution_rate_bps",
    "horizontal_bisection_bps",
    "ips_per_core",
    "ips_per_thread",
    "measured_core_ips",
    "measured_ec",
    "min_cut_bps",
    "paper_scenarios",
    "qualifying_processors",
    "single_thread_mips",
    "swallow_power_rank",
    "system_gips",
    "table_iii_by_power",
    "thread_execution_rate_bps",
    "vertical_bisection_bps",
]
