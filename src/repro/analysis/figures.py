"""Figure/series data for every plot in the paper, as plain rows.

Each function returns ``(header, rows)`` ready for CSV export or
plotting; ``python -m repro figures --out DIR`` writes them all.  The
*measured* series run real simulations (a few hundred ms each); the
*derived* series evaluate the models directly.
"""

from __future__ import annotations

from repro.analysis.comparison import TABLE_II, TABLE_III
from repro.analysis.ec_ratio import paper_scenarios
from repro.energy.dvfs import figure4_series
from repro.energy.link_energy import table_i
from repro.energy.power_model import (
    F_MAX_MHZ,
    F_MIN_MHZ,
    active_power_mw,
    idle_power_mw,
    node_power_breakdown,
)

Series = tuple[list[str], list[list]]


def fig2_breakdown() -> Series:
    """Fig. 2: per-node power decomposition."""
    breakdown = node_power_breakdown()
    shares = breakdown.shares()
    rows = [
        [name, getattr(breakdown, name), round(share, 4)]
        for name, share in shares.items()
    ]
    return ["component", "power_mw", "share"], rows


def fig3_scaling(points: int = 20, measured: bool = False) -> Series:
    """Fig. 3: four-core power vs frequency, loaded and idle.

    ``measured=True`` simulates each operating point instead of
    evaluating Eq. 1 / the idle fit (slower; used by the bench).
    """
    header = ["f_mhz", "loaded_4core_mw", "idle_4core_mw"]
    rows = []
    for i in range(points):
        f_mhz = F_MIN_MHZ + (F_MAX_MHZ - F_MIN_MHZ) * i / (points - 1)
        if measured:
            loaded = _measured_group_power(f_mhz, loaded=True)
            idle = _measured_group_power(f_mhz, loaded=False)
        else:
            loaded = 4 * active_power_mw(f_mhz)
            idle = 4 * idle_power_mw(f_mhz)
        rows.append([round(f_mhz, 1), round(loaded, 2), round(idle, 2)])
    return header, rows


def _measured_group_power(f_mhz: float, loaded: bool) -> float:
    from repro.energy.accounting import EnergyAccounting
    from repro.sim import Frequency, Simulator, us
    from repro.xs1 import LoopbackFabric, XCore, assemble

    sim = Simulator()
    fabric = LoopbackFabric(sim)
    cores = [XCore(sim, node_id=i, fabric=fabric) for i in range(4)]
    for core in cores:
        core.set_frequency(Frequency.mhz(f_mhz))
    if loaded:
        program = assemble(
            "ldc r0, 500000\nloop: subi r0, r0, 1\nbt r0, loop\nfreet"
        )
        for core in cores:
            for _ in range(4):
                core.spawn(program)
    ledger = EnergyAccounting(sim, cores, include_support=False)
    sim.run_for(us(100))
    return ledger.total_energy_j() / 100e-6 * 1e3


def fig4_dvfs(points: int = 20) -> Series:
    """Fig. 4: power at 1 V vs after voltage scaling, one loaded core."""
    rows = [
        [round(r["f_mhz"], 1), round(r["p_1v_mw"], 2), round(r["p_dvfs_mw"], 2)]
        for r in figure4_series(points)
    ]
    return ["f_mhz", "p_1v_mw", "p_dvfs_mw"], rows


def table1_links() -> Series:
    """Table I rows."""
    rows = [
        [r.link_type, r.data_rate_mbit, r.max_power_mw, round(r.energy_per_bit_pj, 1)]
        for r in table_i()
    ]
    return ["link_type", "data_rate_mbit", "max_power_mw", "energy_pj_per_bit"], rows


def table2_processors() -> Series:
    """Table II rows plus the requirement verdict."""
    rows = [
        [
            p.name,
            p.cores,
            p.data_width_bits,
            int(p.superscalar),
            {True: "yes", False: "no", None: "optional"}[p.has_cache],
            p.multicore_interconnect or "none",
            p.time_deterministic.value,
            int(p.meets_all_requirements()),
        ]
        for p in TABLE_II
    ]
    return [
        "processor", "cores", "width_bits", "superscalar", "cache",
        "interconnect", "time_deterministic", "meets_all",
    ], rows


def table3_systems() -> Series:
    """Table III rows with the recomputed μW/MHz column."""
    rows = []
    for s in TABLE_III:
        low, high = s.computed_uw_per_mhz()
        rows.append([
            s.name, s.isa, s.cores_per_chip, s.total_cores[1], s.tech_node_nm,
            s.power_per_core_mw[0], s.frequency_mhz[1],
            s.published_uw_per_mhz[0], round(low, 1),
        ])
    return [
        "system", "isa", "cores_per_chip", "max_total_cores", "tech_nm",
        "power_per_core_mw", "frequency_mhz", "published_uw_per_mhz",
        "recomputed_uw_per_mhz",
    ], rows


def ec_ladder() -> Series:
    """§V.D's five E/C scenarios."""
    rows = [
        [s.name, s.e_bps, s.c_bps, s.paper_value, round(s.ratio, 1)]
        for s in paper_scenarios()
    ]
    return ["scenario", "e_bps", "c_bps", "paper_ec", "computed_ec"], rows


def eq2_throughput() -> Series:
    """Eq. 2 per-thread and per-core MIPS for 1..8 threads."""
    from repro.analysis.throughput import ips_per_core, ips_per_thread

    rows = [
        [n, ips_per_thread(500e6, n) / 1e6, ips_per_core(500e6, n) / 1e6]
        for n in range(1, 9)
    ]
    return ["threads", "thread_mips", "core_mips"], rows


#: Every exportable series: name -> builder.
ALL_FIGURES = {
    "fig2_breakdown": fig2_breakdown,
    "fig3_scaling": fig3_scaling,
    "fig4_dvfs": fig4_dvfs,
    "table1_links": table1_links,
    "table2_processors": table2_processors,
    "table3_systems": table3_systems,
    "ec_ladder": ec_ladder,
    "eq2_throughput": eq2_throughput,
}


def export_csv(directory, names: list[str] | None = None) -> list[str]:
    """Write the selected (default: all) series as CSV files.

    Returns the written file paths.
    """
    import csv
    from pathlib import Path

    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names or sorted(ALL_FIGURES):
        builder = ALL_FIGURES.get(name)
        if builder is None:
            raise KeyError(f"unknown figure {name!r}; have {sorted(ALL_FIGURES)}")
        header, rows = builder()
        path = out_dir / f"{name}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        written.append(str(path))
    return written
