"""Bisection-bandwidth analysis of Swallow topologies.

§V.D takes the vertical bisection of a slice (cutting all links that
cross the horizontal mid-line) as the worst-case communication channel.
This module computes such cuts — and true minimum cuts via networkx — on
any :class:`~repro.network.topology.SwallowTopology`.
"""

from __future__ import annotations

import networkx as nx

from repro.network.topology import SwallowTopology


def vertical_bisection_bps(
    topology: SwallowTopology, use_operating_rate: bool = True
) -> float:
    """Bandwidth (bits/s, one direction) across the horizontal mid-line.

    "Vertical bisection" in the paper's sense: the cut severs the
    vertical (north-south) links joining the top half of the package grid
    to the bottom half.
    """
    cut_y = topology.packages_y / 2
    total = 0.0
    graph = topology.graph()
    for u, v, data in graph.edges(data=True):
        yu = graph.nodes[u]["coord"].y
        yv = graph.nodes[v]["coord"].y
        if (yu < cut_y) != (yv < cut_y):
            spec = data["spec"]
            total += spec.operating_bitrate if use_operating_rate else spec.max_bitrate
    return total


def horizontal_bisection_bps(
    topology: SwallowTopology, use_operating_rate: bool = True
) -> float:
    """Bandwidth across the vertical mid-line (east-west cut)."""
    cut_x = topology.packages_x / 2
    total = 0.0
    graph = topology.graph()
    for u, v, data in graph.edges(data=True):
        xu = graph.nodes[u]["coord"].x
        xv = graph.nodes[v]["coord"].x
        if (xu < cut_x) != (xv < cut_x):
            spec = data["spec"]
            total += spec.operating_bitrate if use_operating_rate else spec.max_bitrate
    return total


def min_cut_bps(
    topology: SwallowTopology,
    source_node: int,
    sink_node: int,
    use_operating_rate: bool = True,
) -> float:
    """Max-flow/min-cut bandwidth between two nodes (networkx)."""
    graph = nx.Graph()
    for u, v, data in topology.graph().edges(data=True):
        spec = data["spec"]
        rate = spec.operating_bitrate if use_operating_rate else spec.max_bitrate
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += rate
        else:
            graph.add_edge(u, v, capacity=rate)
    value, _ = nx.minimum_cut(graph, source_node, sink_node)
    return float(value)
