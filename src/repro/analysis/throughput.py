"""Computational throughput (paper Eq. 2 and the 240 GIPS headline).

    IPS_t = f / max(4, N_t)        IPS_c = f * min(4, N_t) / 4

These are the analytic forms; :func:`measured_core_ips` extracts the same
quantity from an actual simulation so the Eq. 2 bench can compare
mechanism against formula.
"""

from __future__ import annotations

from repro.sim import PS_PER_S
from repro.xs1.core import XCore

#: Pipeline depth of the XS1-L (the 4 in Eq. 2).
PIPELINE_DEPTH = 4

#: Peak per-core rate at 500 MHz: 500 MIPS.
PEAK_CORE_MIPS = 500.0


def ips_per_thread(f_hz: float, active_threads: int) -> float:
    """Eq. 2: instructions per second of each active thread."""
    _check(f_hz, active_threads)
    if active_threads == 0:
        return 0.0
    return f_hz / max(PIPELINE_DEPTH, active_threads)


def ips_per_core(f_hz: float, active_threads: int) -> float:
    """Eq. 2: aggregate instructions per second of one core."""
    _check(f_hz, active_threads)
    return f_hz * min(PIPELINE_DEPTH, active_threads) / PIPELINE_DEPTH


def system_gips(cores: int, f_hz: float = 500e6, active_threads: int = 4) -> float:
    """Aggregate throughput in GIPS (the paper's "up to 240 GIPS")."""
    if cores < 0:
        raise ValueError("core count must be non-negative")
    return cores * ips_per_core(f_hz, active_threads) / 1e9


def single_thread_mips(f_hz: float = 500e6) -> float:
    """One thread's issue rate in MIPS (§V.D: "125 MIPS")."""
    return ips_per_thread(f_hz, 1) / 1e6


def measured_core_ips(core: XCore, elapsed_ps: int) -> float:
    """Instructions per second a simulated core actually achieved."""
    if elapsed_ps <= 0:
        raise ValueError("elapsed time must be positive")
    return core.stats.total_instructions / (elapsed_ps / PS_PER_S)


def _check(f_hz: float, active_threads: int) -> None:
    if f_hz <= 0:
        raise ValueError(f"frequency must be positive, got {f_hz}")
    if active_threads < 0:
        raise ValueError(f"thread count must be non-negative, got {active_threads}")
