"""Computation-to-communication (E/C) ratio analysis (paper §V.D).

E is the data rate compute *could* produce: 32 bits per instruction at
the Eq. 2 issue rate — 4 Gbit/s per thread, 16 Gbit/s per core with four
or more threads.  C is the data rate the communication path sustains.
The paper's worst-case channel rates use the Table I operating points
(250 Mbit/s internal, 62.5 Mbit/s external) and conclude:

    ==============================================  =====
    scenario                                        E/C
    ==============================================  =====
    core-local                                          1
    four aggregated in-package links (1 Gbit/s)        16
    four aggregated external links (250 Mbit/s)        64
    four threads contending one external link         256
    slice vertical bisection (128 G over 250 M)       512
    ==============================================  =====
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.throughput import ips_per_core, ips_per_thread
from repro.network.params import (
    INTERNAL_LINKS_PER_PACKAGE,
    LINK_BOARD_VERTICAL,
    LINK_ON_CHIP,
)
from repro.network.topology import SLICE_PACKAGES_X

#: Bits each instruction operates on.
BITS_PER_INSTRUCTION = 32


def execution_rate_bps(f_hz: float = 500e6, threads: int = 4) -> float:
    """E: bits/s a core's compute can produce (Eq. 2 x 32 bits)."""
    return ips_per_core(f_hz, threads) * BITS_PER_INSTRUCTION


def thread_execution_rate_bps(f_hz: float = 500e6, threads: int = 4) -> float:
    """E of a single thread among ``threads`` active ones."""
    return ips_per_thread(f_hz, threads) * BITS_PER_INSTRUCTION


def ec_ratio(e_bps: float, c_bps: float) -> float:
    """The ratio E/C; > 1 means communication-bound."""
    if c_bps <= 0:
        raise ValueError(f"communication rate must be positive, got {c_bps}")
    if e_bps < 0:
        raise ValueError(f"execution rate must be non-negative, got {e_bps}")
    return e_bps / c_bps


@dataclass(frozen=True)
class EcScenario:
    """One named E/C scenario."""

    name: str
    e_bps: float
    c_bps: float
    paper_value: float

    @property
    def ratio(self) -> float:
        """Computed E/C."""
        return ec_ratio(self.e_bps, self.c_bps)


def paper_scenarios(f_hz: float = 500e6) -> list[EcScenario]:
    """The five §V.D scenarios, computed from system constants."""
    core_e = execution_rate_bps(f_hz)
    internal = LINK_ON_CHIP.operating_bitrate       # 250 Mbit/s worst case
    external = LINK_BOARD_VERTICAL.operating_bitrate  # 62.5 Mbit/s
    slice_bisection_c = SLICE_PACKAGES_X * external   # 4 columns x 62.5 M
    half_slice_cores = 8
    return [
        EcScenario(
            name="core-local",
            e_bps=core_e,
            c_bps=core_e,     # "Core-local communication can sustain this"
            paper_value=1.0,
        ),
        EcScenario(
            name="in-package (4 aggregated links)",
            e_bps=core_e,
            c_bps=INTERNAL_LINKS_PER_PACKAGE * internal,
            paper_value=16.0,
        ),
        EcScenario(
            name="external (4 aggregated links)",
            e_bps=core_e,
            c_bps=4 * external,
            paper_value=64.0,
        ),
        EcScenario(
            name="four threads contending one external link",
            e_bps=core_e,
            c_bps=external,
            paper_value=256.0,
        ),
        EcScenario(
            name="slice vertical bisection",
            e_bps=half_slice_cores * core_e,
            c_bps=slice_bisection_c,
            paper_value=512.0,
        ),
    ]


#: System-wide E/C range of the related-work survey (§V.D / §VI).
RELATED_WORK_EC_RANGE = (0.42, 55.0)


def measured_ec(instructions: int, bits_communicated: int) -> float:
    """E/C of an actual run: instruction bits over communicated bits."""
    if bits_communicated <= 0:
        raise ValueError("communicated bits must be positive")
    return instructions * BITS_PER_INSTRUCTION / bits_communicated
