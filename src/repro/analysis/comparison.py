"""Processor & system surveys (paper Tables II and III).

Table II compares candidate processors against Swallow's requirements —
a scalable multi-core interconnect and time-deterministic execution —
and finds only the XMOS XS1-L satisfies all of them.

Table III places Swallow among recent many-core systems on scale,
technology and power.  μW/MHz is power over frequency except for
Swallow, where the paper uses Eq. 1's dynamic slope (0.30 mW/MHz ->
300 μW/MHz); :func:`table_iii` recomputes the derived column so the
bench can check the published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Determinism(Enum):
    """Time-determinism classification used in Table II."""

    YES = "yes"
    NO = "no"
    WITHOUT_CACHE = "w/o cache"   # deterministic only if the cache is disabled


@dataclass(frozen=True)
class CandidateProcessor:
    """One Table II row."""

    name: str
    cores: int
    data_width_bits: int
    superscalar: bool
    has_cache: bool | None            # None = optional
    memory_configuration: str
    multicore_interconnect: str | None
    time_deterministic: Determinism

    def meets_all_requirements(self) -> bool:
        """Scalable interconnect + unconditional time determinism."""
        return (
            self.multicore_interconnect is not None
            and self.time_deterministic is Determinism.YES
        )


#: Table II, row for row.
TABLE_II: list[CandidateProcessor] = [
    CandidateProcessor(
        "ARM Cortex M", 1, 32, superscalar=False, has_cache=None,
        memory_configuration="<varies>", multicore_interconnect=None,
        time_deterministic=Determinism.WITHOUT_CACHE,
    ),
    CandidateProcessor(
        "ARM Cortex A, single core", 1, 32, superscalar=True, has_cache=True,
        memory_configuration="<varies>", multicore_interconnect=None,
        time_deterministic=Determinism.NO,
    ),
    CandidateProcessor(
        "ARM Cortex A, multi-core", 4, 32, superscalar=True, has_cache=True,
        memory_configuration="<varies>", multicore_interconnect="Coherent mem.",
        time_deterministic=Determinism.NO,
    ),
    CandidateProcessor(
        "Adapteva Epiphany", 64, 32, superscalar=True, has_cache=False,
        memory_configuration="Local + global SRAM",
        multicore_interconnect="NoC + external",
        time_deterministic=Determinism.NO,
    ),
    CandidateProcessor(
        "XMOS XS1-L", 1, 32, superscalar=False, has_cache=False,
        memory_configuration="Unified, single cycle SRAM",
        multicore_interconnect="NoC + external",
        time_deterministic=Determinism.YES,
    ),
    CandidateProcessor(
        "MSP430", 1, 16, superscalar=False, has_cache=False,
        memory_configuration="I-Flash + D-SRAM", multicore_interconnect=None,
        time_deterministic=Determinism.YES,
    ),
    CandidateProcessor(
        "AVR", 1, 8, superscalar=False, has_cache=False,
        memory_configuration="I-Flash + D-SRAM", multicore_interconnect=None,
        time_deterministic=Determinism.NO,
    ),
    CandidateProcessor(
        "Quark", 1, 32, superscalar=False, has_cache=True,
        memory_configuration="Unified DRAM", multicore_interconnect="Ethernet",
        time_deterministic=Determinism.NO,
    ),
]


def qualifying_processors() -> list[CandidateProcessor]:
    """Table II's verdict: the processors meeting every requirement."""
    return [p for p in TABLE_II if p.meets_all_requirements()]


@dataclass(frozen=True)
class ManyCoreSystem:
    """One Table III row.  Ranged quantities are (low, high) tuples."""

    name: str
    isa: str
    cores_per_chip: int
    total_cores: tuple[int, int]
    tech_node_nm: int
    power_per_core_mw: tuple[float, float]
    frequency_mhz: tuple[float, float]
    published_uw_per_mhz: tuple[float, float]
    #: μW/MHz basis: "dynamic" (Eq. 1 slope) or "total" (power/frequency).
    uw_basis: str = "total"

    def computed_uw_per_mhz(self) -> tuple[float, float]:
        """Recompute the derived column from power and frequency."""
        if self.uw_basis == "dynamic":
            # Swallow: Eq. 1 dynamic slope, 0.30 mW/MHz at any frequency.
            from repro.energy.power_model import DYNAMIC_MW_PER_MHZ

            value = DYNAMIC_MW_PER_MHZ * 1000.0
            return (value, value)
        low = self.power_per_core_mw[0] * 1000.0 / self.frequency_mhz[1]
        high = self.power_per_core_mw[1] * 1000.0 / self.frequency_mhz[0]
        return (low, high)


#: Table III, row for row.
TABLE_III: list[ManyCoreSystem] = [
    ManyCoreSystem(
        "Swallow", "XS1", 2, (16, 480), 65, (193.0, 193.0), (500.0, 500.0),
        (300.0, 300.0), uw_basis="dynamic",
    ),
    ManyCoreSystem(
        "SpiNNaker", "ARM9", 17, (1_036_800, 1_036_800), 130, (87.0, 87.0),
        (200.0, 200.0), (435.0, 435.0),
    ),
    ManyCoreSystem(
        "Centip3De", "Cortex-M3", 64, (64, 64), 130, (203.0, 1851.0),
        (20.0, 80.0), (2300.0, 2540.0),
    ),
    ManyCoreSystem(
        "Tile64", "Tile", 64, (64, 480), 130, (300.0, 300.0), (1000.0, 1000.0),
        (300.0, 300.0),
    ),
    ManyCoreSystem(
        "Epiphany-IV", "Epiphany", 64, (64, 64), 28, (31.0, 31.0), (800.0, 800.0),
        (38.8, 38.8),
    ),
]


def table_iii_by_power() -> list[ManyCoreSystem]:
    """Table III ordered by (low-end) power per core."""
    return sorted(TABLE_III, key=lambda s: s.power_per_core_mw[0])


def swallow_power_rank() -> int:
    """Swallow's 1-based rank by power/core (paper: "in the middle")."""
    ordered = table_iii_by_power()
    return next(
        i + 1 for i, system in enumerate(ordered) if system.name == "Swallow"
    )
