"""The fabric observatory: windowed link/switch telemetry (netscope).

The fabric's built-in counters are lifetime aggregates — good for energy
accounting, useless for answering "which link was hot *when*, and why
was that route blocked?".  :class:`NetScope` attaches pure-observer
probes to every half-link and input port and samples activity into
deterministic time windows:

* **per-link windows** — tokens / bits / busy time per window of
  ``window_ps`` picoseconds (a token's serialization time is charged to
  the window it launches in);
* **per-port queue occupancy** — the high-water buffer depth per window;
* **route-open wait attribution** — every interval a port spends unable
  to make progress is attributed to exactly one cause:

  - ``lane_busy``     queued for an output-link grant (all lanes held),
  - ``credit_stall``  link held and idle but out of flow-control credits,
  - ``dest_busy``     local delivery blocked on a full receive buffer,
  - ``severed``       draining a packet whose route died mid-run;

* **slice-cut accounting** — cross-slice-boundary traffic and the
  observed minimum inter-token gap per directed slice pair: the
  empirical conservative-lookahead bound a partitioned simulator needs.

Probes never schedule simulator events and never consult wall time, so
attaching a NetScope cannot change the event trajectory (the
``bench_netscope_overhead`` gate pins this down) and every export is a
pure function of the run: byte-identical across same-seed runs, fault
campaigns included, and across checkpoint kill/resume cycles (restore
replays the trajectory, which rebuilds this state exactly).

Exports: :meth:`NetScope.heatmap` (canonical JSON document),
:meth:`NetScope.counter_events` (Chrome ``"ph": "C"`` counter tracks for
Perfetto), :meth:`NetScope.slice_cut`, and the ASCII heat overlay in
:func:`repro.network.visualize.render_heat`.  Campaign-level merging
lives in :func:`merge_heatmaps` / :func:`fleet_heatmap`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.network.fabric import LinkRecord, SwallowFabric
    from repro.network.link import HalfLink
    from repro.network.switch import InputPort
    from repro.network.topology import SwallowTopology
    from repro.obs.metrics import MetricsRegistry

#: The heat-map document schema tag (bump on incompatible change).
HEATMAP_SCHEMA = "netscope-heatmap/1"
#: The fleet (merged multi-job) document schema tag.
FLEET_SCHEMA = "netscope-fleet/1"
#: The four blocked-route causes; every blocked picosecond lands in
#: exactly one of them, so their sum always equals the blocked total.
CAUSES = ("credit_stall", "dest_busy", "lane_busy", "severed")
#: Default sampling window: 1 us of simulated time.
DEFAULT_WINDOW_PS = 1_000_000


class LinkProbe:
    """Windowed traffic accumulator for one half-link (pure observer)."""

    __slots__ = ("name", "window_ps", "windows", "boundary")

    def __init__(self, name: str, window_ps: int,
                 boundary: "SliceBoundary | None" = None):
        self.name = name
        self.window_ps = window_ps
        #: window index -> [tokens, bits, busy_ps]
        self.windows: dict[int, list[int]] = {}
        self.boundary = boundary

    def on_send(self, now: int, bits: int, busy_ps: int) -> None:
        """One token launched at ``now`` (called from HalfLink.send)."""
        cell = self.windows.get(now // self.window_ps)
        if cell is None:
            cell = self.windows[now // self.window_ps] = [0, 0, 0]
        cell[0] += 1
        cell[1] += bits
        cell[2] += busy_ps
        if self.boundary is not None:
            self.boundary.on_token(now, bits)

    def snapshot_state(self) -> dict:
        """Canonical window cells for checkpointing (sorted, copied)."""
        return {str(idx): list(cell) for idx, cell in sorted(self.windows.items())}


class SliceBoundary:
    """Traffic across one *directed* slice boundary (e.g. (0,0)->(1,0)).

    ``min_gap_ps`` is the smallest observed spacing between consecutive
    token launches across the boundary (over all its links) — the
    empirical lower bound a conservative partitioned simulator could use
    as lookahead between the two slices.
    """

    __slots__ = ("src", "dst", "link_count", "tokens", "bits",
                 "last_send_ps", "min_gap_ps")

    def __init__(self, src: tuple[int, int], dst: tuple[int, int]):
        self.src = src
        self.dst = dst
        self.link_count = 0
        self.tokens = 0
        self.bits = 0
        self.last_send_ps: int | None = None
        self.min_gap_ps: int | None = None

    def on_token(self, now: int, bits: int) -> None:
        """One token crossed the boundary at ``now``; track the min gap."""
        self.tokens += 1
        self.bits += bits
        last = self.last_send_ps
        if last is not None:
            gap = now - last
            if self.min_gap_ps is None or gap < self.min_gap_ps:
                self.min_gap_ps = gap
        self.last_send_ps = now

    def snapshot_state(self) -> dict:
        """Canonical boundary counters for checkpointing."""
        return {
            "tokens": self.tokens,
            "bits": self.bits,
            "last_send_ps": self.last_send_ps,
            "min_gap_ps": self.min_gap_ps,
        }


class PortProbe:
    """Queue-depth windows and blocked-cause intervals for one port.

    At most one blocked interval is open at a time; opening a different
    cause closes the current interval first, so the per-cause totals
    partition the blocked total *exactly* (they are accumulated from the
    same, non-overlapping intervals).
    """

    __slots__ = ("scope", "name", "node", "window_ps", "depth_windows",
                 "queue_peak", "blocked_since", "blocked_cause", "waits")

    def __init__(self, scope: "NetScope", name: str, node: int):
        self.scope = scope
        self.name = name
        self.node = node
        self.window_ps = scope.window_ps
        #: window index -> high-water buffer depth within the window.
        self.depth_windows: dict[int, int] = {}
        self.queue_peak = 0
        self.blocked_since: int | None = None
        self.blocked_cause: str | None = None
        #: cause -> [intervals, total_ps]
        self.waits: dict[str, list[int]] = {c: [0, 0] for c in CAUSES}

    def on_depth(self, now: int, depth: int) -> None:
        """Record the port's buffer depth at ``now`` (high-water marks)."""
        idx = now // self.window_ps
        if depth > self.depth_windows.get(idx, 0):
            self.depth_windows[idx] = depth
        if depth > self.queue_peak:
            self.queue_peak = depth

    def block(self, cause: str, now: int) -> None:
        """Open (or re-attribute) the port's blocked interval at ``now``."""
        if self.blocked_cause == cause:
            return
        if self.blocked_since is not None:
            self._close(now)
        self.blocked_since = now
        self.blocked_cause = cause

    def unblock(self, now: int) -> None:
        """Close the open blocked interval, if any, accruing its wait."""
        if self.blocked_since is not None:
            self._close(now)

    def _close(self, now: int) -> None:
        cause = self.blocked_cause
        since = self.blocked_since
        entry = self.waits[cause]
        entry[0] += 1
        entry[1] += now - since
        self.scope._record_wait(cause, since, now)
        self.blocked_since = None
        self.blocked_cause = None

    def snapshot_state(self) -> dict:
        """Canonical port state for checkpointing (open interval included)."""
        return {
            "queue_peak": self.queue_peak,
            "depth_windows": {str(i): d for i, d
                              in sorted(self.depth_windows.items())},
            "blocked_since": self.blocked_since,
            "blocked_cause": self.blocked_cause,
            "waits": {c: list(self.waits[c]) for c in CAUSES},
        }


class NetScope:
    """Windowed fabric telemetry attached to a :class:`SwallowFabric`."""

    def __init__(
        self,
        fabric: "SwallowFabric",
        topology: "SwallowTopology | None" = None,
        window_ps: int = DEFAULT_WINDOW_PS,
    ):
        if window_ps < 1:
            raise ValueError(f"netscope window must be >= 1 ps, got {window_ps}")
        self.fabric = fabric
        self.topology = topology
        self.window_ps = int(window_ps)
        self.link_probes: dict[str, LinkProbe] = {}
        self.port_probes: dict[str, PortProbe] = {}
        #: (src slice, dst slice) -> boundary accumulator.
        self.boundaries: dict[tuple[tuple[int, int], tuple[int, int]],
                              SliceBoundary] = {}
        #: cause -> {window index -> blocked ps inside that window}.
        self.blocked_windows: dict[str, dict[int, int]] = {
            c: {} for c in CAUSES
        }
        self._lattice_nodes = (
            set(topology.node_ids()) if topology is not None else None
        )
        fabric.netscope = self
        for record in fabric.link_records:
            self.attach_record(record)
        for node_id in sorted(fabric.switches):
            switch = fabric.switches[node_id]
            for port in switch.link_ports:
                self.attach_port(port)
            for index in sorted(switch.chanend_ports):
                self.attach_port(switch.chanend_ports[index])

    # -- probe attachment (fabric calls these for late-built parts) --------

    def _slice_of(self, node_id: int) -> tuple[int, int] | None:
        if self._lattice_nodes is None or node_id not in self._lattice_nodes:
            return None
        return self.topology.slice_of(node_id)

    def attach_record(self, record: "LinkRecord") -> None:
        """Probe both half-links of a link-pair record."""
        slice_a = self._slice_of(record.node_a)
        slice_b = self._slice_of(record.node_b)
        cross = slice_a is not None and slice_b is not None and slice_a != slice_b
        self._attach_link(record.forward,
                          self._boundary(slice_a, slice_b) if cross else None)
        self._attach_link(record.backward,
                          self._boundary(slice_b, slice_a) if cross else None)

    def _boundary(self, src: tuple[int, int],
                  dst: tuple[int, int]) -> SliceBoundary:
        boundary = self.boundaries.get((src, dst))
        if boundary is None:
            boundary = self.boundaries[(src, dst)] = SliceBoundary(src, dst)
        boundary.link_count += 1
        return boundary

    def _attach_link(self, link: "HalfLink",
                     boundary: SliceBoundary | None) -> None:
        probe = LinkProbe(link.name, self.window_ps, boundary)
        self.link_probes[link.name] = probe
        link.ns = probe

    def attach_port(self, port: "InputPort") -> None:
        """Probe one switch input port (link-side or chanend-side)."""
        probe = PortProbe(self, port.name, port.switch.node_id)
        self.port_probes[port.name] = probe
        port.ns = probe

    # -- accumulation ------------------------------------------------------

    def _record_wait(self, cause: str, start: int, end: int) -> None:
        """Split a closed blocked interval across its windows."""
        windows = self.blocked_windows[cause]
        w = self.window_ps
        idx = start // w
        last = (end - 1) // w if end > start else idx
        while idx <= last:
            overlap = min(end, (idx + 1) * w) - max(start, idx * w)
            if overlap > 0:
                windows[idx] = windows.get(idx, 0) + overlap
            idx += 1

    # -- reports -----------------------------------------------------------

    def blocked_totals(self) -> dict:
        """Blocked wait time and interval counts, partitioned by cause."""
        by_cause = {c: 0 for c in CAUSES}
        counts = {c: 0 for c in CAUSES}
        for name in sorted(self.port_probes):
            probe = self.port_probes[name]
            for cause in CAUSES:
                counts[cause] += probe.waits[cause][0]
                by_cause[cause] += probe.waits[cause][1]
        return {
            "total_ps": sum(by_cause.values()),
            "by_cause": by_cause,
            "intervals": counts,
        }

    def slice_cut(self) -> dict:
        """Cross-slice traffic + minimum inter-token gap per boundary."""
        rows = []
        gaps = []
        for key in sorted(self.boundaries):
            boundary = self.boundaries[key]
            rows.append({
                "from": list(boundary.src),
                "to": list(boundary.dst),
                "links": boundary.link_count,
                "tokens": boundary.tokens,
                "bits": boundary.bits,
                "min_gap_ps": boundary.min_gap_ps,
            })
            if boundary.min_gap_ps is not None:
                gaps.append(boundary.min_gap_ps)
        return {
            "window_ps": self.window_ps,
            "boundaries": rows,
            "min_gap_ps": min(gaps) if gaps else None,
        }

    def heatmap(self) -> dict:
        """The canonical heat-map document (a pure function of the run)."""
        fabric = self.fabric
        now = fabric.sim.now
        links: list[dict] = []
        for record in fabric.link_records:
            for half in (record.forward, record.backward):
                probe = self.link_probes.get(half.name)
                links.append({
                    "name": half.name,
                    "src": (record.node_a if half is record.forward
                            else record.node_b),
                    "dst": (record.node_b if half is record.forward
                            else record.node_a),
                    "class": half.spec.name,
                    "failed": half.failed,
                    "tokens": half.tokens_carried,
                    "bits": half.bits_carried,
                    "busy_ps": half.busy_time_ps,
                    "utilization": half.utilization(now),
                    "windows": probe.snapshot_state() if probe else {},
                })
        nodes: list[dict] = []
        port_by_node: dict[int, list[PortProbe]] = {}
        for name in sorted(self.port_probes):
            probe = self.port_probes[name]
            port_by_node.setdefault(probe.node, []).append(probe)
        for node_id in sorted(fabric.switches):
            switch = fabric.switches[node_id]
            coord = fabric.coords[node_id]
            probes = port_by_node.get(node_id, [])
            blocked = {c: sum(p.waits[c][1] for p in probes) for c in CAUSES}
            intervals = {c: sum(p.waits[c][0] for p in probes) for c in CAUSES}
            slice_id = self._slice_of(node_id)
            nodes.append({
                "node": node_id,
                "x": coord.x,
                "y": coord.y,
                "layer": coord.layer.value,
                "slice": list(slice_id) if slice_id is not None else None,
                "tokens_forwarded": switch.tokens_forwarded,
                "tokens_delivered": switch.tokens_delivered,
                "routes_opened": switch.routes_opened,
                "routes_severed": switch.routes_severed,
                "tokens_discarded": switch.tokens_discarded,
                "queue_peak": max((p.queue_peak for p in probes), default=0),
                "blocked_ps": blocked,
                "blocked_intervals": intervals,
            })
        grid = None
        if self.topology is not None:
            grid = {
                "slices_x": self.topology.slices_x,
                "slices_y": self.topology.slices_y,
                "packages_x": self.topology.packages_x,
                "packages_y": self.topology.packages_y,
            }
        return {
            "schema": HEATMAP_SCHEMA,
            "window_ps": self.window_ps,
            "elapsed_ps": now,
            "windows": (now // self.window_ps + 1) if now else 0,
            "grid": grid,
            "nodes": nodes,
            "links": links,
            "blocked": self.blocked_totals(),
            "slice_cut": self.slice_cut(),
        }

    def heatmap_json(self) -> str:
        """The heat map as canonical (byte-stable) JSON."""
        import json

        return json.dumps(self.heatmap(), sort_keys=True,
                          separators=(",", ":"))

    # -- Chrome counter tracks ---------------------------------------------

    def counter_events(self) -> list[dict[str, Any]]:
        """Chrome trace counter events (``"ph": "C"``) for Perfetto.

        One track per active link (windowed utilization, percent), one
        per port with queued tokens (high-water depth), and one per
        blocked cause (fabric-wide blocked ps per window).  Every series
        is closed with a trailing zero sample so Perfetto draws gaps as
        gaps instead of interpolating.
        """
        from repro.obs.trace_export import CATEGORY_PIDS

        pid = CATEGORY_PIDS["netscope"]
        w = self.window_ps
        events: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": "swallow.netscope"},
        }]

        def emit_series(name: str, series: dict[int, Any], value_of) -> None:
            prev = None
            for idx in sorted(series):
                if prev is not None and idx > prev + 1:
                    events.append(self._counter(name, pid, (prev + 1) * w, 0))
                events.append(
                    self._counter(name, pid, idx * w, value_of(series[idx]))
                )
                prev = idx
            if prev is not None:
                events.append(self._counter(name, pid, (prev + 1) * w, 0))

        for cause in CAUSES:
            emit_series(f"blocked_ps {cause}", self.blocked_windows[cause],
                        lambda v: v)
        for name in sorted(self.link_probes):
            probe = self.link_probes[name]
            if probe.windows:
                emit_series(f"util% {name}", probe.windows,
                            lambda cell: round(100.0 * cell[2] / w, 3))
        for name in sorted(self.port_probes):
            probe = self.port_probes[name]
            if probe.depth_windows:
                emit_series(f"queue {name}", probe.depth_windows, lambda v: v)
        return events

    @staticmethod
    def _counter(name: str, pid: int, time_ps: int, value) -> dict[str, Any]:
        return {
            "name": name, "cat": "netscope", "ph": "C",
            "ts": time_ps / 1e6, "pid": pid, "tid": 0,
            "args": {"value": value},
        }

    # -- metrics -----------------------------------------------------------

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish blocked-cause totals and the slice-cut lookahead bound.

        Series: ``netscope.blocked_ps{cause=...}``,
        ``netscope.blocked_total_ps`` and (when any boundary saw
        traffic) ``netscope.slice_min_gap_ps``.
        """

        def _collect(emit) -> None:
            totals = self.blocked_totals()
            for cause in CAUSES:
                emit("netscope.blocked_ps", {"cause": cause},
                     totals["by_cause"][cause])
            emit("netscope.blocked_total_ps", {}, totals["total_ps"])
            cut = self.slice_cut()
            if cut["min_gap_ps"] is not None:
                emit("netscope.slice_min_gap_ps", {}, cut["min_gap_ps"])

        registry.register_collector(_collect)

    # -- checkpointing (see repro.checkpoint) ------------------------------

    def snapshot_state(self) -> dict:
        """Canonical observatory state, verified after restore replay.

        Restore rebuilds the workload (which re-attaches netscope from
        the same params) and replays the trajectory, so this state is
        reproduced rather than deserialized; the snapshot exists to
        *verify* that, field by field, like every other layer.
        """
        return {
            "window_ps": self.window_ps,
            "links": {
                name: self.link_probes[name].snapshot_state()
                for name in sorted(self.link_probes)
                if self.link_probes[name].windows
            },
            "ports": {
                name: self.port_probes[name].snapshot_state()
                for name in sorted(self.port_probes)
                if (self.port_probes[name].depth_windows
                    or self.port_probes[name].queue_peak
                    or self.port_probes[name].blocked_since is not None
                    or any(v[0] for v in self.port_probes[name].waits.values()))
            },
            "boundaries": {
                f"{src[0]},{src[1]}->{dst[0]},{dst[1]}":
                    self.boundaries[(src, dst)].snapshot_state()
                for src, dst in sorted(self.boundaries)
            },
            "blocked_windows": {
                cause: {str(i): ps for i, ps in sorted(windows.items())}
                for cause, windows in self.blocked_windows.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Verify replayed observatory state against a checkpoint."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "netscope")

    def __repr__(self) -> str:
        return (
            f"<NetScope window={self.window_ps}ps "
            f"links={len(self.link_probes)} ports={len(self.port_probes)}>"
        )


# ---------------------------------------------------------------------------
# Campaign-level aggregation (the farm's fleet heat map)
# ---------------------------------------------------------------------------


def _grid_key(doc: dict) -> str:
    grid = doc.get("grid")
    if not grid:
        return "?"
    return f"{grid['slices_x']}x{grid['slices_y']}"


def merge_heatmaps(docs: list[dict]) -> dict:
    """Merge same-grid heat-map documents into one fleet document.

    Counters sum, queue peaks take the max, per-link windows sum
    cell-wise, boundary minimum gaps take the min, and utilization is
    recomputed as total busy time over total simulated time — "hot
    across the campaign", not "hot in one job".
    """
    if not docs:
        raise ValueError("merge_heatmaps: no documents")
    grids = {_grid_key(doc) for doc in docs}
    if len(grids) > 1:
        raise ValueError(f"merge_heatmaps: mixed grids {sorted(grids)}; "
                         "group with fleet_heatmap() first")
    window_ps = docs[0]["window_ps"]
    elapsed = sum(doc["elapsed_ps"] for doc in docs)
    links: dict[str, dict] = {}
    for doc in docs:
        for row in doc["links"]:
            merged = links.get(row["name"])
            if merged is None:
                merged = links[row["name"]] = {
                    **row, "tokens": 0, "bits": 0, "busy_ps": 0,
                    "failed": False, "windows": {},
                }
            merged["tokens"] += row["tokens"]
            merged["bits"] += row["bits"]
            merged["busy_ps"] += row["busy_ps"]
            merged["failed"] = merged["failed"] or row["failed"]
            for idx, cell in row["windows"].items():
                have = merged["windows"].get(idx)
                if have is None:
                    merged["windows"][idx] = list(cell)
                else:
                    for i, value in enumerate(cell):
                        have[i] += value
    for merged in links.values():
        merged["utilization"] = (
            min(1.0, merged["busy_ps"] / elapsed) if elapsed else 0.0
        )
        merged["windows"] = dict(sorted(merged["windows"].items(),
                                        key=lambda kv: int(kv[0])))
    nodes: dict[int, dict] = {}
    for doc in docs:
        for row in doc["nodes"]:
            merged = nodes.get(row["node"])
            if merged is None:
                merged = nodes[row["node"]] = {
                    **row,
                    "tokens_forwarded": 0, "tokens_delivered": 0,
                    "routes_opened": 0, "routes_severed": 0,
                    "tokens_discarded": 0, "queue_peak": 0,
                    "blocked_ps": {c: 0 for c in CAUSES},
                    "blocked_intervals": {c: 0 for c in CAUSES},
                }
            for field in ("tokens_forwarded", "tokens_delivered",
                          "routes_opened", "routes_severed",
                          "tokens_discarded"):
                merged[field] += row[field]
            merged["queue_peak"] = max(merged["queue_peak"], row["queue_peak"])
            for cause in CAUSES:
                merged["blocked_ps"][cause] += row["blocked_ps"][cause]
                merged["blocked_intervals"][cause] += (
                    row["blocked_intervals"][cause]
                )
    boundaries: dict[tuple, dict] = {}
    for doc in docs:
        for row in doc["slice_cut"]["boundaries"]:
            key = (tuple(row["from"]), tuple(row["to"]))
            merged = boundaries.get(key)
            if merged is None:
                merged = boundaries[key] = {
                    **row, "tokens": 0, "bits": 0, "min_gap_ps": None,
                }
            merged["tokens"] += row["tokens"]
            merged["bits"] += row["bits"]
            gap = row["min_gap_ps"]
            if gap is not None and (merged["min_gap_ps"] is None
                                    or gap < merged["min_gap_ps"]):
                merged["min_gap_ps"] = gap
    gaps = [b["min_gap_ps"] for b in boundaries.values()
            if b["min_gap_ps"] is not None]
    blocked_by_cause = {
        c: sum(doc["blocked"]["by_cause"][c] for doc in docs) for c in CAUSES
    }
    return {
        "schema": HEATMAP_SCHEMA,
        "merged_from": len(docs),
        "window_ps": window_ps,
        "elapsed_ps": elapsed,
        "windows": sum(doc["windows"] for doc in docs),
        "grid": docs[0]["grid"],
        "nodes": [nodes[n] for n in sorted(nodes)],
        "links": [links[name] for name in sorted(links)],
        "blocked": {
            "total_ps": sum(blocked_by_cause.values()),
            "by_cause": blocked_by_cause,
            "intervals": {
                c: sum(doc["blocked"]["intervals"][c] for doc in docs)
                for c in CAUSES
            },
        },
        "slice_cut": {
            "window_ps": window_ps,
            "boundaries": [boundaries[k] for k in sorted(boundaries)],
            "min_gap_ps": min(gaps) if gaps else None,
        },
    }


def fleet_heatmap(docs: list[dict]) -> dict:
    """Group heat-map documents by grid shape and merge each group.

    DSE sweeps mix topologies, so a campaign's jobs cannot always merge
    into a single spatial map; the fleet document carries one merged
    heat map per grid shape (``"2x1"`` etc.), each byte-stable.
    """
    groups: dict[str, list[dict]] = {}
    for doc in docs:
        groups.setdefault(_grid_key(doc), []).append(doc)
    return {
        "schema": FLEET_SCHEMA,
        "jobs": len(docs),
        "grids": {key: merge_heatmaps(groups[key]) for key in sorted(groups)},
    }
