"""Per-span energy attribution: the "energy flame graph".

Takes the global ledgers (:class:`repro.energy.accounting.EnergyAccounting`)
and a span tree (:class:`repro.obs.spans.SpanRecorder`) and partitions
every joule the machine spent onto spans:

* **core energy** — each core's integrated Eq. 1 energy is split across
  the spans that issued instructions on it, proportionally to issue
  count (the XS1's fixed-cost pipeline makes the share well-posed, same
  argument as :func:`repro.core.transparency.attribute_to_threads`);
  whatever no span claims lands on a synthetic ``<idle coreN>`` row.
* **link energy** — each span's per-hop wire-bit ledger is priced with
  Table I per-bit energies; the unattributed remainder (route headers,
  untraced traffic) lands on ``<network>``.
* **support energy** — per-node DC-DC/I/O power is not caused by
  software, so it stays on a synthetic ``<support>`` row.

The partition is exhaustive by construction — synthetic rows are
computed by subtraction — so the folded-stacks output sums to the
ledger's :meth:`~repro.energy.accounting.EnergyAccounting.total_energy_j`
to floating-point accuracy, and per-span E/C ratios feed
:func:`repro.analysis.ec_ratio.measured_ec` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.ec_ratio import measured_ec
from repro.energy.link_energy import traffic_energy_joules
from repro.obs.spans import Span, SpanRecorder

if TYPE_CHECKING:
    from repro.core.platform import SwallowSystem


@dataclass(frozen=True)
class AttributionRow:
    """Energy attributed to one span (or one synthetic residual bucket)."""

    path: str
    name: str
    span_id: int | None
    node_id: int | None
    instructions: int
    bits_sent: int
    retry_bits: int
    core_j: float
    link_j: float
    support_j: float

    @property
    def total_j(self) -> float:
        """Everything charged to this row."""
        return self.core_j + self.link_j + self.support_j

    @property
    def ec_ratio(self) -> float:
        """This row's E/C (computation bits per communication bit)."""
        if self.bits_sent == 0:
            return float("inf") if self.instructions else 0.0
        return measured_ec(self.instructions, self.bits_sent)


@dataclass
class EnergyAttribution:
    """The full per-span partition of the machine's energy."""

    rows: list[AttributionRow]
    #: The global ledger total at attribution time (cores+links+support).
    total_j: float
    #: Link energy attributable to ReliableChannel retransmissions
    #: (informational: already contained in the rows' link energy).
    retry_j: float
    elapsed_s: float

    def attributed_j(self) -> float:
        """Sum over all rows — equals :attr:`total_j` up to float error."""
        return sum(row.total_j for row in self.rows)

    def span_rows(self) -> list[AttributionRow]:
        """Rows backed by real spans (synthetic buckets excluded)."""
        return [row for row in self.rows if row.span_id is not None]

    def folded(self, scale: float = 1.0) -> str:
        """Folded-stacks text (``root;child value`` per line, joules).

        Load into any flame-graph tool (``flamegraph.pl``, speedscope's
        folded importer).  ``scale`` multiplies values (e.g. ``1e9`` for
        nanojoules).  Values use ``repr`` so the output is byte-stable
        and sums reproduce the ledger total exactly.
        """
        lines = [
            f"{row.path} {row.total_j * scale!r}"
            for row in self.rows
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def ec_rows(self) -> list[tuple[str, int, int, float]]:
        """Per-span ``(path, instructions, bits_sent, E/C)`` rows."""
        return [
            (row.path, row.instructions, row.bits_sent, row.ec_ratio)
            for row in self.span_rows()
        ]

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "elapsed_s": self.elapsed_s,
            "total_j": self.total_j,
            "attributed_j": self.attributed_j(),
            "retry_j": self.retry_j,
            "rows": [
                {
                    "path": row.path,
                    "span_id": row.span_id,
                    "node": row.node_id,
                    "instructions": row.instructions,
                    "bits_sent": row.bits_sent,
                    "retry_bits": row.retry_bits,
                    "core_j": row.core_j,
                    "link_j": row.link_j,
                    "support_j": row.support_j,
                    "total_j": row.total_j,
                }
                for row in self.rows
            ],
        }

    def render(self, top: int = 12) -> str:
        """A printable per-span energy table (largest consumers first)."""
        lines = [
            f"energy attribution over {self.elapsed_s * 1e6:.1f} us: "
            f"{self.total_j * 1e6:.2f} uJ total, "
            f"{self.retry_j * 1e9:.2f} nJ in retries",
            f"{'span':<34} {'instr':>8} {'sent(b)':>8} "
            f"{'core(uJ)':>9} {'link(nJ)':>9} {'total(uJ)':>10}",
        ]
        ranked = sorted(self.rows, key=lambda r: (-r.total_j, r.path))
        for row in ranked[:top]:
            lines.append(
                f"{row.path:<34} {row.instructions:>8} {row.bits_sent:>8} "
                f"{row.core_j * 1e6:>9.3f} {row.link_j * 1e9:>9.2f} "
                f"{row.total_j * 1e6:>10.3f}"
            )
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more rows")
        return "\n".join(lines)


def _span_link_j(span: Span) -> float:
    """Table I energy of one span's per-class wire bits."""
    if not span.wire_bits_by_class:
        return 0.0
    return traffic_energy_joules(dict(span.wire_bits_by_class))


def attribute_energy(
    system: "SwallowSystem", recorder: SpanRecorder | None = None
) -> EnergyAttribution:
    """Partition the system's energy ledger across its recorded spans."""
    recorder = recorder if recorder is not None else system.span_recorder
    spans = list(recorder.spans) if recorder is not None else []
    accounting = system.accounting
    accounting.update()
    rows: list[AttributionRow] = []

    # -- cores: proportional split by issued instructions -------------------
    span_core_j: dict[int, float] = {span.span_id: 0.0 for span in spans}
    for core in system.cores:
        energy = accounting.trackers[core.node_id].energy_j
        total_instructions = core.stats.total_instructions
        attributed = 0.0
        if total_instructions > 0:
            for span in spans:
                issued = span.instr_by_node.get(core.node_id, 0)
                if issued == 0:
                    continue
                share = energy * issued / total_instructions
                span_core_j[span.span_id] += share
                attributed += share
        residual = energy - attributed
        if residual != 0.0:
            rows.append(
                AttributionRow(
                    path=f"<idle core{core.node_id}>",
                    name=f"<idle core{core.node_id}>",
                    span_id=None, node_id=core.node_id,
                    instructions=0, bits_sent=0, retry_bits=0,
                    core_j=residual, link_j=0.0, support_j=0.0,
                )
            )

    # -- links: Table I pricing of each span's wire-bit ledger --------------
    span_link_j = {span.span_id: _span_link_j(span) for span in spans}
    network_residual = accounting.link_energy_j - sum(span_link_j.values())

    for span in spans:
        rows.append(
            AttributionRow(
                path=span.path,
                name=span.name,
                span_id=span.span_id,
                node_id=span.node_id,
                instructions=span.instructions,
                bits_sent=span.bits_sent,
                retry_bits=span.retry_bits,
                core_j=span_core_j[span.span_id],
                link_j=span_link_j[span.span_id],
                support_j=0.0,
            )
        )
    if network_residual != 0.0:
        rows.append(
            AttributionRow(
                path="<network>", name="<network>", span_id=None,
                node_id=None, instructions=0, bits_sent=0, retry_bits=0,
                core_j=0.0, link_j=network_residual, support_j=0.0,
            )
        )

    # -- support: not caused by software ------------------------------------
    support = accounting.support_energy_j()
    if support != 0.0:
        rows.append(
            AttributionRow(
                path="<support>", name="<support>", span_id=None,
                node_id=None, instructions=0, bits_sent=0, retry_bits=0,
                core_j=0.0, link_j=0.0, support_j=support,
            )
        )

    return EnergyAttribution(
        rows=rows,
        total_j=accounting.total_energy_j(),
        retry_j=accounting.retry_energy_j(),
        elapsed_s=accounting.elapsed_s,
    )
