"""The kernel performance observatory: ledger, regression gate, heartbeats.

Three connected layers close the transparency loop for the *simulator's
own* performance, the way :mod:`repro.obs.energyscope` closed it for
simulated joules:

* **Hot-path attribution** lives in :mod:`repro.obs.profiling`
  (per-source wall time, queue-op accounting, folded flame stacks) and
  :func:`repro.obs.trace_export.profile_chrome_trace` (the meta-trace).
* **The perf-history ledger** (this module): an append-only JSONL file
  of :class:`PerfRecord` rows — one per bench per run — plus a
  rolling-baseline regression detector with a noise tolerance.  The
  ledger turns ``bench_profile.json`` from a single snapshot into a
  trajectory, and the detector turns the trajectory into a gate that
  protects kernel-speed wins once they land.
* **Live run heartbeats** (this module): :class:`RunHeartbeat` emits
  periodic JSONL progress snapshots on an event-count cadence — the
  streaming-progress primitive the campaign farm and DSE sweeps will
  consume.

Determinism contract: nothing here reads the clock on its own behalf
inside the simulation — :class:`PerfRecord` timestamps are **passed
in** by the caller at the process edge, and every heartbeat line keeps
its wall-clock fields (:data:`WALL_FIELDS`) separate from the
deterministic core, which :func:`heartbeat_core` extracts.  Two
same-seed runs produce byte-identical heartbeat cores.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, TextIO

#: Heartbeat fields derived from the wall clock — excluded from
#: byte-identity comparisons and from any determinism digest.
WALL_FIELDS = frozenset({"wall_s", "events_per_sec"})


def config_digest(config: Any) -> str:
    """A short stable digest of a JSON-able configuration object."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# The perf-history ledger
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerfRecord:
    """One bench's kernel throughput measurement at one point in time."""

    bench: str
    events: int
    wall_s: float
    #: Unix seconds, supplied by the caller (the CLI / bench harness
    #: stamps it at the process edge; nothing inside the determinism
    #: boundary reads the clock).
    timestamp: float
    git_sha: str = "unknown"
    config_digest: str = ""
    events_replayed: int = 0

    @property
    def events_per_sec(self) -> float:
        """Fresh kernel events per wall second (replay excluded)."""
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def to_dict(self) -> dict[str, Any]:
        """The ledger row (computed events/sec included for greppability)."""
        return {
            "bench": self.bench,
            "events": self.events,
            "events_replayed": self.events_replayed,
            "wall_s": self.wall_s,
            "events_per_sec": round(self.events_per_sec, 1),
            "timestamp": self.timestamp,
            "git_sha": self.git_sha,
            "config_digest": self.config_digest,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PerfRecord":
        return cls(
            bench=data["bench"],
            events=int(data["events"]),
            wall_s=float(data["wall_s"]),
            timestamp=float(data.get("timestamp", 0.0)),
            git_sha=str(data.get("git_sha", "unknown")),
            config_digest=str(data.get("config_digest", "")),
            events_replayed=int(data.get("events_replayed", 0)),
        )


def records_from_profile(
    profile: dict[str, Any],
    *,
    timestamp: float,
    git_sha: str = "unknown",
    min_events: int = 0,
) -> list[PerfRecord]:
    """Perf records for every bench row of a ``bench_profile.json`` doc.

    ``timestamp`` is supplied by the caller (process edge).  Rows with
    fewer than ``min_events`` events are skipped — events-per-second is
    meaningless for benches that barely touch the kernel.
    """
    records = []
    for row in profile.get("benches", []):
        if row.get("events", 0) < min_events:
            continue
        records.append(PerfRecord(
            bench=f"{row['file']}::{row['test']}",
            events=int(row["events"]),
            wall_s=float(row["wall_s"]),
            timestamp=timestamp,
            git_sha=git_sha,
            config_digest=config_digest(
                {"file": row["file"], "test": row["test"]}
            ),
            events_replayed=int(row.get("events_replayed", 0)),
        ))
    return records


class PerfHistory:
    """An append-only JSONL ledger of :class:`PerfRecord` rows.

    Rows are only ever appended, so file order is chronological per
    bench and the committed baseline can never be silently rewritten —
    a regression shows up as a new row that the detector flags, not as
    an overwritten number.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, record: PerfRecord) -> None:
        """Append one record (creating the file and parents if needed)."""
        self.extend([record])

    def extend(self, records: Iterable[PerfRecord]) -> int:
        """Append many records; returns how many were written."""
        rows = list(records)
        if not rows:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in rows:
                handle.write(json.dumps(record.to_dict(), sort_keys=True,
                                        separators=(",", ":")) + "\n")
        return len(rows)

    def load(self) -> list[PerfRecord]:
        """All records in append order ([] when the file doesn't exist)."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(PerfRecord.from_dict(json.loads(line)))
        return records

    def by_bench(self) -> dict[str, list[PerfRecord]]:
        """Records grouped per bench, each group in append order."""
        groups: dict[str, list[PerfRecord]] = {}
        for record in self.load():
            groups.setdefault(record.bench, []).append(record)
        return groups

    def baseline(self, bench: str, window: int = 5) -> float | None:
        """Rolling baseline: median events/sec of the last ``window`` rows.

        Short histories have explicit semantics rather than falling out
        of the median by accident:

        * **0 sessions** — ``None``: there is no baseline, so the gate
          records the bench as *unseen* instead of comparing against 0.
        * **1 session** — that session's events/sec verbatim.  One run
          is a weak baseline, but gating against it still catches a
          collapse on the very next run.
        * **2 sessions** — their midpoint ``(a + b) / 2``, splitting the
          difference until a third run lets a true median reject the
          outlier.
        * **>= 3 sessions** — the median of the last ``window`` rows,
          which a single noisy run cannot drag.
        """
        group = self.by_bench().get(bench)
        if not group:
            return None
        rates = [r.events_per_sec for r in group[-window:]]
        if len(rates) == 1:
            return rates[0]
        if len(rates) == 2:
            return (rates[0] + rates[1]) / 2
        return _median(rates)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


@dataclass(frozen=True)
class Comparison:
    """One bench's current throughput versus its rolling baseline."""

    bench: str
    baseline_eps: float
    current_eps: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """current / baseline (1.0 = unchanged, <1 = slower)."""
        if self.baseline_eps <= 0:
            return 0.0
        return self.current_eps / self.baseline_eps

    @property
    def regressed(self) -> bool:
        """True when current throughput fell below baseline*(1-tolerance)."""
        return self.current_eps < self.baseline_eps * (1.0 - self.tolerance)

    def render(self) -> str:
        """One aligned comparison line with the gate's verdict."""
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.bench:<60} {self.baseline_eps:>12,.0f} -> "
            f"{self.current_eps:>12,.0f} ev/s  ({self.ratio:>6.2f}x)  {verdict}"
        )


def compare_against_history(
    history: PerfHistory,
    current: Iterable[PerfRecord],
    *,
    tolerance: float = 0.30,
    window: int = 5,
    min_events: int = 10_000,
) -> tuple[list[Comparison], list[PerfRecord]]:
    """Gate current records against the ledger's rolling baselines.

    Returns ``(comparisons, unseen)``: one :class:`Comparison` per
    current record that has a baseline and at least ``min_events``
    events (small benches are pure noise), plus the records with no
    history yet (new benches — recorded, never gated).  A comparison
    with :attr:`Comparison.regressed` set means the bench lost more
    than ``tolerance`` of its baseline events/sec.
    """
    comparisons: list[Comparison] = []
    unseen: list[PerfRecord] = []
    for record in current:
        if record.events < min_events:
            continue
        baseline = history.baseline(record.bench, window=window)
        if baseline is None:
            unseen.append(record)
            continue
        comparisons.append(Comparison(
            bench=record.bench,
            baseline_eps=baseline,
            current_eps=record.events_per_sec,
            tolerance=tolerance,
        ))
    return comparisons, unseen


def render_history_report(history: PerfHistory, window: int = 5) -> str:
    """A per-bench trajectory table for ``repro perf report``."""
    groups = history.by_bench()
    if not groups:
        return f"perf history {history.path}: empty"
    lines = [f"perf history {history.path}: "
             f"{sum(len(g) for g in groups.values())} records, "
             f"{len(groups)} benches",
             f"{'bench':<60} {'n':>4} {'first':>12} {'last':>12} "
             f"{'best':>12} {'trend':>7}"]
    for bench in sorted(groups):
        group = groups[bench]
        eps = [r.events_per_sec for r in group]
        baseline = _median(eps[-window:])
        trend = (eps[-1] / eps[0] - 1.0) if eps[0] > 0 else 0.0
        lines.append(
            f"{bench:<60} {len(group):>4} {eps[0]:>12,.0f} {eps[-1]:>12,.0f} "
            f"{max(eps):>12,.0f} {trend:>+6.1%}"
        )
        lines[-1] += f"  (baseline {baseline:,.0f})"
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Live run heartbeats
# ---------------------------------------------------------------------------


def heartbeat_core(line: dict[str, Any]) -> dict[str, Any]:
    """The deterministic part of one heartbeat line.

    Strips :data:`WALL_FIELDS`; what remains is byte-identical across
    two same-seed runs — the property the heartbeat determinism tests
    pin down.
    """
    return {k: v for k, v in line.items() if k not in WALL_FIELDS}


class RunHeartbeat:
    """Periodic JSONL progress snapshots on an event-count cadence.

    Every ``every_events`` fresh kernel events, :meth:`beat` writes one
    JSON line: sim time, cumulative fresh/replayed event counts, queue
    depth high-water, pending events, checkpoints taken, the metrics
    delta since the previous beat (when a registry is attached), and —
    outside the deterministic core — cumulative wall seconds and
    events/sec.  The cadence is event-count-based, so *which* beats
    exist and everything in their deterministic core is a pure function
    of the run's configuration.

    Use :meth:`drive` to run a bare simulator to completion with
    heartbeats, or hand the object to
    :meth:`repro.checkpoint.ResumableRun.run`, which beats from its own
    drive loop (and reports replayed events separately).
    """

    def __init__(
        self,
        every_events: int,
        out=None,
        metrics=None,
    ) -> None:
        if every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        self.every_events = every_events
        self.metrics = metrics
        self.lines: list[dict[str, Any]] = []
        self.beats = 0
        self._out_path = None if out is None else Path(out)
        self._handle: TextIO | None = None
        self._wall_start = time.perf_counter()
        self._last_snapshot = metrics.snapshot() if metrics is not None else None

    def beat(
        self,
        sim,
        *,
        events: int,
        events_replayed: int = 0,
        checkpoints: int = 0,
        final: bool = False,
    ) -> dict[str, Any]:
        """Emit one heartbeat line; returns the line as a dict."""
        self.beats += 1
        wall_s = time.perf_counter() - self._wall_start
        line: dict[str, Any] = {
            "seq": self.beats,
            "final": final,
            "sim_time_ps": sim.now,
            "events": events,
            "events_replayed": events_replayed,
            "pending_events": sim.pending_events,
            "queue_depth_hwm": sim.queue_depth_high_water,
            "checkpoints": checkpoints,
        }
        if self.metrics is not None:
            snapshot = self.metrics.snapshot()
            line["metrics_delta"] = snapshot.delta(self._last_snapshot)
            self._last_snapshot = snapshot
        line["wall_s"] = round(wall_s, 6)
        line["events_per_sec"] = round(events / wall_s, 1) if wall_s > 0 else 0.0
        self.lines.append(line)
        if self._out_path is not None:
            if self._handle is None:
                self._out_path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self._out_path, "w", encoding="utf-8")
            self._handle.write(json.dumps(line, sort_keys=True,
                                          separators=(",", ":")) + "\n")
            self._handle.flush()
        return line

    def drive(self, sim, max_events: int | None = None) -> int:
        """Run ``sim`` until idle, beating every ``every_events`` events.

        Returns the number of events executed.  A final beat (with
        ``"final": true``) always closes the stream, so even a short run
        leaves at least one line behind.
        """
        executed = 0
        while True:
            chunk = self.every_events
            if max_events is not None:
                chunk = min(chunk, max_events - executed)
            if chunk <= 0:
                break
            ran = sim.run(max_events=chunk)
            executed += ran
            if ran == 0:
                break
            if ran == chunk and sim.next_event_time() is not None:
                self.beat(sim, events=executed)
            else:
                break
        self.beat(sim, events=executed, final=True)
        self.close()
        return executed

    def close(self) -> None:
        """Close the output file (idempotent; in-memory lines remain)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def core_jsonl(self) -> str:
        """The deterministic cores of every line, as canonical JSONL."""
        return "".join(
            json.dumps(heartbeat_core(line), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for line in self.lines
        )

    def __enter__(self) -> "RunHeartbeat":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<RunHeartbeat every={self.every_events} beats={self.beats}"
            + (f" out={self._out_path}" if self._out_path else "")
            + ">"
        )
