"""Trace export: JSONL and Chrome trace-event format.

Turns a :class:`~repro.sim.tracing.TraceRecorder` into files other tools
can open:

* **JSONL** — one JSON object per record, for ad-hoc scripting
  (``jq``, pandas, ...).
* **Chrome trace-event format** — loadable in Perfetto or
  ``chrome://tracing``.  Simulation time (picoseconds) maps onto trace
  timestamps (microseconds); every trace source (core, switch, link,
  ADC board) gets its own named track, grouped into one process per
  component category.

Both exports are pure functions of the recorded trace, so two
deterministic runs produce byte-identical files — the property the
determinism tests pin down.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.obs.netscope import NetScope
    from repro.obs.profiling import SimProfile
    from repro.obs.spans import SpanRecorder
    from repro.sim.tracing import TraceRecord

#: Process ids (and display names) for the Chrome trace, per category.
CATEGORY_PIDS: dict[str, int] = {
    "cores": 1,
    "switches": 2,
    "links": 3,
    "measurement": 4,
    "other": 5,
    "spans": 6,
    "profiler": 7,
    "netscope": 8,
}


def source_category(source: str) -> str:
    """Component category of a trace source name.

    Link names look like ``sw0->sw1#0``; switches are ``sw<N>``; cores
    ``core<N>``; measurement boards ``adc...``.  Anything else lands in
    ``other``.
    """
    if "->" in source:
        return "links"
    if source.startswith("core"):
        return "cores"
    if source.startswith("sw"):
        return "switches"
    if source.startswith("adc"):
        return "measurement"
    return "other"


def to_jsonl(records: Iterable["TraceRecord"]) -> str:
    """Serialise records as JSON Lines (one object per record)."""
    lines = [
        json.dumps(
            {
                "time_ps": rec.time_ps,
                "source": rec.source,
                "kind": rec.kind,
                "detail": [str(d) for d in rec.detail],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        for rec in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _span_events(spans: "SpanRecorder") -> list[dict[str, Any]]:
    """Chrome events for a span tree: slices, tracks and flow arrows.

    Spans become complete events (``"ph": "X"``) in a dedicated
    ``swallow.spans`` process with one track per node; cross-span
    messages become flow start/finish pairs (``"s"``/``"f"``), which
    Perfetto draws as arrows from the producer's track to the
    consumer's — the causal cross-core picture.
    """
    pid = CATEGORY_PIDS["spans"]
    started = [s for s in spans.spans if s.start_ps is not None]
    nodes = sorted(
        {s.node_id for s in started if s.node_id is not None}
    )
    tids = {node: tid for tid, node in enumerate(nodes)}
    unplaced_tid = len(nodes)

    def tid_of(span) -> int:
        if span.node_id is None:
            return unplaced_tid
        return tids[span.node_id]

    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "swallow.spans"},
    }]
    for node in nodes:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": tids[node], "args": {"name": f"node{node}"},
        })
    if any(s.node_id is None for s in started):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": unplaced_tid, "args": {"name": "unplaced"},
        })
    # Open spans are drawn up to the latest time the trace knows about.
    horizon = 0
    for span in started:
        horizon = max(horizon, span.start_ps, span.end_ps or 0)
    for msg in spans.messages:
        horizon = max(horizon, msg.recv_ps)
    by_id = {span.span_id: span for span in spans.spans}
    for span in started:
        end_ps = span.end_ps if span.end_ps is not None else horizon
        events.append({
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": span.start_ps / 1e6,
            "dur": (end_ps - span.start_ps) / 1e6,
            "pid": pid,
            "tid": tid_of(span),
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "instructions": span.instructions,
                "bits_sent": span.bits_sent,
            },
        })
    for index, msg in enumerate(spans.messages):
        src, dst = by_id[msg.src_id], by_id[msg.dst_id]
        common = {"name": "msg", "cat": "span", "id": index, "pid": pid}
        events.append({
            **common, "ph": "s", "ts": msg.send_ps / 1e6, "tid": tid_of(src),
        })
        events.append({
            **common, "ph": "f", "bp": "e", "ts": msg.recv_ps / 1e6,
            "tid": tid_of(dst),
        })
    return events


def to_chrome_trace(
    records: Iterable["TraceRecord"],
    spans: "SpanRecorder | None" = None,
    netscope: "NetScope | None" = None,
) -> dict[str, Any]:
    """Build a Chrome trace-event document from trace records.

    Every record becomes a thread-scoped *instant* event (``"ph": "i"``)
    on the track of its source; metadata events name one process per
    component category and one thread per source.  Timestamps are
    microseconds (``time_ps / 1e6``), the unit the trace viewers expect.
    With a :class:`~repro.obs.spans.SpanRecorder`, span slices and
    cross-span flow arrows are added on a dedicated process (see
    :func:`_span_events`); with a :class:`~repro.obs.netscope.NetScope`,
    its windowed utilization / queue-depth / blocked-time series are
    added as counter tracks (``"ph": "C"``) so contention renders as
    area charts alongside the span slices.
    """
    records = list(records)
    sources: dict[str, str] = {}
    for rec in records:
        sources.setdefault(rec.source, source_category(rec.source))
    tids = {source: tid for tid, source in enumerate(sorted(sources))}

    events: list[dict[str, Any]] = []
    for category in sorted({*sources.values()}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": CATEGORY_PIDS[category],
            "tid": 0,
            "args": {"name": f"swallow.{category}"},
        })
    for source in sorted(sources):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": CATEGORY_PIDS[sources[source]],
            "tid": tids[source],
            "args": {"name": source},
        })
    for rec in records:
        events.append({
            "name": rec.kind,
            "cat": sources[rec.source],
            "ph": "i",
            "s": "t",
            "ts": rec.time_ps / 1e6,
            "pid": CATEGORY_PIDS[sources[rec.source]],
            "tid": tids[rec.source],
            "args": {"detail": [str(d) for d in rec.detail]},
        })
    if spans is not None:
        events.extend(_span_events(spans))
    if netscope is not None:
        events.extend(netscope.counter_events())
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def chrome_trace_json(
    records: Iterable["TraceRecord"],
    spans: "SpanRecorder | None" = None,
    netscope: "NetScope | None" = None,
) -> str:
    """The Chrome trace document as canonical (byte-stable) JSON."""
    return json.dumps(to_chrome_trace(records, spans=spans, netscope=netscope),
                      sort_keys=True, separators=(",", ":"))


def write_jsonl(records: Iterable["TraceRecord"], path) -> None:
    """Write the JSONL export to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(records))


def write_chrome_trace(
    records: Iterable["TraceRecord"], path,
    spans: "SpanRecorder | None" = None,
    netscope: "NetScope | None" = None,
) -> None:
    """Write the Chrome trace-event export to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(records, spans=spans, netscope=netscope))


# ---------------------------------------------------------------------------
# Meta-trace: the simulator's *own* execution as a Chrome trace
# ---------------------------------------------------------------------------


def profile_chrome_trace(profile: "SimProfile") -> dict[str, Any]:
    """A Chrome trace of the *simulator's* execution, from a profile.

    Every wall-timed event sample in the profile (see
    ``SimProfile.meta_samples``) becomes a complete slice (``"ph": "X"``)
    on the track of its callback source, inside one ``swallow.profiler``
    process.  Timestamps are **wall-clock** microseconds since the
    profiling window opened — unlike every other export in this module,
    this trace shows where the host machine's time went, so it is *not*
    byte-stable across runs and never enters a determinism digest.
    """
    pid = CATEGORY_PIDS["profiler"]
    sources = sorted({source for _, _, source in profile.meta_samples})
    tids = {source: tid for tid, source in enumerate(sources)}
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "swallow.profiler"},
    }]
    for source in sources:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": tids[source], "args": {"name": source},
        })
    for start_us, dur_us, source in profile.meta_samples:
        events.append({
            "name": source,
            "cat": "profiler",
            "ph": "X",
            "ts": start_us,
            "dur": dur_us,
            "pid": pid,
            "tid": tids[source],
        })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_profile_chrome_trace(profile: "SimProfile", path) -> None:
    """Write the simulator meta-trace (see :func:`profile_chrome_trace`)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(profile_chrome_trace(profile), sort_keys=True,
                            separators=(",", ":")))
