"""Metrics registry: counters, gauges and histograms with labels.

The registry is the single place every subsystem publishes its numbers.
Two publication styles are supported:

* **eager instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) for code that wants to record values as they
  happen — e.g. the ADC sample counter or a switch's route-hold-time
  histogram; and
* **lazy collectors** (:meth:`MetricsRegistry.register_collector`,
  :meth:`MetricsRegistry.counter_fn`, :meth:`MetricsRegistry.gauge_fn`)
  that are only polled at :meth:`MetricsRegistry.snapshot` time.  Hot
  paths keep their existing plain-int counters (``link.tokens_carried``,
  ``core.stats.instructions``, ...) and pay *nothing* per event; the
  collector reads them when somebody asks.

Series are identified by ``name{label=value,...}`` with labels sorted,
e.g. ``switch.tokens_forwarded{node=3}``.  Snapshots are deterministic:
two identical simulation runs serialise to byte-identical JSON, which is
part of the repository's determinism invariant (see
``tests/sim/test_determinism.py``).

When the registry is disabled every instrument degrades to a cheap
no-op (one attribute check) and :meth:`MetricsRegistry.snapshot`
returns an empty snapshot without running any collector.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable

#: A collector's emit callback: ``emit(name, labels, value)``.
EmitFn = Callable[[str, dict[str, str], Any], None]

#: Default histogram bucket boundaries (powers of ten; values are
#: whatever unit the caller observes in — often picoseconds).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0 ** k for k in range(0, 13))


def series_key(name: str, labels: dict[str, str] | None = None) -> str:
    """The canonical ``name{k=v,...}`` identity of one series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Metric:
    """Base class for eager instruments: a named, labelled series."""

    __slots__ = ("name", "labels", "help", "_enabled")

    def __init__(self, name: str, labels: dict[str, str], help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self._enabled = True

    @property
    def key(self) -> str:
        """The series key, e.g. ``adc.samples{slice=0,0}``."""
        return series_key(self.name, self.labels)

    def sample_value(self) -> Any:
        """The value this instrument contributes to a snapshot."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.key}={self.sample_value()!r}>"


class Counter(Metric):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: dict[str, str], help: str = ""):
        super().__init__(name, labels, help)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def sample_value(self) -> int | float:
        """Current count."""
        return self.value


class Gauge(Metric):
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: dict[str, str], help: str = ""):
        super().__init__(name, labels, help)
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        """Replace the gauge's value."""
        if self._enabled:
            self.value = value

    def add(self, amount: int | float) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        if self._enabled:
            self.value += amount

    def sample_value(self) -> int | float:
        """Current value."""
        return self.value


class Histogram(Metric):
    """A distribution summarised as cumulative bucket counts."""

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
    ):
        super().__init__(name, labels, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        self.counts = [0] * len(self.buckets)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        if not self._enabled:
            return
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def sample_value(self) -> dict[str, Any]:
        """Bucket counts (cumulative, Prometheus-style) plus count/sum."""
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = self.total
        return {"buckets": cumulative, "count": self.total, "sum": self.sum}


class MetricsSnapshot:
    """An immutable point-in-time view of every series in a registry."""

    def __init__(self, samples: list[tuple[str, dict[str, str], Any]]):
        self._samples = list(samples)
        self._by_key: dict[str, Any] = {}
        for name, labels, value in self._samples:
            key = series_key(name, labels)
            if key in self._by_key:
                raise ValueError(f"duplicate metric series {key!r}")
            self._by_key[key] = value

    # -- mapping-ish access ------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __getitem__(self, key: str) -> Any:
        return self._by_key[key]

    def keys(self) -> list[str]:
        """All series keys, sorted."""
        return sorted(self._by_key)

    def as_dict(self) -> dict[str, Any]:
        """``{series_key: value}`` sorted by key."""
        return {key: self._by_key[key] for key in sorted(self._by_key)}

    # -- structured queries ------------------------------------------------

    def value(self, name: str, default: Any = 0, **labels: str) -> Any:
        """The value of one exact series (``default`` when absent)."""
        return self._by_key.get(series_key(name, labels), default)

    def series(self, name: str) -> list[tuple[dict[str, str], Any]]:
        """Every ``(labels, value)`` pair recorded under ``name``."""
        return [
            (dict(labels), value)
            for sample_name, labels, value in self._samples
            if sample_name == name
        ]

    def sum(self, name: str, **match: str) -> float:
        """Sum of all numeric ``name`` series whose labels include ``match``."""
        total = 0.0
        for labels, value in self.series(name):
            if all(labels.get(k) == v for k, v in match.items()):
                total += value
        return total

    # -- comparison / export -----------------------------------------------

    def delta(self, earlier: "MetricsSnapshot") -> dict[str, Any]:
        """Per-series change versus an earlier snapshot.

        Numeric series subtract; histogram series subtract count and sum.
        Series absent from ``earlier`` count from zero.  Series that did
        not change are omitted, so an idle window reads as ``{}``.
        """
        out: dict[str, Any] = {}
        for key in sorted(self._by_key):
            new = self._by_key[key]
            old = earlier._by_key.get(key)
            if isinstance(new, dict):
                old_count = old["count"] if isinstance(old, dict) else 0
                old_sum = old["sum"] if isinstance(old, dict) else 0.0
                change = {"count": new["count"] - old_count,
                          "sum": new["sum"] - old_sum}
                if change["count"] or change["sum"]:
                    out[key] = change
            else:
                change = new - (old if isinstance(old, (int, float)) else 0)
                if change:
                    out[key] = change
        return out

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact) — byte-stable across runs."""
        return json.dumps(self._by_key, sort_keys=True, separators=(",", ":"))

    def render(self, prefix: str | None = None) -> str:
        """A human-readable listing, optionally filtered by name prefix."""
        lines = []
        for key in sorted(self._by_key):
            if prefix is not None and not key.startswith(prefix):
                continue
            value = self._by_key[key]
            if isinstance(value, dict):
                value = f"count={value['count']} sum={value['sum']:g}"
            elif isinstance(value, float):
                value = f"{value:g}"
            lines.append(f"{key:<56} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<MetricsSnapshot {len(self._by_key)} series>"


class MetricsRegistry:
    """Home for every metric series published by a simulation.

    ``enabled=False`` builds a registry whose instruments no-op and whose
    snapshots are empty — the near-zero-overhead path for production-style
    runs that only want the final energy report.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._instruments: dict[str, Metric] = {}
        self._collectors: list[Callable[[EmitFn], None]] = []

    @property
    def enabled(self) -> bool:
        """Whether instruments record and snapshots collect."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on (also re-arms existing instruments)."""
        self._enabled = True
        for metric in self._instruments.values():
            metric._enabled = True

    def disable(self) -> None:
        """Turn recording off; instruments become cheap no-ops."""
        self._enabled = False
        for metric in self._instruments.values():
            metric._enabled = False

    # -- eager instruments -------------------------------------------------

    def _instrument(self, cls, name: str, labels: dict[str, str],
                    help: str, **kwargs) -> Metric:
        key = series_key(name, labels)
        metric = self._instruments.get(key)
        if metric is None:
            metric = cls(name, labels, help=help, **kwargs)
            metric._enabled = self._enabled
            self._instruments[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"series {key!r} already registered as "
                             f"{type(metric).__name__}")
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get-or-create the :class:`Counter` for ``name{labels}``."""
        return self._instrument(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get-or-create the :class:`Gauge` for ``name{labels}``."""
        return self._instrument(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        """Get-or-create the :class:`Histogram` for ``name{labels}``."""
        return self._instrument(Histogram, name, labels, help, buckets=buckets)

    # -- lazy collectors ---------------------------------------------------

    def register_collector(self, collect: Callable[[EmitFn], None]) -> None:
        """Register ``collect(emit)``, polled once per :meth:`snapshot`.

        The callback may emit any number of series (dynamic label sets —
        e.g. one ``core.instructions`` series per opcode class actually
        executed).  Registration is free at runtime: nothing is called
        until a snapshot is taken.
        """
        self._collectors.append(collect)

    def counter_fn(self, name: str, fn: Callable[[], int | float],
                   help: str = "", **labels: str) -> None:
        """Publish ``fn()`` as a lazily-read counter series."""
        frozen = dict(labels)
        self._collectors.append(lambda emit: emit(name, frozen, fn()))

    def gauge_fn(self, name: str, fn: Callable[[], int | float],
                 help: str = "", **labels: str) -> None:
        """Publish ``fn()`` as a lazily-read gauge series."""
        frozen = dict(labels)
        self._collectors.append(lambda emit: emit(name, frozen, fn()))

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Collect every series right now (empty when disabled)."""
        if not self._enabled:
            return MetricsSnapshot([])
        samples: list[tuple[str, dict[str, str], Any]] = [
            (metric.name, metric.labels, metric.sample_value())
            for metric in self._instruments.values()
        ]
        emit: EmitFn = lambda name, labels, value: samples.append(
            (name, dict(labels), value)
        )
        for collect in self._collectors:
            collect(emit)
        return MetricsSnapshot(samples)

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return (f"<MetricsRegistry {state}, {len(self._instruments)} "
                f"instruments, {len(self._collectors)} collectors>")
