"""Live power watchpoints: the paper's measure-and-adapt loop, in software.

Swallow's defining capability is that running software can *observe its
own power* through the shunt/ADC chain and respond (§II).  A
:class:`PowerWatchpoint` packages that loop: it samples a
:class:`~repro.energy.measurement.MeasurementBoard` periodically
(respecting the ADC's 2 MS/s single-channel / 1 MS/s all-channel caps),
maintains a windowed mean, and fires a simulator callback when a
threshold or energy-budget rule trips — at which point the program can,
for example, request a DVFS step down and watch the power fall on the
very next windows.

Watchpoints are ordinary simulator processes: sampling is bounded (a
fixed duration, like :meth:`MeasurementBoard.record_trace`) so an armed
watchpoint never keeps the event queue alive forever, and everything is
deterministic — same configuration, same firings, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.energy.measurement import (
    MAX_ALL_RATE_HZ,
    MAX_SINGLE_RATE_HZ,
    MeasurementBoard,
    SamplingRateError,
)
from repro.sim import PS_PER_S, Process


@dataclass(frozen=True)
class WatchEvent:
    """One watchpoint firing."""

    time_ps: int
    rule: str            # "above", "below" or "budget"
    window_mean_mw: float
    threshold: float     # mW for threshold rules, joules for "budget"

    def describe(self) -> str:
        """A printable one-line description of the firing."""
        t_us = self.time_ps / 1e6
        if self.rule == "budget":
            return (
                f"[{t_us:9.1f} us] budget exceeded: "
                f"{self.window_mean_mw:.3f} J spent > {self.threshold:.3f} J"
            )
        op = ">" if self.rule == "above" else "<"
        return (
            f"[{t_us:9.1f} us] power {self.rule} threshold: "
            f"{self.window_mean_mw:.1f} mW {op} {self.threshold:.1f} mW"
        )


class PowerWatchpoint:
    """A windowed power monitor with threshold/budget rules.

    Parameters
    ----------
    board:
        The slice's measurement board to sample.
    channel:
        Rail index to watch, or ``None`` to watch the sum of all rails
        (capped at 1 MS/s instead of 2 MS/s, as in the paper).
    rate_hz:
        ADC sampling rate.
    window_samples:
        Samples per evaluation window; rules are checked against the
        window mean, so short spikes shorter than a window are ignored.
    above_mw / below_mw:
        Threshold rules: fire when the window mean crosses the level.
    budget_j:
        Energy-budget rule: fire (once) when the energy integrated from
        the watchpoint's own samples exceeds this many joules.
    on_fire:
        ``on_fire(watchpoint, event)`` callback run inside the simulation
        at the moment of the firing — the program's chance to adapt.
    cooldown_windows:
        Quiet windows required after a threshold firing before the same
        rule may fire again (prevents a sustained overload from firing
        every window).
    """

    def __init__(
        self,
        board: MeasurementBoard,
        channel: int | None = None,
        rate_hz: float = 250_000.0,
        window_samples: int = 4,
        above_mw: float | None = None,
        below_mw: float | None = None,
        budget_j: float | None = None,
        on_fire: Callable[["PowerWatchpoint", WatchEvent], None] | None = None,
        cooldown_windows: int = 1,
        name: str = "watch",
    ):
        cap = MAX_SINGLE_RATE_HZ if channel is not None else MAX_ALL_RATE_HZ
        if rate_hz > cap:
            raise SamplingRateError(
                f"{rate_hz:g} S/s exceeds the {cap:g} S/s ADC limit"
            )
        if rate_hz <= 0:
            raise SamplingRateError("sampling rate must be positive")
        if window_samples < 1:
            raise ValueError("window must hold at least one sample")
        if above_mw is None and below_mw is None and budget_j is None:
            raise ValueError("a watchpoint needs at least one rule")
        self.board = board
        self.channel = channel
        self.rate_hz = rate_hz
        self.window_samples = window_samples
        self.above_mw = above_mw
        self.below_mw = below_mw
        self.budget_j = budget_j
        self.on_fire = on_fire
        self.cooldown_windows = cooldown_windows
        self.name = name
        self.firings: list[WatchEvent] = []
        self.samples_taken = 0
        #: Energy (J) integrated from this watchpoint's own samples —
        #: the *measured* energy, quantisation and all, not the ledger's.
        self.energy_j = 0.0
        self._armed = False
        self._cooldown = {"above": 0, "below": 0}
        self._budget_fired = False

    # -- control ------------------------------------------------------------

    def arm(self, duration_s: float) -> "PowerWatchpoint":
        """Start sampling for ``duration_s`` of simulated time."""
        if self._armed:
            raise RuntimeError(f"{self.name}: already armed")
        self._armed = True
        count = int(duration_s * self.rate_hz)
        interval_ps = round(PS_PER_S / self.rate_hz)
        Process(
            self.board.sim, self._sampler(count, interval_ps),
            name=f"watchpoint-{self.name}",
        )
        return self

    def disarm(self) -> None:
        """Stop sampling; the pending sample wakeup becomes a no-op."""
        self._armed = False

    @property
    def armed(self) -> bool:
        """True while the sampling process is live."""
        return self._armed

    # -- sampling -----------------------------------------------------------

    def _read_mw(self) -> float:
        if self.channel is not None:
            return self.board.sample_channel(self.channel)
        return sum(self.board.sample_all())

    def _sampler(self, count: int, interval_ps: int):
        interval_s = interval_ps / PS_PER_S
        window: list[float] = []
        for _ in range(count):
            if not self._armed:
                return
            power_mw = self._read_mw()
            self.samples_taken += 1
            self.energy_j += power_mw * 1e-3 * interval_s
            window.append(power_mw)
            if self.budget_j is not None and not self._budget_fired \
                    and self.energy_j > self.budget_j:
                self._budget_fired = True
                self._fire("budget", self.energy_j, self.budget_j)
            if len(window) >= self.window_samples:
                mean = sum(window) / len(window)
                window.clear()
                self._evaluate(mean)
            yield interval_ps
        self._armed = False

    def _evaluate(self, mean_mw: float) -> None:
        fired: set[str] = set()
        if self.above_mw is not None and mean_mw > self.above_mw:
            if self._cooldown["above"] == 0:
                self._cooldown["above"] = self.cooldown_windows
                self._fire("above", mean_mw, self.above_mw)
                fired.add("above")
        if self.below_mw is not None and mean_mw < self.below_mw:
            if self._cooldown["below"] == 0:
                self._cooldown["below"] = self.cooldown_windows
                self._fire("below", mean_mw, self.below_mw)
                fired.add("below")
        # A firing buys exactly ``cooldown_windows`` quiet windows: the
        # counter only starts draining on the windows after the firing.
        for rule in ("above", "below"):
            if rule not in fired and self._cooldown[rule] > 0:
                self._cooldown[rule] -= 1

    def _fire(self, rule: str, observed: float, threshold: float) -> None:
        event = WatchEvent(
            time_ps=self.board.sim.now, rule=rule,
            window_mean_mw=observed, threshold=threshold,
        )
        self.firings.append(event)
        if self.on_fire is not None:
            self.on_fire(self, event)

    def __repr__(self) -> str:
        return (
            f"<PowerWatchpoint {self.name} "
            f"{'armed' if self._armed else 'idle'}, "
            f"{len(self.firings)} firing(s)>"
        )
