"""Causal spans: distributed-tracing contexts for simulated software.

The paper's energy-transparency story needs an answer to *which piece of
software* spent the joules, not just which core.  A :class:`Span` is the
tracing industry's answer adapted to the simulator: a named interval of
work with a parent, carried by the thread executing it and *piggybacked
on every token that thread sends* (see ``Token.span``).  Because the
annotation rides the wire, a message's end-to-end path — chanend buffer,
per-hop serialization, retries injected by a fault campaign — is charged
to the span that produced it, and cross-core causality (producer span →
consumer span) reconstructs as messages between spans.

Everything here is deterministic: span ids are sequential, collections
are ordered by creation, and the exports (:meth:`SpanRecorder.to_jsonl`,
the Chrome-trace flow events in :mod:`repro.obs.trace_export`) are pure
functions of the recorded state — two identical runs produce
byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class SpanMessage:
    """One observed cross-span message (send completion → receive)."""

    src_id: int
    dst_id: int
    send_ps: int
    recv_ps: int

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "type": "message",
            "src": self.src_id,
            "dst": self.dst_id,
            "send_ps": self.send_ps,
            "recv_ps": self.recv_ps,
        }


@dataclass
class Span:
    """One attributable interval of work.

    Ledger fields fill in as the simulation runs: the owning core charges
    :attr:`instructions` (split per node in :attr:`instr_by_node`, since
    a nOS task may be restarted on a different core), chanends charge
    :attr:`bits_sent` at buffer entry, and every half-link hop charges
    :attr:`wire_bits_by_class` under the link's Table I class.
    """

    name: str
    span_id: int
    recorder: "SpanRecorder" = field(repr=False)
    parent: "Span | None" = None
    node_id: int | None = None
    start_ps: int | None = None
    end_ps: int | None = None
    instructions: int = 0
    instr_by_node: dict[int, int] = field(default_factory=dict)
    #: Payload bits this span pushed into transmit buffers.
    bits_sent: int = 0
    #: Wire bits serialized on behalf of this span, per link class —
    #: every hop counts, so multi-hop routes and retransmissions cost
    #: proportionally more, exactly like the global link ledger.
    wire_bits_by_class: dict[str, int] = field(default_factory=dict)
    #: Token-hops charged (one per token per link traversed).
    token_hops: int = 0
    #: Wire bits of retransmitted frames (ReliableChannel retries).
    retry_bits: int = 0
    #: Simulation time of the span's most recent send (message causality).
    last_send_ps: int = 0
    #: Free-form key -> value labels (policy decisions, deadline verdicts).
    #: Exported sorted, so annotated traces stay byte-stable.
    annotations: dict[str, str] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    # -- lifecycle ----------------------------------------------------------

    def begin(self, time_ps: int) -> None:
        """Open the span (first call wins; later calls are no-ops)."""
        if self.start_ps is None:
            self.start_ps = time_ps

    def finish(self, time_ps: int) -> None:
        """Close the span (first call wins; later calls are no-ops)."""
        if self.end_ps is None:
            self.end_ps = time_ps

    @property
    def parent_id(self) -> int | None:
        """The parent's span id, or None for a root."""
        return self.parent.span_id if self.parent is not None else None

    @property
    def path(self) -> str:
        """Root-to-self span names joined with ``;`` (folded-stacks form)."""
        names: list[str] = []
        span: Span | None = self
        while span is not None:
            names.append(span.name)
            span = span.parent
        return ";".join(reversed(names))

    @property
    def wire_bits(self) -> int:
        """Total wire bits across all link classes."""
        return sum(self.wire_bits_by_class.values())

    def child(self, name: str, node_id: int | None = None) -> "Span":
        """Create a child span."""
        return self.recorder.span(name, parent=self, node_id=node_id)

    # -- charging (hot paths) ----------------------------------------------

    def count_instruction(self, node_id: int) -> None:
        """Charge one issued instruction executed on ``node_id``."""
        self.instructions += 1
        self.instr_by_node[node_id] = self.instr_by_node.get(node_id, 0) + 1

    def add_wire_bits(self, link_class: str, bits: int) -> None:
        """Charge ``bits`` serialized on a link of ``link_class``."""
        by_class = self.wire_bits_by_class
        by_class[link_class] = by_class.get(link_class, 0) + bits
        self.token_hops += 1

    def annotate(self, key: str, value) -> None:
        """Attach a label (last write wins; values are stringified)."""
        self.annotations[str(key)] = str(value)

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serialisable form (stable key order)."""
        return {
            "type": "span",
            "trace_id": self.recorder.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node_id,
            "start_ps": self.start_ps,
            "end_ps": self.end_ps,
            "instructions": self.instructions,
            "instr_by_node": {
                str(node): count
                for node, count in sorted(self.instr_by_node.items())
            },
            "bits_sent": self.bits_sent,
            "wire_bits_by_class": dict(sorted(self.wire_bits_by_class.items())),
            "token_hops": self.token_hops,
            "retry_bits": self.retry_bits,
            "annotations": dict(sorted(self.annotations.items())),
        }

    def __str__(self) -> str:
        return f"span#{self.span_id} {self.name}"


class SpanRecorder:
    """Creates spans, observes cross-span messages, exports the tree."""

    def __init__(self, trace_id: int = 1):
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self.messages: list[SpanMessage] = []
        self._next_id = 1

    def span(
        self,
        name: str,
        parent: Span | None = None,
        node_id: int | None = None,
    ) -> Span:
        """Create a new span (ids are sequential, hence deterministic)."""
        span = Span(
            name=name, span_id=self._next_id, recorder=self,
            parent=parent, node_id=node_id,
        )
        self._next_id += 1
        self.spans.append(span)
        if parent is not None:
            parent.children.append(span)
        return span

    def record_message(
        self, src: Span, dst: Span, send_ps: int, recv_ps: int
    ) -> None:
        """Record one completed cross-span message."""
        self.messages.append(
            SpanMessage(src.span_id, dst.span_id, send_ps, recv_ps)
        )

    # -- queries ------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Spans with no parent, in creation order."""
        return [span for span in self.spans if span.parent is None]

    def find(self, name: str) -> Span | None:
        """The first span named ``name``, if any."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterable[Span]:
        return iter(self.spans)

    # -- export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Spans (by id) then messages (in order) as canonical JSON Lines."""
        lines = [
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in self.spans
        ]
        lines += [
            json.dumps(msg.to_dict(), sort_keys=True, separators=(",", ":"))
            for msg in self.messages
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def digest(self) -> str:
        """A stable hash of the span tree + messages (determinism checks)."""
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()

    def render(self) -> str:
        """A printable indented span tree with the per-span ledgers."""
        lines = [
            f"trace {self.trace_id}: {len(self.spans)} spans, "
            f"{len(self.messages)} messages"
        ]

        def visit(span: Span, depth: int) -> None:
            start = "?" if span.start_ps is None else f"{span.start_ps / 1e6:.1f}"
            end = "?" if span.end_ps is None else f"{span.end_ps / 1e6:.1f}"
            lines.append(
                f"{'  ' * depth}#{span.span_id} {span.name} "
                f"[{start}..{end} us] node={span.node_id} "
                f"instr={span.instructions} sent={span.bits_sent}b "
                f"wire={span.wire_bits}b hops={span.token_hops}"
                + (f" retry={span.retry_bits}b" if span.retry_bits else "")
            )
            for c in span.children:
                visit(c, depth + 1)

        for root in self.roots():
            visit(root, 0)
        return "\n".join(lines)
