"""Simulation profiling: where do the *simulator's* cycles go?

The energy model answers "where did the simulated joules go"; this
module answers the meta-question every scaling PR needs: how many events
did the kernel execute, on whose behalf, how much *wall time* each
callback source consumed, how hard the event queue worked (push/pop
volume, cancel churn, depth over time), and how fast simulated time is
advancing relative to wall-clock time.
:meth:`repro.sim.engine.Simulator.profile` installs a
:class:`SimProfiler` for the duration of a ``with`` block and leaves a
finished :class:`SimProfile` behind::

    with sim.profile() as profile:
        sim.run()
    print(profile.render())
    print(profile.folded())        # flame-graph folded stacks

Wall-time attribution mirrors the energy scope's residual convention
(:mod:`repro.obs.energyscope`): per-source callback time is measured
directly (every event by default, or every ``wall_sample_every``-th
event scaled up), and whatever the callbacks do not account for — heap
maintenance, the run loop itself — lands in a synthetic ``<kernel>``
source, so the per-source wall times always sum to the total wall time
of the window.

Profiles deliberately live *outside* the determinism boundary: they
include wall-clock timings, so they are never part of metric snapshots
or trace digests.  The queue accounting (pushes, cancelled pops, the
depth timeline, which is keyed by executed-event count rather than wall
time) is deterministic, but it rides in the same report.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

#: Synthetic source holding wall time not attributed to any callback:
#: heap push/pop, the run loop, and profiler overhead itself.
KERNEL_SOURCE = "<kernel>"

#: Raw event keys accumulate in a flat list and are folded into counts
#: in batches of this many (Counter.update runs at C speed), keeping the
#: per-event hook to a single list append.  The batch is kept small
#: enough for the buffer to stay cache-resident — larger batches
#: measurably slow the observed kernel on small-cache hosts.
_FOLD_THRESHOLD = 4096


def callback_source(callback: Callable[[], None]) -> str:
    """A stable, human-readable name for an event callback.

    Bound methods name their class (``InputPort._run``); plain functions
    and lambdas use their qualified name with the ``<locals>`` noise
    stripped (``HalfLink.send.<lambda>``).
    """
    bound_self = getattr(callback, "__self__", None)
    if bound_self is not None:
        return f"{type(bound_self).__name__}.{callback.__name__}"
    name = getattr(callback, "__qualname__", None) or getattr(
        callback, "__name__", None
    )
    if name is None:
        return type(callback).__name__
    return name.replace(".<locals>", "")


def _key_source(key: Any) -> str:
    """Resolve a hot-path event key (usually a code object) to a name.

    Code objects carry their qualified name (``XCore._tick``,
    ``HalfLink.send.<locals>.<lambda>``); callables without a code
    object were keyed by the callable itself and fall back to
    :func:`callback_source`.
    """
    qualname = getattr(key, "co_qualname", None) or getattr(
        key, "co_name", None
    )
    if qualname is not None:
        return qualname.replace(".<locals>", "")
    return callback_source(key)


@dataclass
class SimProfile:
    """The result of one profiled window of simulation."""

    events_total: int = 0
    events_by_source: dict[str, int] = field(default_factory=dict)
    queue_depth_high_water: int = 0
    sim_time_ps: int = 0
    wall_time_s: float = 0.0
    #: Trace records evicted by the attached recorder's ring buffer
    #: during this window (0 when no tracer was attached or nothing was
    #: lost) — surfaces flight-recorder truncation instead of silently
    #: dropping history.
    trace_dropped_events: int = 0
    #: Estimated wall seconds per callback source (sampled callback time
    #: scaled by the sampling stride, plus a ``<kernel>`` residual), so
    #: the values sum to :attr:`wall_time_s`.
    wall_by_source: dict[str, float] = field(default_factory=dict)
    #: Every how many executed events a callback was wall-timed (1 =
    #: every event).
    wall_sample_every: int = 1
    #: Number of events whose callbacks were actually wall-timed.
    wall_sampled_events: int = 0
    #: Event-queue operation accounting: total heap pushes, and pops
    #: that discarded a cancelled event (cancel churn — work the queue
    #: did for events that never ran).
    queue_pushes: int = 0
    queue_pops_cancelled: int = 0
    #: Sampled ``(events_executed, queue_depth)`` pairs — a deterministic
    #: queue-depth timeline keyed by executed-event count.
    depth_timeline: list[tuple[int, int]] = field(default_factory=list)
    #: Sampled ``(wall_offset_us, wall_duration_us, source)`` tuples for
    #: the meta-trace (bounded by the profiler's ``meta_capacity``).
    meta_samples: list[tuple[float, float, str]] = field(default_factory=list)
    #: Meta-trace samples discarded once ``meta_capacity`` was reached.
    meta_dropped: int = 0

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall-clock second (>1 is faster than life)."""
        if self.wall_time_s <= 0:
            return 0.0
        return (self.sim_time_ps / 1e12) / self.wall_time_s

    @property
    def events_per_sec(self) -> float:
        """Kernel events executed per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_total / self.wall_time_s

    @property
    def wall_attributed_s(self) -> float:
        """Sum of per-source wall estimates (== wall_time_s with residual)."""
        return sum(self.wall_by_source.values())

    @property
    def cancel_churn(self) -> float:
        """Share of heap pushes that were later popped as cancelled."""
        if self.queue_pushes <= 0:
            return 0.0
        return self.queue_pops_cancelled / self.queue_pushes

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable form (sources sorted by event count)."""
        return {
            "events_total": self.events_total,
            "events_by_source": dict(
                sorted(self.events_by_source.items(),
                       key=lambda kv: (-kv[1], kv[0]))
            ),
            "queue_depth_high_water": self.queue_depth_high_water,
            "sim_time_ps": self.sim_time_ps,
            "wall_time_s": self.wall_time_s,
            "sim_wall_ratio": self.sim_wall_ratio,
            "events_per_sec": self.events_per_sec,
            "trace_dropped_events": self.trace_dropped_events,
            "wall_by_source": dict(
                sorted(self.wall_by_source.items(),
                       key=lambda kv: (-kv[1], kv[0]))
            ),
            "wall_sample_every": self.wall_sample_every,
            "wall_sampled_events": self.wall_sampled_events,
            "queue_pushes": self.queue_pushes,
            "queue_pops_cancelled": self.queue_pops_cancelled,
            "cancel_churn": self.cancel_churn,
            "depth_timeline": [list(pair) for pair in self.depth_timeline],
            "meta_dropped": self.meta_dropped,
        }

    def folded(self) -> str:
        """Flame-graph folded stacks: ``sim;<source> <microseconds>``.

        One line per source with integer-microsecond weights, the format
        ``flamegraph.pl`` and speedscope ingest directly.  Sources sum
        to the window's total wall time (the ``<kernel>`` residual line
        carries everything the callbacks did not account for).
        """
        lines = []
        for source, seconds in sorted(self.wall_by_source.items(),
                                      key=lambda kv: (-kv[1], kv[0])):
            micros = int(round(seconds * 1e6))
            if micros > 0:
                lines.append(f"sim;{source} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self, top: int = 12) -> str:
        """A printable summary (the ``top`` busiest callback sources)."""
        lines = [
            f"profile: {self.events_total} events in {self.wall_time_s:.3f} s wall "
            f"({self.events_per_sec:,.0f} ev/s), "
            f"{self.sim_time_ps / 1e6:.1f} us simulated "
            f"(sim/wall {self.sim_wall_ratio:.2e}), "
            f"queue high-water {self.queue_depth_high_water}"
            + (
                f", TRACE DROPPED {self.trace_dropped_events} records"
                if self.trace_dropped_events else ""
            ),
            f"queue ops: {self.queue_pushes} pushes, "
            f"{self.queue_pops_cancelled} cancelled pops "
            f"({self.cancel_churn:.1%} churn); wall sampled every "
            f"{self.wall_sample_every} event(s), {self.wall_sampled_events} sampled",
        ]
        ranked = sorted(self.events_by_source.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        for source, count in ranked[:top]:
            share = count / self.events_total if self.events_total else 0.0
            wall = self.wall_by_source.get(source, 0.0)
            wall_share = wall / self.wall_time_s if self.wall_time_s > 0 else 0.0
            lines.append(
                f"  {source:<40} {count:>10}  {share:>6.1%}  "
                f"{wall * 1e3:>9.2f} ms  {wall_share:>6.1%}"
            )
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more sources")
        kernel = self.wall_by_source.get(KERNEL_SOURCE)
        if kernel is not None:
            share = kernel / self.wall_time_s if self.wall_time_s > 0 else 0.0
            lines.append(
                f"  {KERNEL_SOURCE:<40} {'-':>10}  {'':>6}  "
                f"{kernel * 1e3:>9.2f} ms  {share:>6.1%}"
            )
        return "\n".join(lines)


class SimProfiler:
    """Live hook object installed on a :class:`~repro.sim.engine.Simulator`.

    The simulator calls :meth:`on_event` just before an event's callback
    runs; when that call returns True the event was *sampled* and the
    simulator calls :meth:`after_event` right after the callback returns
    so the callback is wall-timed.  :meth:`on_cancelled_pop` fires per
    cancelled event discarded by the heap.  Queue push volume and the
    depth high-water mark come from the simulator's own counters at
    :meth:`finish` time — the scheduling hot path carries no profiler
    hook at all.

    ``wall_sample_every`` trades fidelity for overhead: 1 (default)
    wall-times every callback; N times every N-th event and scales the
    measured time by N.  ``depth_timeline_every`` sets the queue-depth
    sampling stride, counted in *sampled* events; ``meta_capacity``
    bounds the number of sampled events retained for the Chrome
    meta-trace (0 disables it).

    The per-event hook is deliberately minimal: events are tallied by
    the callback's code object (shared across lambdas minted from the
    same line, so per-token closures do not bloat the dict) and name
    resolution is deferred to :meth:`finish`, off the hot path.  See
    ``benchmarks/bench_observer_overhead.py`` for the budget this
    protects.
    """

    def __init__(
        self,
        wall_sample_every: int = 1,
        depth_timeline_every: int = 1024,
        meta_capacity: int = 50_000,
    ) -> None:
        if wall_sample_every < 1:
            raise ValueError(
                f"wall_sample_every must be >= 1, got {wall_sample_every}"
            )
        if depth_timeline_every < 1:
            raise ValueError(
                f"depth_timeline_every must be >= 1, got {depth_timeline_every}"
            )
        self.profile = SimProfile(wall_sample_every=wall_sample_every)
        self._wall_start = time.perf_counter()
        self._sample_every = wall_sample_every
        self._depth_every = depth_timeline_every
        self._meta_capacity = meta_capacity
        self._queue_ref: list | None = None
        #: Run-length-encoded (key, count) pairs pending aggregation
        #: into _counts.  Consecutive events usually share a callback
        #: (a core's tick loop), so the common hot-path case is a
        #:  pointer compare plus a local increment — no memory growth.
        #: The simulator's profiled run loop inlines this (see
        #: Simulator._run_profiled and Simulator.step); keep in sync.
        self._buf: list[tuple[Any, int]] = []
        self._rle_key: Any = None
        self._rle_count = 0
        self._counts: Counter = Counter()
        self._sampled_s: dict[Any, float] = {}
        self._events = 0
        self._cancelled = 0
        self._sampled_events = 0
        self._depth_timeline: list[tuple[int, int]] = []
        self._meta: list[tuple[float, float, Any]] = []
        self._meta_dropped = 0
        self._current_key: Any = None
        self._event_start: float = 0.0

    def attach_queue(self, queue: list) -> None:
        """Let the profiler sample queue depth from the live event heap."""
        self._queue_ref = queue

    def on_event(self, callback: Callable[[], None]) -> bool:
        """One kernel event is about to execute.

        Returns True when this event is wall-sampled, in which case the
        caller must invoke :meth:`after_event` once the callback
        returns.  The simulator's profiled run loop inlines this exact
        logic to shave the call overhead off the kernel hot path
        (:meth:`repro.sim.engine.Simulator._run_profiled`); keep the
        two in sync.
        """
        try:
            key = callback.__code__
        except AttributeError:
            key = callback
        if key is self._rle_key:
            self._rle_count += 1
        else:
            if self._rle_count:
                self._buf.append((self._rle_key, self._rle_count))
            self._rle_key = key
            self._rle_count = 1
        n = self._events = self._events + 1
        if n % self._sample_every:
            return False
        self._current_key = key
        self._event_start = time.perf_counter()
        return True

    def after_event(self) -> None:
        """The sampled event's callback just returned."""
        duration = time.perf_counter() - self._event_start
        key = self._current_key
        if key is None:
            return
        self._current_key = None
        sampled = self._sampled_s
        sampled[key] = sampled.get(key, 0.0) + duration
        n = self._sampled_events = self._sampled_events + 1
        if len(self._meta) < self._meta_capacity:
            self._meta.append((
                (self._event_start - self._wall_start) * 1e6,
                duration * 1e6,
                key,
            ))
        elif self._meta_capacity:
            self._meta_dropped += 1
        if n % self._depth_every == 0 and self._queue_ref is not None:
            self._depth_timeline.append(
                (n * self._sample_every, len(self._queue_ref))
            )
        if len(self._buf) >= _FOLD_THRESHOLD:
            self._fold()

    def _fold(self) -> None:
        """Aggregate pending run-length (key, count) pairs into counts."""
        counts = self._counts
        for key, count in self._buf:
            counts[key] += count
        self._buf.clear()

    def on_cancelled_pop(self) -> None:
        """The heap discarded a cancelled event."""
        self._cancelled += 1

    def finish(
        self,
        queue_pushes: int = 0,
        queue_depth_high_water: int = 0,
        sim_time_ps: int = 0,
    ) -> SimProfile:
        """Close the window: record wall time, attribute it, return.

        The queue accounting and simulated-time advance are passed in by
        the simulator (which already tracks them for free) rather than
        observed per event.
        """
        profile = self.profile
        profile.wall_time_s = time.perf_counter() - self._wall_start
        if self._rle_count:
            self._buf.append((self._rle_key, self._rle_count))
            self._rle_key = None
            self._rle_count = 0
        self._fold()
        names = {key: _key_source(key) for key in self._counts}
        for key in self._sampled_s:
            if key not in names:
                names[key] = _key_source(key)
        profile.events_total = sum(self._counts.values())
        events_by_source: dict[str, int] = {}
        for key, count in self._counts.items():
            name = names[key]
            events_by_source[name] = events_by_source.get(name, 0) + count
        profile.events_by_source = events_by_source
        profile.sim_time_ps = sim_time_ps
        profile.queue_pushes = queue_pushes
        profile.queue_depth_high_water = queue_depth_high_water
        profile.queue_pops_cancelled = self._cancelled
        profile.depth_timeline = self._depth_timeline
        profile.wall_sampled_events = self._sampled_events
        profile.meta_samples = [
            (start_us, dur_us, names[key])
            for start_us, dur_us, key in self._meta
        ]
        profile.meta_dropped = self._meta_dropped
        attributed: dict[str, float] = {}
        for key, seconds in self._sampled_s.items():
            name = names[key]
            attributed[name] = (
                attributed.get(name, 0.0) + seconds * self._sample_every
            )
        total = sum(attributed.values())
        residual = profile.wall_time_s - total
        if residual < 0.0 and total > 0.0:
            # Stride-scaled estimates can overshoot the window when a
            # sampled event happens to be unusually slow (a host hiccup
            # lands on a sample and is multiplied by the stride).  The
            # attribution is a partition of the window, so normalise the
            # shares down to the measured wall time instead of letting
            # the sum exceed it.
            scale = profile.wall_time_s / total
            attributed = {name: s * scale for name, s in attributed.items()}
            residual = 0.0
        attributed[KERNEL_SOURCE] = residual
        profile.wall_by_source = attributed
        return profile
