"""Simulation profiling: where do the *simulator's* cycles go?

The energy model answers "where did the simulated joules go"; this
module answers the meta-question every scaling PR needs: how many events
did the kernel execute, on whose behalf, how deep did the event queue
get, and how fast is simulated time advancing relative to wall-clock
time.  :meth:`repro.sim.engine.Simulator.profile` installs a
:class:`SimProfiler` for the duration of a ``with`` block and leaves a
finished :class:`SimProfile` behind::

    with sim.profile() as profile:
        sim.run()
    print(profile.render())

Profiles deliberately live *outside* the determinism boundary: they
include wall-clock timings, so they are never part of metric snapshots
or trace digests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


def callback_source(callback: Callable[[], None]) -> str:
    """A stable, human-readable name for an event callback.

    Bound methods name their class (``InputPort._run``); plain functions
    and lambdas use their qualified name with the ``<locals>`` noise
    stripped (``HalfLink.send.<lambda>``).
    """
    bound_self = getattr(callback, "__self__", None)
    if bound_self is not None:
        return f"{type(bound_self).__name__}.{callback.__name__}"
    name = getattr(callback, "__qualname__", None) or getattr(
        callback, "__name__", None
    )
    if name is None:
        return type(callback).__name__
    return name.replace(".<locals>", "")


@dataclass
class SimProfile:
    """The result of one profiled window of simulation."""

    events_total: int = 0
    events_by_source: dict[str, int] = field(default_factory=dict)
    queue_depth_high_water: int = 0
    sim_time_ps: int = 0
    wall_time_s: float = 0.0
    #: Trace records evicted by the attached recorder's ring buffer
    #: during this window (0 when no tracer was attached or nothing was
    #: lost) — surfaces flight-recorder truncation instead of silently
    #: dropping history.
    trace_dropped_events: int = 0

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall-clock second (>1 is faster than life)."""
        if self.wall_time_s <= 0:
            return 0.0
        return (self.sim_time_ps / 1e12) / self.wall_time_s

    @property
    def events_per_sec(self) -> float:
        """Kernel events executed per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_total / self.wall_time_s

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable form (sources sorted by event count)."""
        return {
            "events_total": self.events_total,
            "events_by_source": dict(
                sorted(self.events_by_source.items(),
                       key=lambda kv: (-kv[1], kv[0]))
            ),
            "queue_depth_high_water": self.queue_depth_high_water,
            "sim_time_ps": self.sim_time_ps,
            "wall_time_s": self.wall_time_s,
            "sim_wall_ratio": self.sim_wall_ratio,
            "events_per_sec": self.events_per_sec,
            "trace_dropped_events": self.trace_dropped_events,
        }

    def render(self, top: int = 12) -> str:
        """A printable summary (the ``top`` busiest callback sources)."""
        lines = [
            f"profile: {self.events_total} events in {self.wall_time_s:.3f} s wall "
            f"({self.events_per_sec:,.0f} ev/s), "
            f"{self.sim_time_ps / 1e6:.1f} us simulated "
            f"(sim/wall {self.sim_wall_ratio:.2e}), "
            f"queue high-water {self.queue_depth_high_water}"
            + (
                f", TRACE DROPPED {self.trace_dropped_events} records"
                if self.trace_dropped_events else ""
            ),
        ]
        ranked = sorted(self.events_by_source.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        for source, count in ranked[:top]:
            share = count / self.events_total if self.events_total else 0.0
            lines.append(f"  {source:<40} {count:>10}  {share:>6.1%}")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more sources")
        return "\n".join(lines)


class SimProfiler:
    """Live hook object installed on a :class:`~repro.sim.engine.Simulator`.

    The simulator calls :meth:`on_event` per executed event and
    :meth:`on_queue_depth` per scheduled event; :meth:`finish` seals the
    attached :class:`SimProfile`.
    """

    def __init__(self) -> None:
        self.profile = SimProfile()
        self._wall_start = time.perf_counter()
        self._sim_start_ps: int | None = None

    def on_event(self, time_ps: int, callback: Callable[[], None]) -> None:
        """One kernel event is about to execute."""
        if self._sim_start_ps is None:
            self._sim_start_ps = time_ps
        profile = self.profile
        profile.events_total += 1
        profile.sim_time_ps = time_ps - self._sim_start_ps
        source = callback_source(callback)
        by_source = profile.events_by_source
        by_source[source] = by_source.get(source, 0) + 1

    def on_queue_depth(self, depth: int) -> None:
        """The event queue reached ``depth`` entries."""
        if depth > self.profile.queue_depth_high_water:
            self.profile.queue_depth_high_water = depth

    def finish(self) -> SimProfile:
        """Close the window: record wall time and return the profile."""
        self.profile.wall_time_s = time.perf_counter() - self._wall_start
        return self.profile
