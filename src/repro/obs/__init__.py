"""Unified observability: metrics, trace export and simulation profiling.

Three views into a running (or finished) simulation:

* :mod:`repro.obs.metrics` — a labelled metrics registry
  (``switch.tokens_forwarded{node=3}``, ``link.utilization{...}``)
  with snapshot/delta semantics and near-zero overhead when disabled;
* :mod:`repro.obs.trace_export` — :class:`~repro.sim.tracing.TraceRecorder`
  exports to JSONL and Chrome trace-event format (Perfetto,
  ``chrome://tracing``);
* :mod:`repro.obs.profiling` — kernel self-profiling: events per
  callback source, queue depth high-water mark, sim-time/wall-time
  ratio.

The assembled platform wires everything up:
``SwallowSystem(...).metrics`` is a live registry,
``SwallowSystem.trace()`` attaches a machine-wide recorder, and
``Simulator.profile()`` measures the simulator itself.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    MetricsSnapshot,
    series_key,
)
from repro.obs.energyscope import (
    AttributionRow,
    EnergyAttribution,
    attribute_energy,
)
from repro.obs.profiling import SimProfile, SimProfiler, callback_source
from repro.obs.spans import Span, SpanMessage, SpanRecorder
from repro.obs.trace_export import (
    chrome_trace_json,
    source_category,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.watch import PowerWatchpoint, WatchEvent

__all__ = [
    "AttributionRow",
    "Counter",
    "DEFAULT_BUCKETS",
    "EnergyAttribution",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PowerWatchpoint",
    "SimProfile",
    "SimProfiler",
    "Span",
    "SpanMessage",
    "SpanRecorder",
    "WatchEvent",
    "attribute_energy",
    "callback_source",
    "chrome_trace_json",
    "series_key",
    "source_category",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
