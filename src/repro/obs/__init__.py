"""Unified observability: metrics, trace export and simulation profiling.

Three views into a running (or finished) simulation:

* :mod:`repro.obs.metrics` — a labelled metrics registry
  (``switch.tokens_forwarded{node=3}``, ``link.utilization{...}``)
  with snapshot/delta semantics and near-zero overhead when disabled;
* :mod:`repro.obs.trace_export` — :class:`~repro.sim.tracing.TraceRecorder`
  exports to JSONL and Chrome trace-event format (Perfetto,
  ``chrome://tracing``);
* :mod:`repro.obs.profiling` — kernel self-profiling: events and wall
  time per callback source, queue-op accounting, folded flame stacks,
  sim-time/wall-time ratio;
* :mod:`repro.obs.perf` — the performance observatory: an append-only
  perf-history ledger with a rolling-baseline regression gate, and
  :class:`~repro.obs.perf.RunHeartbeat` streaming progress snapshots;
* :mod:`repro.obs.netscope` — the fabric observatory: windowed
  per-link/per-switch telemetry, blocked-route wait attribution by
  cause, spatial heat-map export and slice-cut traffic reports.

The assembled platform wires everything up:
``SwallowSystem(...).metrics`` is a live registry,
``SwallowSystem.trace()`` attaches a machine-wide recorder, and
``Simulator.profile()`` measures the simulator itself.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    MetricsSnapshot,
    series_key,
)
from repro.obs.energyscope import (
    AttributionRow,
    EnergyAttribution,
    attribute_energy,
)
from repro.obs.netscope import (
    CAUSES,
    DEFAULT_WINDOW_PS,
    FLEET_SCHEMA,
    HEATMAP_SCHEMA,
    LinkProbe,
    NetScope,
    PortProbe,
    SliceBoundary,
    fleet_heatmap,
    merge_heatmaps,
)
from repro.obs.perf import (
    WALL_FIELDS,
    Comparison,
    PerfHistory,
    PerfRecord,
    RunHeartbeat,
    compare_against_history,
    config_digest,
    heartbeat_core,
    records_from_profile,
    render_history_report,
)
from repro.obs.profiling import (
    KERNEL_SOURCE,
    SimProfile,
    SimProfiler,
    callback_source,
)
from repro.obs.spans import Span, SpanMessage, SpanRecorder
from repro.obs.trace_export import (
    chrome_trace_json,
    profile_chrome_trace,
    source_category,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_profile_chrome_trace,
)
from repro.obs.watch import PowerWatchpoint, WatchEvent

__all__ = [
    "AttributionRow",
    "CAUSES",
    "Comparison",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_WINDOW_PS",
    "EnergyAttribution",
    "FLEET_SCHEMA",
    "Gauge",
    "HEATMAP_SCHEMA",
    "Histogram",
    "KERNEL_SOURCE",
    "LinkProbe",
    "Metric",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NetScope",
    "PerfHistory",
    "PerfRecord",
    "PortProbe",
    "PowerWatchpoint",
    "RunHeartbeat",
    "SliceBoundary",
    "SimProfile",
    "SimProfiler",
    "Span",
    "SpanMessage",
    "SpanRecorder",
    "WALL_FIELDS",
    "WatchEvent",
    "attribute_energy",
    "callback_source",
    "chrome_trace_json",
    "compare_against_history",
    "config_digest",
    "fleet_heatmap",
    "heartbeat_core",
    "merge_heatmaps",
    "profile_chrome_trace",
    "records_from_profile",
    "render_history_report",
    "series_key",
    "source_category",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_profile_chrome_trace",
]
